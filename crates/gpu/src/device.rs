//! The simulated GPU device: bulk-synchronous kernel launches over scoped
//! worker threads.

use std::sync::atomic::{AtomicU32, Ordering};

/// The simulated GPU device.
///
/// [`Device::launch`] semantics match a CUDA flat-grid kernel launch
/// followed by `cudaDeviceSynchronize()`: the kernel closure is invoked once
/// per global thread index `gid in 0..n`, concurrently across the device's
/// workers, and `launch` returns only after every index has been processed.
/// Workers self-schedule chunks of the index range through a shared cursor,
/// mirroring how GPU thread blocks are dispatched to SMs in arbitrary order
/// — which is exactly the source of the non-determinism that the paper's
/// Algorithm 2 eliminates.
///
/// With one worker the device degenerates to an in-place sequential loop —
/// this is the "seq-G-PASTA" execution mode and also the fast path on
/// single-core hosts.
#[derive(Debug, Clone)]
pub struct Device {
    num_threads: usize,
}

/// Grids smaller than this run inline: spawning workers costs more than the
/// work itself.
const INLINE_THRESHOLD: u32 = 64;

impl Device {
    /// Create a device with `num_threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "a device needs at least one worker");
        Device { num_threads }
    }

    /// Create a single-worker device (sequential execution).
    pub fn single() -> Self {
        Device::new(1)
    }

    /// Create a device sized to the host's available parallelism.
    pub fn host_parallel() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Device::new(n)
    }

    /// Number of workers.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Launch a flat grid of `n` logical GPU threads running `kernel` and
    /// block until all of them finish.
    ///
    /// The kernel may borrow host data (scoped workers); share mutable
    /// device state through [`AtomicBuf`](crate::AtomicBuf) handles.
    pub fn launch<F>(&self, n: u32, kernel: F)
    where
        F: Fn(u32) + Sync,
    {
        if n == 0 {
            return;
        }
        if self.num_threads == 1 || n < INLINE_THRESHOLD {
            for gid in 0..n {
                kernel(gid);
            }
            return;
        }

        let grain = grain_size(n, self.num_threads);
        let cursor = AtomicU32::new(0);
        let kernel = &kernel;
        let cursor = &cursor;
        std::thread::scope(|s| {
            for _ in 0..self.num_threads {
                s.spawn(move || loop {
                    let start = cursor.fetch_add(grain, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + grain).min(n);
                    for gid in start..end {
                        kernel(gid);
                    }
                });
            }
        });
    }

    /// CUDA-style two-level launch: `grid_dim` blocks of `block_dim`
    /// logical threads; the kernel receives `(block_idx, thread_idx)`.
    ///
    /// Blocks are distributed across the device workers in arbitrary order
    /// (like thread blocks across SMs) while the threads *within* a block
    /// run sequentially on one worker — the bulk-synchronous simplification
    /// of warp execution. Use this when a kernel's index math is written in
    /// block/thread terms; [`launch`](Device::launch) covers flat grids.
    pub fn launch_blocks<F>(&self, grid_dim: u32, block_dim: u32, kernel: F)
    where
        F: Fn(u32, u32) + Sync,
    {
        if block_dim == 0 {
            return;
        }
        self.launch(grid_dim, |block| {
            for thread in 0..block_dim {
                kernel(block, thread);
            }
        });
    }

    /// Convenience: launch and time the kernel under `name` in `timer`.
    pub fn launch_timed<F>(&self, timer: &crate::KernelTimer, name: &str, n: u32, kernel: F)
    where
        F: Fn(u32) + Sync,
    {
        let start = std::time::Instant::now();
        self.launch(n, kernel);
        timer.record(name, start.elapsed());
    }
}

/// Chunk size for dynamic self-scheduling: small enough to balance load,
/// large enough to amortise the cursor atomic.
fn grain_size(n: u32, threads: usize) -> u32 {
    let target_chunks = (threads as u32) * 8;
    (n / target_chunks).clamp(1, 8192)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtomicBuf;

    #[test]
    fn single_worker_runs_inline() {
        let dev = Device::single();
        assert_eq!(dev.num_threads(), 1);
        let buf = AtomicBuf::zeroed(100);
        dev.launch(100, |gid| buf.store(gid as usize, gid + 1));
        assert_eq!(buf.load(99), 100);
        assert_eq!(buf.load(0), 1);
    }

    #[test]
    fn multi_worker_covers_every_gid_exactly_once() {
        let dev = Device::new(4);
        let buf = AtomicBuf::zeroed(100_000);
        dev.launch(100_000, |gid| {
            buf.fetch_add(gid as usize, 1);
        });
        assert!(buf.to_vec().iter().all(|&v| v == 1), "each gid ran exactly once");
    }

    #[test]
    fn kernels_may_borrow_host_data() {
        let dev = Device::new(2);
        let input: Vec<u32> = (0..10_000).collect();
        let out = AtomicBuf::zeroed(10_000);
        dev.launch(10_000, |gid| {
            out.store(gid as usize, input[gid as usize] * 2);
        });
        assert_eq!(out.load(7_777), 15_554);
    }

    #[test]
    fn sequential_launches_see_prior_results() {
        // The end-of-launch barrier provides the happens-before edge.
        let dev = Device::new(3);
        let buf = AtomicBuf::zeroed(1000);
        dev.launch(1000, |gid| buf.store(gid as usize, 2));
        let sum = AtomicBuf::zeroed(1);
        dev.launch(1000, |gid| {
            sum.fetch_add(0, buf.load(gid as usize));
        });
        assert_eq!(sum.load(0), 2000);
    }

    #[test]
    fn zero_sized_launch_is_a_noop() {
        let dev = Device::new(2);
        dev.launch(0, |_| panic!("kernel must not run"));
    }

    #[test]
    fn atomic_add_counts_all_threads() {
        let dev = Device::new(4);
        let counter = AtomicBuf::zeroed(1);
        dev.launch(54_321, |_| {
            counter.fetch_add(0, 1);
        });
        assert_eq!(counter.load(0), 54_321);
    }

    #[test]
    fn many_launches_are_cheap_enough() {
        let dev = Device::new(2);
        let counter = AtomicBuf::zeroed(1);
        for _ in 0..200 {
            dev.launch(10, |_| {
                counter.fetch_add(0, 1);
            });
        }
        assert_eq!(counter.load(0), 2000);
    }

    #[test]
    fn grain_size_bounds() {
        assert_eq!(grain_size(1, 8), 1);
        assert!(grain_size(1_000_000, 8) <= 8192);
        assert!(grain_size(100, 4) >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Device::new(0);
    }

    #[test]
    fn host_parallel_has_at_least_one_thread() {
        let dev = Device::host_parallel();
        assert!(dev.num_threads() >= 1);
    }

    #[test]
    fn debug_shows_thread_count() {
        let dev = Device::new(2);
        assert!(format!("{dev:?}").contains("num_threads: 2"));
    }

    #[test]
    fn block_launch_covers_grid_times_block() {
        let dev = Device::new(2);
        let buf = AtomicBuf::zeroed(12 * 7);
        dev.launch_blocks(12, 7, |b, t| {
            buf.fetch_add((b * 7 + t) as usize, 1);
        });
        assert!(buf.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn block_launch_threads_run_in_order_within_a_block() {
        // Threads of one block execute sequentially on one worker, so a
        // per-block running maximum never observes out-of-order indices.
        let dev = Device::new(4);
        let last = AtomicBuf::zeroed(16);
        let ok = AtomicBuf::filled(1, 1);
        dev.launch_blocks(16, 32, |b, t| {
            let prev = last.load(b as usize);
            if t > 0 && prev != t - 1 + 1 {
                ok.store(0, 0);
            }
            last.store(b as usize, t + 1);
        });
        assert_eq!(ok.load(0), 1, "intra-block execution must be sequential");
    }

    #[test]
    fn zero_block_dim_is_a_noop() {
        let dev = Device::new(2);
        dev.launch_blocks(8, 0, |_b, _t| panic!("kernel must not run"));
    }

    #[test]
    fn launch_timed_records() {
        let dev = Device::new(1);
        let timer = crate::KernelTimer::new();
        dev.launch_timed(&timer, "noop", 10, |_| {});
        assert_eq!(timer.report()[0].1, 1);
    }
}
