//! Device sanitizer: shadow-memory instrumentation for the simulated GPU.
//!
//! A sanitized [`Device`] (see [`Device::sanitized`]) attaches a shadow word
//! to every element of buffers allocated through the device's named helpers
//! (`buf_zeroed` / `buf_uninit` / `buf_from_slice` / ...). Each kernel launch
//! opens a fresh *epoch*; every buffer access records an `(epoch, gid)` tag
//! in the shadow and cross-checks it against the tags left by other logical
//! threads of the same launch. This is a software analogue of CUDA's
//! `compute-sanitizer` tool suite:
//!
//! - **racecheck** — a plain `store` or `load` that touches a word another
//!   gid of the same launch stored to (or read-modify-wrote) is a data race:
//!   nothing orders the two logical threads within a launch. Atomic-vs-atomic
//!   access is *never* flagged — racing `atomicAdd`s are well-defined (that
//!   is the whole point of Algorithm 1), merely order-sensitive.
//! - **initcheck** — reading a word of a [`Device::buf_uninit`] allocation
//!   that no one has written since allocation is flagged. Buffers created
//!   zeroed or from a host slice are born initialised.
//! - **boundscheck** — sanitized buffers panic with a named diagnostic
//!   (buffer, index, length) instead of a bare slice panic, and the
//!   checked-view API ([`AtomicBuf::checked`](crate::AtomicBuf::checked))
//!   returns [`BoundsError`] instead of panicking.
//! - **determinism audit** — [`audit_determinism`] re-runs a computation
//!   under perturbed interleavings (worker counts × [`Schedule`]s × repeats),
//!   diffs the outputs, and classifies the computation as
//!   [`Verdict::Deterministic`], [`Verdict::AtomicOrderSensitive`] or
//!   [`Verdict::Racy`].
//!
//! Instrumentation is strictly opt-in: buffers built with the plain
//! [`AtomicBuf`](crate::AtomicBuf) constructors carry no shadow, and every
//! access on them pays only one predictable `Option` null-check.

use gpasta_check::sync::{AtomicU32, AtomicU64, Ordering};
use std::cell::Cell;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::Device;

/// The gid recorded for host-side accesses (outside any kernel launch).
pub const HOST_GID: u32 = u32::MAX;

/// Cap on distinct violation records kept per sanitizer; further *distinct*
/// violations only bump [`SanitizerReport::dropped`]. Repeats of an already
/// recorded violation bump its [`Violation::count`] instead.
const MAX_RECORDED: usize = 256;

// Which launch epoch and logical thread the current OS thread is executing.
// Epoch 0 with HOST_GID means "host code, outside any launch".
thread_local! {
    static CTX: Cell<(u64, u32)> = const { Cell::new((0, HOST_GID)) };
}

/// Launch epochs are drawn from a process-global counter so tags from two
/// sanitized devices can never collide on the same epoch number.
static GLOBAL_EPOCH: AtomicU64 = AtomicU64::new(0);

pub(crate) fn set_ctx(epoch: u64, gid: u32) {
    CTX.with(|c| c.set((epoch, gid)));
}

/// Reset the calling thread to host context. The inline launch fast path
/// runs kernels on the calling (host) thread, so it must clear the context
/// afterwards or host code would be mis-attributed to the last gid.
pub(crate) fn clear_ctx() {
    CTX.with(|c| c.set((0, HOST_GID)));
}

fn ctx() -> (u64, u32) {
    CTX.with(|c| c.get())
}

/// Pack an access tag. Tag `0` means "never accessed": host tags have epoch
/// 0 but gid [`HOST_GID`], and device tags have epoch >= 1, so no real
/// access produces tag `0`.
fn tag_of(epoch: u64, gid: u32) -> u64 {
    (epoch << 32) | u64::from(gid)
}

fn tag_epoch(tag: u64) -> u64 {
    tag >> 32
}

fn tag_gid(tag: u64) -> u32 {
    tag as u32
}

/// How a launch iterates gids — the interleaving perturbation knob used by
/// [`audit_determinism`]. On real hardware block scheduling order is
/// arbitrary; varying the schedule here makes order-dependence observable
/// even on a single worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Ascending gid order (the default, matching the seed behaviour).
    #[default]
    Forward,
    /// Descending gid order; flips the winner of every atomic race even in
    /// fully sequential execution.
    Reverse,
    /// Even gids first, then odd gids, within each scheduled chunk.
    Interleaved,
}

impl Schedule {
    /// All schedules, in the order the audit tries them.
    pub const ALL: [Schedule; 3] = [Schedule::Forward, Schedule::Reverse, Schedule::Interleaved];
}

/// What a recorded violation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two plain stores to one word from different gids of one launch.
    StoreStoreRace,
    /// A plain store and a plain load of one word from different gids of
    /// one launch.
    StoreLoadRace,
    /// An atomic RMW and a plain access to one word from different gids of
    /// one launch.
    AtomicPlainRace,
    /// A read of a word never written since `buf_uninit` allocation.
    UninitRead,
    /// An out-of-bounds access caught by boundscheck.
    OutOfBounds,
}

impl ViolationKind {
    /// Whether this kind is a data race (racecheck family).
    pub fn is_race(self) -> bool {
        matches!(
            self,
            ViolationKind::StoreStoreRace
                | ViolationKind::StoreLoadRace
                | ViolationKind::AtomicPlainRace
        )
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::StoreStoreRace => "store/store race",
            ViolationKind::StoreLoadRace => "store/load race",
            ViolationKind::AtomicPlainRace => "atomic/plain race",
            ViolationKind::UninitRead => "uninitialised read",
            ViolationKind::OutOfBounds => "out-of-bounds access",
        };
        f.write_str(s)
    }
}

/// One sanitizer finding: what happened, where, and which logical threads
/// were involved.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What kind of violation this is.
    pub kind: ViolationKind,
    /// Name of the buffer (as given to the `Device::buf_*` helper).
    pub buffer: String,
    /// Word index within the buffer.
    pub index: usize,
    /// The two gids involved: `(previously recorded, current)`. For
    /// single-thread findings (uninit read, bounds) both are the offender.
    /// [`HOST_GID`] marks host-side accesses.
    pub gids: (u32, u32),
    /// The launch epoch the violation was observed in (0 = host context).
    pub epoch: u64,
    /// How many times this exact `(kind, buffer, index)` was observed.
    pub count: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on `{}`[{}] (gids {} vs {}, epoch {}, seen {}x)",
            self.kind, self.buffer, self.index, self.gids.0, self.gids.1, self.epoch, self.count
        )
    }
}

/// An out-of-bounds access reported by the checked-view API instead of a
/// panic: carries the buffer name and extent so the kernel author sees
/// *which* device allocation overflowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundsError {
    /// Name of the buffer, or `"<unnamed>"` for plain allocations.
    pub buffer: String,
    /// The offending index.
    pub index: usize,
    /// The buffer length.
    pub len: usize,
}

impl fmt::Display for BoundsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out-of-bounds access on `{}`: index {} but len {}",
            self.buffer, self.index, self.len
        )
    }
}

impl std::error::Error for BoundsError {}

/// Per-device sanitizer state shared by the [`Device`] and every shadow it
/// hands out.
#[derive(Debug, Default)]
pub(crate) struct SanitizerCore {
    launches: AtomicU64,
    violations: Mutex<Vec<Violation>>,
    dropped: AtomicU64,
}

impl SanitizerCore {
    pub(crate) fn new() -> Self {
        SanitizerCore::default()
    }

    /// Open a new launch epoch; returns the (globally unique) epoch id.
    pub(crate) fn begin_launch(&self) -> u64 {
        self.launches.fetch_add(1, Ordering::Relaxed);
        GLOBAL_EPOCH.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn record(
        &self,
        kind: ViolationKind,
        buffer: &str,
        index: usize,
        gids: (u32, u32),
        epoch: u64,
    ) {
        let mut v = self.violations.lock().expect("sanitizer mutex poisoned");
        if let Some(existing) = v
            .iter_mut()
            .find(|x| x.kind == kind && x.index == index && x.buffer == buffer)
        {
            existing.count += 1;
            return;
        }
        if v.len() >= MAX_RECORDED {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        v.push(Violation {
            kind,
            buffer: buffer.to_string(),
            index,
            gids,
            epoch,
            count: 1,
        });
    }

    pub(crate) fn report(&self) -> SanitizerReport {
        SanitizerReport {
            launches: self.launches.load(Ordering::Relaxed),
            violations: self
                .violations
                .lock()
                .expect("sanitizer mutex poisoned")
                .clone(),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of everything a sanitized device observed so far.
#[derive(Debug, Clone, Default)]
pub struct SanitizerReport {
    /// Number of kernel launches instrumented.
    pub launches: u64,
    /// Distinct violations, each with an occurrence count.
    pub violations: Vec<Violation>,
    /// Distinct violations discarded after the record cap was hit.
    pub dropped: u64,
}

impl SanitizerReport {
    /// Whether no violation of any kind was observed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }

    /// The recorded data races (racecheck findings).
    pub fn races(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.kind.is_race())
    }

    /// Number of distinct race records.
    pub fn race_count(&self) -> usize {
        self.races().count()
    }

    /// Number of distinct uninitialised-read records.
    pub fn uninit_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.kind == ViolationKind::UninitRead)
            .count()
    }

    /// Number of distinct out-of-bounds records.
    pub fn bounds_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.kind == ViolationKind::OutOfBounds)
            .count()
    }

    /// Fold another report into this one (used by the audit to merge the
    /// per-run reports).
    pub fn merge(&mut self, other: &SanitizerReport) {
        self.launches += other.launches;
        self.dropped += other.dropped;
        for v in &other.violations {
            if let Some(existing) = self
                .violations
                .iter_mut()
                .find(|x| x.kind == v.kind && x.index == v.index && x.buffer == v.buffer)
            {
                existing.count += v.count;
            } else if self.violations.len() >= MAX_RECORDED {
                self.dropped += 1;
            } else {
                self.violations.push(v.clone());
            }
        }
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sanitizer: {} launch(es), {} race(s), {} uninit read(s), {} bounds error(s)",
            self.launches,
            self.race_count(),
            self.uninit_count(),
            self.bounds_count()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        if self.dropped > 0 {
            writeln!(
                f,
                "  ... and {} distinct violation(s) dropped (cap {})",
                self.dropped, MAX_RECORDED
            )?;
        }
        Ok(())
    }
}

/// Shadow memory for one buffer: one [`ShadowWord`] per element plus the
/// buffer's identity and init policy.
#[derive(Debug)]
pub(crate) struct Shadow {
    name: String,
    core: Arc<SanitizerCore>,
    words: Box<[ShadowWord]>,
    /// Buffers born zeroed / from a host slice are initialised at birth;
    /// `buf_uninit` allocations are not (initcheck applies).
    pre_initialized: bool,
}

/// Per-word shadow state: the last plain-store, plain-load and atomic-RMW
/// access tags, plus an init flag.
#[derive(Debug, Default)]
struct ShadowWord {
    writer: AtomicU64,
    reader: AtomicU64,
    rmw: AtomicU64,
    init: AtomicU32,
}

impl Shadow {
    pub(crate) fn new(
        name: &str,
        core: Arc<SanitizerCore>,
        len: usize,
        pre_initialized: bool,
    ) -> Self {
        Shadow {
            name: name.to_string(),
            core,
            words: (0..len).map(|_| ShadowWord::default()).collect(),
            pre_initialized,
        }
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    /// Bounds-check `i` for an unchecked access: record the violation and
    /// panic with a named diagnostic (the sanitized replacement for the
    /// bare slice panic).
    fn word(&self, i: usize, op: &str) -> &ShadowWord {
        if i >= self.words.len() {
            let (epoch, gid) = ctx();
            self.core
                .record(ViolationKind::OutOfBounds, &self.name, i, (gid, gid), epoch);
            panic!(
                "gpasta-gpu sanitizer: out-of-bounds {op} on `{}`: index {i} but len {}",
                self.name,
                self.words.len()
            );
        }
        &self.words[i]
    }

    /// Record an out-of-bounds finding without panicking (checked-view API).
    pub(crate) fn record_out_of_bounds(&self, i: usize) {
        let (epoch, gid) = ctx();
        self.core
            .record(ViolationKind::OutOfBounds, &self.name, i, (gid, gid), epoch);
    }

    /// Instrument a plain store to word `i`.
    pub(crate) fn on_store(&self, i: usize) {
        let (epoch, gid) = ctx();
        let w = self.word(i, "store");
        let prev_writer = w.writer.swap(tag_of(epoch, gid), Ordering::Relaxed);
        if epoch != 0 {
            self.check_conflict(ViolationKind::StoreStoreRace, prev_writer, i, epoch, gid);
            let reader = w.reader.load(Ordering::Relaxed);
            self.check_conflict(ViolationKind::StoreLoadRace, reader, i, epoch, gid);
            let rmw = w.rmw.load(Ordering::Relaxed);
            self.check_conflict(ViolationKind::AtomicPlainRace, rmw, i, epoch, gid);
        }
        w.init.store(1, Ordering::Relaxed);
    }

    /// Instrument a plain load of word `i`.
    pub(crate) fn on_load(&self, i: usize) {
        let (epoch, gid) = ctx();
        let w = self.word(i, "load");
        if epoch != 0 {
            if !self.pre_initialized && w.init.load(Ordering::Relaxed) == 0 {
                self.core
                    .record(ViolationKind::UninitRead, &self.name, i, (gid, gid), epoch);
            }
            let writer = w.writer.load(Ordering::Relaxed);
            self.check_conflict(ViolationKind::StoreLoadRace, writer, i, epoch, gid);
            let rmw = w.rmw.load(Ordering::Relaxed);
            self.check_conflict(ViolationKind::AtomicPlainRace, rmw, i, epoch, gid);
        }
        w.reader.store(tag_of(epoch, gid), Ordering::Relaxed);
    }

    /// Instrument an atomic read-modify-write (add/sub/max/CAS) of word `i`.
    /// RMW-vs-RMW is never a race; RMW reads, so initcheck applies.
    pub(crate) fn on_rmw(&self, i: usize) {
        let (epoch, gid) = ctx();
        let w = self.word(i, "atomic RMW");
        if epoch != 0 {
            if !self.pre_initialized && w.init.load(Ordering::Relaxed) == 0 {
                self.core
                    .record(ViolationKind::UninitRead, &self.name, i, (gid, gid), epoch);
            }
            let writer = w.writer.load(Ordering::Relaxed);
            self.check_conflict(ViolationKind::AtomicPlainRace, writer, i, epoch, gid);
            let reader = w.reader.load(Ordering::Relaxed);
            self.check_conflict(ViolationKind::AtomicPlainRace, reader, i, epoch, gid);
        }
        w.rmw.store(tag_of(epoch, gid), Ordering::Relaxed);
        w.init.store(1, Ordering::Relaxed);
    }

    /// Mark the first `n` words initialised (host memset / H2D copy).
    pub(crate) fn mark_initialized(&self, n: usize) {
        for w in self.words.iter().take(n) {
            w.init.store(1, Ordering::Relaxed);
        }
    }

    /// A recorded tag conflicts if it is from the *same* launch epoch but a
    /// *different* gid — nothing orders two logical threads of one launch.
    fn check_conflict(&self, kind: ViolationKind, tag: u64, i: usize, epoch: u64, gid: u32) {
        if tag != 0 && tag_epoch(tag) == epoch && tag_gid(tag) != gid {
            self.core
                .record(kind, &self.name, i, (tag_gid(tag), gid), epoch);
        }
    }
}

/// Classification produced by [`audit_determinism`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Identical outputs under every perturbation and no races: safe.
    Deterministic,
    /// No data races, but outputs depend on atomic execution order — the
    /// signature of Algorithm 1's `atomicAdd` partition allocation.
    AtomicOrderSensitive,
    /// The sanitizer observed at least one data race.
    Racy,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Deterministic => "Deterministic",
            Verdict::AtomicOrderSensitive => "AtomicOrderSensitive",
            Verdict::Racy => "Racy",
        };
        f.write_str(s)
    }
}

/// Everything [`audit_determinism`] learned about a computation.
#[derive(Debug, Clone)]
pub struct AuditOutcome {
    /// The overall classification.
    pub verdict: Verdict,
    /// Total runs executed (workers × schedules × repeats).
    pub runs: usize,
    /// Number of distinct outputs observed across all runs.
    pub distinct_outputs: usize,
    /// Sanitizer findings merged across every run.
    pub report: SanitizerReport,
}

impl fmt::Display for AuditOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit: {} ({} runs, {} distinct output(s))",
            self.verdict, self.runs, self.distinct_outputs
        )?;
        write!(f, "{}", self.report)
    }
}

/// Re-run `run` under perturbed interleavings and classify the result.
///
/// For every worker count in `workers`, every [`Schedule`], and
/// `repeats` repetitions, a fresh sanitized [`Device`] is built and handed
/// to `run`, which must execute the computation under audit on that device
/// and return its output. The outcomes:
///
/// - any data race recorded in any run → [`Verdict::Racy`];
/// - more than one distinct output → [`Verdict::AtomicOrderSensitive`];
/// - otherwise → [`Verdict::Deterministic`].
///
/// The [`Schedule::Reverse`] pass is what makes atomic-order sensitivity
/// observable even at one worker, where OS-level interleaving noise is
/// absent.
pub fn audit_determinism<F>(workers: &[usize], repeats: usize, mut run: F) -> AuditOutcome
where
    F: FnMut(&Device) -> Vec<u32>,
{
    assert!(!workers.is_empty(), "audit needs at least one worker count");
    assert!(repeats > 0, "audit needs at least one repetition");
    let mut outputs: Vec<Vec<u32>> = Vec::new();
    let mut report = SanitizerReport::default();
    let mut runs = 0;
    for &w in workers {
        for sched in Schedule::ALL {
            for _ in 0..repeats {
                let dev = Device::sanitized(w).with_schedule(sched);
                let out = run(&dev);
                report.merge(
                    &dev.sanitizer_report()
                        .expect("sanitized device has a report"),
                );
                if !outputs.contains(&out) {
                    outputs.push(out);
                }
                runs += 1;
            }
        }
    }
    let verdict = if report.race_count() > 0 {
        Verdict::Racy
    } else if outputs.len() > 1 {
        Verdict::AtomicOrderSensitive
    } else {
        Verdict::Deterministic
    };
    AuditOutcome {
        verdict,
        runs,
        distinct_outputs: outputs.len(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        let t = tag_of(7, 42);
        assert_eq!(tag_epoch(t), 7);
        assert_eq!(tag_gid(t), 42);
        assert_ne!(
            tag_of(0, HOST_GID),
            0,
            "host tag must differ from never-accessed"
        );
    }

    #[test]
    fn record_dedups_and_caps() {
        let core = SanitizerCore::new();
        core.record(ViolationKind::UninitRead, "b", 3, (1, 1), 9);
        core.record(ViolationKind::UninitRead, "b", 3, (2, 2), 9);
        let rep = core.report();
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].count, 2);
        for i in 0..2 * MAX_RECORDED {
            core.record(ViolationKind::UninitRead, "b", 100 + i, (1, 1), 9);
        }
        let rep = core.report();
        assert_eq!(rep.violations.len(), MAX_RECORDED);
        assert!(rep.dropped > 0);
        assert!(!rep.is_clean());
    }

    #[test]
    fn merge_combines_reports() {
        let a = SanitizerCore::new();
        a.begin_launch();
        a.record(ViolationKind::StoreStoreRace, "x", 0, (1, 2), 1);
        let b = SanitizerCore::new();
        b.begin_launch();
        b.record(ViolationKind::StoreStoreRace, "x", 0, (3, 4), 2);
        b.record(ViolationKind::UninitRead, "y", 5, (0, 0), 2);
        let mut m = a.report();
        m.merge(&b.report());
        assert_eq!(m.launches, 2);
        assert_eq!(m.race_count(), 1);
        assert_eq!(
            m.violations.iter().find(|v| v.buffer == "x").unwrap().count,
            2
        );
        assert_eq!(m.uninit_count(), 1);
    }

    #[test]
    fn verdict_and_violation_display() {
        assert_eq!(Verdict::Racy.to_string(), "Racy");
        assert_eq!(
            Verdict::AtomicOrderSensitive.to_string(),
            "AtomicOrderSensitive"
        );
        let v = Violation {
            kind: ViolationKind::StoreStoreRace,
            buffer: "pid".into(),
            index: 4,
            gids: (1, 2),
            epoch: 3,
            count: 5,
        };
        let s = v.to_string();
        assert!(s.contains("store/store race"), "{s}");
        assert!(s.contains("`pid`[4]"), "{s}");
        let e = BoundsError {
            buffer: "pid".into(),
            index: 9,
            len: 4,
        };
        assert!(e.to_string().contains("index 9 but len 4"));
    }

    #[test]
    fn epochs_are_globally_unique() {
        let a = SanitizerCore::new();
        let b = SanitizerCore::new();
        let e1 = a.begin_launch();
        let e2 = b.begin_launch();
        let e3 = a.begin_launch();
        assert!(e1 < e2 && e2 < e3);
    }
}
