//! Device global memory: shared atomic buffers.
//!
//! CUDA device atomics (`atomicAdd`, `atomicSub`, `atomicMax`) are relaxed
//! read-modify-write operations on global memory; [`AtomicBuf`] mirrors them
//! with `Relaxed`-ordered `fetch_*` calls on an `Arc<[AtomicU32]>`. Cloning
//! a buffer is cheap and aliases the same memory, which is how kernels
//! capture "device pointers".

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, atomically-accessed `u32` buffer — simulated device global
/// memory.
///
/// All operations use relaxed ordering; the bulk-synchronous barrier at the
/// end of every [`Device::launch`](crate::Device::launch) provides the
/// inter-kernel happens-before edge, exactly like CUDA's implicit
/// end-of-kernel synchronisation.
#[derive(Clone)]
pub struct AtomicBuf {
    data: Arc<[AtomicU32]>,
}

impl AtomicBuf {
    /// Allocate `len` zero-initialised elements.
    pub fn zeroed(len: usize) -> Self {
        Self::filled(len, 0)
    }

    /// Allocate `len` elements initialised to `value`.
    pub fn filled(len: usize, value: u32) -> Self {
        AtomicBuf {
            data: (0..len).map(|_| AtomicU32::new(value)).collect(),
        }
    }

    /// Copy a host slice into a fresh device buffer (`cudaMemcpy` H2D).
    pub fn from_slice(host: &[u32]) -> Self {
        AtomicBuf {
            data: host.iter().map(|&v| AtomicU32::new(v)).collect(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Relaxed load of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn load(&self, i: usize) -> u32 {
        self.data[i].load(Ordering::Relaxed)
    }

    /// Relaxed store to element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn store(&self, i: usize, v: u32) {
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// `atomicAdd(&buf[i], v)` — returns the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, v: u32) -> u32 {
        self.data[i].fetch_add(v, Ordering::Relaxed)
    }

    /// `atomicSub(&buf[i], v)` — returns the previous value.
    #[inline]
    pub fn fetch_sub(&self, i: usize, v: u32) -> u32 {
        self.data[i].fetch_sub(v, Ordering::Relaxed)
    }

    /// `atomicMax(&buf[i], v)` — returns the previous value.
    #[inline]
    pub fn fetch_max(&self, i: usize, v: u32) -> u32 {
        self.data[i].fetch_max(v, Ordering::Relaxed)
    }

    /// `atomicCAS(&buf[i], current, new)` — returns `Ok(previous)` on
    /// success, `Err(actual)` on failure.
    #[inline]
    pub fn compare_exchange(&self, i: usize, current: u32, new: u32) -> Result<u32, u32> {
        self.data[i].compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }

    /// Copy the buffer back to the host (`cudaMemcpy` D2H).
    pub fn to_vec(&self) -> Vec<u32> {
        self.data.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    }

    /// Overwrite every element with `value` (`cudaMemset`).
    pub fn fill(&self, value: u32) {
        for a in self.data.iter() {
            a.store(value, Ordering::Relaxed);
        }
    }

    /// Copy `src` into this buffer starting at offset 0.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() > self.len()`.
    pub fn copy_from_slice(&self, src: &[u32]) {
        assert!(src.len() <= self.len(), "source slice longer than buffer");
        for (a, &v) in self.data.iter().zip(src) {
            a.store(v, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for AtomicBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<u32> = self.data.iter().take(8).map(|a| a.load(Ordering::Relaxed)).collect();
        f.debug_struct("AtomicBuf")
            .field("len", &self.len())
            .field("head", &preview)
            .finish()
    }
}

impl From<Vec<u32>> for AtomicBuf {
    fn from(v: Vec<u32>) -> Self {
        AtomicBuf::from_slice(&v)
    }
}

/// A shared, atomically-accessed `u64` buffer — used for the 64-bit sort
/// keys of Algorithm 2 (`d_pid << 32 | task_id`).
#[derive(Clone)]
pub struct AtomicBuf64 {
    data: Arc<[AtomicU64]>,
}

impl AtomicBuf64 {
    /// Allocate `len` zero-initialised elements.
    pub fn zeroed(len: usize) -> Self {
        AtomicBuf64 {
            data: (0..len).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Copy a host slice into a fresh device buffer.
    pub fn from_slice(host: &[u64]) -> Self {
        AtomicBuf64 {
            data: host.iter().map(|&v| AtomicU64::new(v)).collect(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Relaxed load of element `i`.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.data[i].load(Ordering::Relaxed)
    }

    /// Relaxed store to element `i`.
    #[inline]
    pub fn store(&self, i: usize, v: u64) {
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// Copy the buffer back to the host.
    pub fn to_vec(&self) -> Vec<u64> {
        self.data.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    }
}

impl fmt::Debug for AtomicBuf64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicBuf64").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_filled() {
        let b = AtomicBuf::zeroed(4);
        assert_eq!(b.to_vec(), vec![0; 4]);
        let b = AtomicBuf::filled(3, 7);
        assert_eq!(b.to_vec(), vec![7, 7, 7]);
    }

    #[test]
    fn from_slice_round_trips() {
        let b = AtomicBuf::from_slice(&[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(AtomicBuf::zeroed(0).is_empty());
    }

    #[test]
    fn clones_alias_the_same_memory() {
        let a = AtomicBuf::zeroed(1);
        let b = a.clone();
        b.store(0, 99);
        assert_eq!(a.load(0), 99);
    }

    #[test]
    fn atomics_behave_like_cuda() {
        let b = AtomicBuf::from_slice(&[10]);
        assert_eq!(b.fetch_add(0, 5), 10);
        assert_eq!(b.load(0), 15);
        assert_eq!(b.fetch_sub(0, 3), 15);
        assert_eq!(b.load(0), 12);
        assert_eq!(b.fetch_max(0, 8), 12);
        assert_eq!(b.load(0), 12, "max with smaller value is a no-op");
        assert_eq!(b.fetch_max(0, 20), 12);
        assert_eq!(b.load(0), 20);
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let b = AtomicBuf::from_slice(&[5]);
        assert_eq!(b.compare_exchange(0, 5, 6), Ok(5));
        assert_eq!(b.compare_exchange(0, 5, 7), Err(6));
        assert_eq!(b.load(0), 6);
    }

    #[test]
    fn fill_and_copy_from_slice() {
        let b = AtomicBuf::zeroed(3);
        b.fill(4);
        assert_eq!(b.to_vec(), vec![4, 4, 4]);
        b.copy_from_slice(&[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "source slice longer than buffer")]
    fn copy_from_slice_overflow_panics() {
        AtomicBuf::zeroed(1).copy_from_slice(&[1, 2]);
    }

    #[test]
    fn buf64_stores_sort_keys() {
        let b = AtomicBuf64::zeroed(2);
        let key = (7u64 << 32) | 42;
        b.store(0, key);
        assert_eq!(b.load(0) >> 32, 7);
        assert_eq!(b.load(0) & 0xffff_ffff, 42);
        assert_eq!(AtomicBuf64::from_slice(&[1, 2]).to_vec(), vec![1, 2]);
    }

    #[test]
    fn debug_is_nonempty() {
        let b = AtomicBuf::from_slice(&[1, 2]);
        let s = format!("{b:?}");
        assert!(s.contains("len"));
        let s64 = format!("{:?}", AtomicBuf64::zeroed(1));
        assert!(s64.contains("AtomicBuf64"));
    }

    #[test]
    fn from_vec_conversion() {
        let b: AtomicBuf = vec![9, 9].into();
        assert_eq!(b.to_vec(), vec![9, 9]);
    }
}
