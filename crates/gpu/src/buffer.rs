//! Device global memory: shared atomic buffers.
//!
//! CUDA device atomics (`atomicAdd`, `atomicSub`, `atomicMax`) are relaxed
//! read-modify-write operations on global memory; [`AtomicBuf`] mirrors them
//! with `Relaxed`-ordered `fetch_*` calls on an `Arc<[AtomicU32]>`. Cloning
//! a buffer is cheap and aliases the same memory, which is how kernels
//! capture "device pointers".
//!
//! # Why `Relaxed` everywhere (ThreadSanitizer note)
//!
//! The all-`Relaxed` ordering is deliberate, not an oversight: these buffers
//! *model device global memory*, whose intra-kernel semantics are exactly
//! "atomic RMWs are well-defined but unordered, plain accesses to shared
//! words are races". Using stronger orderings would silently serialise
//! access patterns that on a GPU are genuinely unordered, hiding the very
//! order-sensitivity G-PASTA's Algorithm 2 exists to eliminate. The
//! inter-kernel happens-before edge comes from the bulk-synchronous barrier
//! at the end of every [`Device::launch`](crate::Device::launch) (a
//! `thread::scope` join), exactly like CUDA's implicit end-of-kernel
//! synchronisation. Tools like ThreadSanitizer may flag the *plain*
//! `load`/`store` methods when a kernel misuses them concurrently — that is
//! a bug in the kernel under test, the same bug `compute-sanitizer
//! --tool racecheck` would report on real hardware, and the in-tree
//! [sanitizer](crate::SanitizerReport) reports it portably.

use gpasta_check::sync::{AtomicU32, AtomicU64, Ordering};
use std::fmt;
use std::sync::Arc;

use crate::sanitizer::{BoundsError, Shadow};

/// A shared, atomically-accessed `u32` buffer — simulated device global
/// memory.
///
/// All operations use relaxed ordering; the bulk-synchronous barrier at the
/// end of every [`Device::launch`](crate::Device::launch) provides the
/// inter-kernel happens-before edge, exactly like CUDA's implicit
/// end-of-kernel synchronisation.
///
/// Buffers allocated through a sanitized device's named helpers
/// ([`Device::buf_zeroed`](crate::Device::buf_zeroed) and friends) carry
/// shadow memory and report races, uninitialised reads and bounds errors;
/// buffers from the plain constructors below are uninstrumented and pay
/// only a null `Option` check per access.
#[derive(Clone)]
pub struct AtomicBuf {
    data: Arc<[AtomicU32]>,
    shadow: Option<Arc<Shadow>>,
}

impl AtomicBuf {
    /// Allocate `len` zero-initialised elements.
    pub fn zeroed(len: usize) -> Self {
        Self::filled(len, 0)
    }

    /// Allocate `len` elements initialised to `value`.
    pub fn filled(len: usize, value: u32) -> Self {
        AtomicBuf {
            data: (0..len).map(|_| AtomicU32::new(value)).collect(),
            shadow: None,
        }
    }

    /// Copy a host slice into a fresh device buffer (`cudaMemcpy` H2D).
    pub fn from_slice(host: &[u32]) -> Self {
        AtomicBuf {
            data: host.iter().map(|&v| AtomicU32::new(v)).collect(),
            shadow: None,
        }
    }

    /// Attach sanitizer shadow memory (done by the `Device::buf_*` helpers).
    pub(crate) fn set_shadow(&mut self, shadow: Arc<Shadow>) {
        self.shadow = Some(shadow);
    }

    /// The buffer's sanitizer name, if it was allocated through a sanitized
    /// device.
    pub fn name(&self) -> Option<&str> {
        self.shadow.as_deref().map(Shadow::name)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Relaxed load of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds (with a named diagnostic on
    /// sanitized buffers).
    #[inline]
    pub fn load(&self, i: usize) -> u32 {
        if let Some(sh) = &self.shadow {
            sh.on_load(i);
        }
        self.data[i].load(Ordering::Relaxed)
    }

    /// Relaxed store to element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds (with a named diagnostic on
    /// sanitized buffers).
    #[inline]
    pub fn store(&self, i: usize, v: u32) {
        if let Some(sh) = &self.shadow {
            sh.on_store(i);
        }
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// `atomicAdd(&buf[i], v)` — returns the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, v: u32) -> u32 {
        if let Some(sh) = &self.shadow {
            sh.on_rmw(i);
        }
        self.data[i].fetch_add(v, Ordering::Relaxed)
    }

    /// `atomicSub(&buf[i], v)` — returns the previous value.
    #[inline]
    pub fn fetch_sub(&self, i: usize, v: u32) -> u32 {
        if let Some(sh) = &self.shadow {
            sh.on_rmw(i);
        }
        self.data[i].fetch_sub(v, Ordering::Relaxed)
    }

    /// `atomicMax(&buf[i], v)` — returns the previous value.
    #[inline]
    pub fn fetch_max(&self, i: usize, v: u32) -> u32 {
        if let Some(sh) = &self.shadow {
            sh.on_rmw(i);
        }
        self.data[i].fetch_max(v, Ordering::Relaxed)
    }

    /// `atomicCAS(&buf[i], current, new)` — returns `Ok(previous)` on
    /// success, `Err(actual)` on failure.
    #[inline]
    pub fn compare_exchange(&self, i: usize, current: u32, new: u32) -> Result<u32, u32> {
        if let Some(sh) = &self.shadow {
            sh.on_rmw(i);
        }
        self.data[i].compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }

    /// Copy the buffer back to the host (`cudaMemcpy` D2H). Host readback
    /// is not race-checked: it happens after the end-of-launch barrier.
    pub fn to_vec(&self) -> Vec<u32> {
        self.data
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Overwrite every element with `value` (`cudaMemset`). Marks the whole
    /// buffer initialised for initcheck purposes.
    pub fn fill(&self, value: u32) {
        if let Some(sh) = &self.shadow {
            sh.mark_initialized(self.len());
        }
        for a in self.data.iter() {
            a.store(value, Ordering::Relaxed);
        }
    }

    /// Copy `src` into this buffer starting at offset 0. Marks the copied
    /// prefix initialised for initcheck purposes.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() > self.len()`.
    pub fn copy_from_slice(&self, src: &[u32]) {
        assert!(src.len() <= self.len(), "source slice longer than buffer");
        if let Some(sh) = &self.shadow {
            sh.mark_initialized(src.len());
        }
        for (a, &v) in self.data.iter().zip(src) {
            a.store(v, Ordering::Relaxed);
        }
    }

    /// A bounds-checked view: the same operations, but out-of-range indices
    /// return a [`BoundsError`] naming the buffer instead of panicking. On
    /// sanitized buffers the failed access is also recorded in the report.
    pub fn checked(&self) -> CheckedBuf<'_> {
        CheckedBuf { buf: self }
    }

    /// Bounds-checked [`load`](AtomicBuf::load); shorthand for
    /// `self.checked().load(i)`.
    pub fn try_load(&self, i: usize) -> Result<u32, BoundsError> {
        self.checked().load(i)
    }

    /// Bounds-checked [`store`](AtomicBuf::store); shorthand for
    /// `self.checked().store(i, v)`.
    pub fn try_store(&self, i: usize, v: u32) -> Result<(), BoundsError> {
        self.checked().store(i, v)
    }
}

/// Bounds-checked view over an [`AtomicBuf`], created by
/// [`AtomicBuf::checked`]. Failed accesses yield [`BoundsError`] diagnostics
/// (buffer name, index, length) instead of a bare slice panic.
#[derive(Debug, Clone, Copy)]
pub struct CheckedBuf<'a> {
    buf: &'a AtomicBuf,
}

impl CheckedBuf<'_> {
    fn guard(&self, i: usize) -> Result<(), BoundsError> {
        if i < self.buf.len() {
            return Ok(());
        }
        if let Some(sh) = &self.buf.shadow {
            sh.record_out_of_bounds(i);
        }
        Err(BoundsError {
            buffer: self.buf.name().unwrap_or("<unnamed>").to_string(),
            index: i,
            len: self.buf.len(),
        })
    }

    /// Checked [`AtomicBuf::load`].
    pub fn load(&self, i: usize) -> Result<u32, BoundsError> {
        self.guard(i)?;
        Ok(self.buf.load(i))
    }

    /// Checked [`AtomicBuf::store`].
    pub fn store(&self, i: usize, v: u32) -> Result<(), BoundsError> {
        self.guard(i)?;
        self.buf.store(i, v);
        Ok(())
    }

    /// Checked [`AtomicBuf::fetch_add`].
    pub fn fetch_add(&self, i: usize, v: u32) -> Result<u32, BoundsError> {
        self.guard(i)?;
        Ok(self.buf.fetch_add(i, v))
    }

    /// Checked [`AtomicBuf::fetch_sub`].
    pub fn fetch_sub(&self, i: usize, v: u32) -> Result<u32, BoundsError> {
        self.guard(i)?;
        Ok(self.buf.fetch_sub(i, v))
    }

    /// Checked [`AtomicBuf::fetch_max`].
    pub fn fetch_max(&self, i: usize, v: u32) -> Result<u32, BoundsError> {
        self.guard(i)?;
        Ok(self.buf.fetch_max(i, v))
    }
}

impl fmt::Debug for AtomicBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<u32> = self
            .data
            .iter()
            .take(8)
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        let mut d = f.debug_struct("AtomicBuf");
        if let Some(name) = self.name() {
            d.field("name", &name);
        }
        d.field("len", &self.len()).field("head", &preview).finish()
    }
}

impl From<Vec<u32>> for AtomicBuf {
    fn from(v: Vec<u32>) -> Self {
        AtomicBuf::from_slice(&v)
    }
}

/// A shared, atomically-accessed `u64` buffer — used for the 64-bit sort
/// keys of Algorithm 2 (`d_pid << 32 | task_id`). Carries the same optional
/// sanitizer shadow as [`AtomicBuf`].
#[derive(Clone)]
pub struct AtomicBuf64 {
    data: Arc<[AtomicU64]>,
    shadow: Option<Arc<Shadow>>,
}

impl AtomicBuf64 {
    /// Allocate `len` zero-initialised elements.
    pub fn zeroed(len: usize) -> Self {
        AtomicBuf64 {
            data: (0..len).map(|_| AtomicU64::new(0)).collect(),
            shadow: None,
        }
    }

    /// Copy a host slice into a fresh device buffer.
    pub fn from_slice(host: &[u64]) -> Self {
        AtomicBuf64 {
            data: host.iter().map(|&v| AtomicU64::new(v)).collect(),
            shadow: None,
        }
    }

    /// Attach sanitizer shadow memory (done by the `Device::buf64_*`
    /// helpers).
    pub(crate) fn set_shadow(&mut self, shadow: Arc<Shadow>) {
        self.shadow = Some(shadow);
    }

    /// The buffer's sanitizer name, if it was allocated through a sanitized
    /// device.
    pub fn name(&self) -> Option<&str> {
        self.shadow.as_deref().map(Shadow::name)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Relaxed load of element `i`.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        if let Some(sh) = &self.shadow {
            sh.on_load(i);
        }
        self.data[i].load(Ordering::Relaxed)
    }

    /// Relaxed store to element `i`.
    #[inline]
    pub fn store(&self, i: usize, v: u64) {
        if let Some(sh) = &self.shadow {
            sh.on_store(i);
        }
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// Copy the buffer back to the host.
    pub fn to_vec(&self) -> Vec<u64> {
        self.data
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }
}

impl fmt::Debug for AtomicBuf64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("AtomicBuf64");
        if let Some(name) = self.name() {
            d.field("name", &name);
        }
        d.field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_filled() {
        let b = AtomicBuf::zeroed(4);
        assert_eq!(b.to_vec(), vec![0; 4]);
        let b = AtomicBuf::filled(3, 7);
        assert_eq!(b.to_vec(), vec![7, 7, 7]);
    }

    #[test]
    fn from_slice_round_trips() {
        let b = AtomicBuf::from_slice(&[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(AtomicBuf::zeroed(0).is_empty());
    }

    #[test]
    fn clones_alias_the_same_memory() {
        let a = AtomicBuf::zeroed(1);
        let b = a.clone();
        b.store(0, 99);
        assert_eq!(a.load(0), 99);
    }

    #[test]
    fn atomics_behave_like_cuda() {
        let b = AtomicBuf::from_slice(&[10]);
        assert_eq!(b.fetch_add(0, 5), 10);
        assert_eq!(b.load(0), 15);
        assert_eq!(b.fetch_sub(0, 3), 15);
        assert_eq!(b.load(0), 12);
        assert_eq!(b.fetch_max(0, 8), 12);
        assert_eq!(b.load(0), 12, "max with smaller value is a no-op");
        assert_eq!(b.fetch_max(0, 20), 12);
        assert_eq!(b.load(0), 20);
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let b = AtomicBuf::from_slice(&[5]);
        assert_eq!(b.compare_exchange(0, 5, 6), Ok(5));
        assert_eq!(b.compare_exchange(0, 5, 7), Err(6));
        assert_eq!(b.load(0), 6);
    }

    #[test]
    fn compare_exchange_failure_leaves_value_untouched() {
        let b = AtomicBuf::from_slice(&[41]);
        assert_eq!(b.compare_exchange(0, 99, 1), Err(41));
        assert_eq!(b.load(0), 41, "failed CAS must not write");
    }

    #[test]
    fn fill_and_copy_from_slice() {
        let b = AtomicBuf::zeroed(3);
        b.fill(4);
        assert_eq!(b.to_vec(), vec![4, 4, 4]);
        b.copy_from_slice(&[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "source slice longer than buffer")]
    fn copy_from_slice_overflow_panics() {
        AtomicBuf::zeroed(1).copy_from_slice(&[1, 2]);
    }

    #[test]
    fn zero_length_buffer_edge_cases() {
        let b = AtomicBuf::zeroed(0);
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert_eq!(b.to_vec(), Vec::<u32>::new());
        b.fill(7); // memset of nothing is a no-op
        b.copy_from_slice(&[]); // empty copy is a no-op
        assert!(
            b.try_load(0).is_err(),
            "index 0 of an empty buffer is out of bounds"
        );
        let b64 = AtomicBuf64::zeroed(0);
        assert!(b64.is_empty());
        assert_eq!(b64.to_vec(), Vec::<u64>::new());
    }

    #[test]
    fn copy_from_slice_shorter_leaves_tail() {
        let b = AtomicBuf::filled(4, 9);
        b.copy_from_slice(&[1]);
        assert_eq!(b.to_vec(), vec![1, 9, 9, 9]);
        b.copy_from_slice(&[]); // zero-length source: nothing changes
        assert_eq!(b.to_vec(), vec![1, 9, 9, 9]);
    }

    #[test]
    fn checked_view_reports_name_and_extent() {
        let b = AtomicBuf::zeroed(3);
        assert_eq!(b.checked().load(2), Ok(0));
        assert_eq!(b.checked().store(1, 5), Ok(()));
        assert_eq!(b.checked().fetch_add(1, 1), Ok(5));
        assert_eq!(b.checked().fetch_sub(1, 2), Ok(6));
        assert_eq!(b.checked().fetch_max(1, 9), Ok(4));
        let err = b.checked().load(3).unwrap_err();
        assert_eq!(err.buffer, "<unnamed>");
        assert_eq!(err.index, 3);
        assert_eq!(err.len, 3);
        assert!(b.try_store(99, 0).is_err());
        assert!(b.name().is_none());
    }

    #[test]
    fn buf64_stores_sort_keys() {
        let b = AtomicBuf64::zeroed(2);
        let key = (7u64 << 32) | 42;
        b.store(0, key);
        assert_eq!(b.load(0) >> 32, 7);
        assert_eq!(b.load(0) & 0xffff_ffff, 42);
        assert_eq!(AtomicBuf64::from_slice(&[1, 2]).to_vec(), vec![1, 2]);
    }

    #[test]
    fn debug_is_nonempty() {
        let b = AtomicBuf::from_slice(&[1, 2]);
        let s = format!("{b:?}");
        assert!(s.contains("len"));
        let s64 = format!("{:?}", AtomicBuf64::zeroed(1));
        assert!(s64.contains("AtomicBuf64"));
    }

    #[test]
    fn from_vec_conversion() {
        let b: AtomicBuf = vec![9, 9].into();
        assert_eq!(b.to_vec(), vec![9, 9]);
    }
}
