//! Software GPU-device simulation for the G-PASTA reproduction.
//!
//! The paper implements its partitioning kernels in CUDA. This crate stands
//! in for the GPU with a faithful *bulk-synchronous data-parallel machine*:
//!
//! * [`Device`] — scoped worker execution; [`Device::launch`] runs a kernel
//!   closure once per global thread index `gid in 0..n`, exactly like a flat
//!   CUDA grid, and blocks until the grid completes (kernel-launch +
//!   implicit-sync semantics); [`Device::launch_blocks`] adds the two-level
//!   `(block_idx, thread_idx)` form;
//! * [`AtomicBuf`] — device global memory as shared atomic arrays;
//!   `atomicAdd`/`atomicSub`/`atomicMax` map to `fetch_add`/`fetch_sub`/
//!   `fetch_max` with relaxed ordering, matching CUDA device atomics;
//! * [`prims`] — the Thrust-style primitives Algorithm 2 needs:
//!   `sort_by_key`, `reduce_by_key`, `exclusive_scan`, `inclusive_scan`,
//!   and `binary_search` (all deterministic regardless of worker count);
//! * [`KernelTimer`] — per-kernel wall-clock accounting, standing in for
//!   `cudaEvent` timing.
//!
//! Races between pool workers reproduce the non-determinism of the paper's
//! Algorithm 1 that motivates the deterministic kernel of Algorithm 2; the
//! primitives in [`prims`] are deterministic for any worker count, which is
//! precisely the property Algorithm 2 relies on.
//!
//! The [`sanitizer`] module adds opt-in shadow-memory instrumentation — a
//! software `compute-sanitizer`: racecheck, initcheck, boundscheck and a
//! determinism audit that classifies kernels as `Deterministic`,
//! `AtomicOrderSensitive` or `Racy`. Build an instrumented device with
//! [`Device::sanitized`] and allocate buffers through its named `buf_*`
//! helpers.
//!
//! # Example
//!
//! ```
//! use gpasta_gpu::{AtomicBuf, Device};
//!
//! let dev = Device::new(4);
//! let buf = AtomicBuf::zeroed(1024);
//! let b = buf.clone();
//! // One "GPU thread" per element, like `kernel<<<grid, block>>>`:
//! dev.launch(1024, move |gid| {
//!     b.store(gid as usize, gid * 2);
//! });
//! assert_eq!(buf.load(513), 1026);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod device;
pub mod prims;
pub mod sanitizer;
mod timer;

pub use buffer::{AtomicBuf, AtomicBuf64, CheckedBuf};
pub use device::Device;
pub use sanitizer::{
    audit_determinism, AuditOutcome, BoundsError, SanitizerReport, Schedule, Verdict, Violation,
    ViolationKind,
};
pub use timer::KernelTimer;
