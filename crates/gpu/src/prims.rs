//! Thrust-style deterministic parallel primitives.
//!
//! Algorithm 2 of the paper replaces racy atomics with a pipeline of
//! `parallel_sort_by_key`, `parallel_reduce_by_key`,
//! `parallel_exclusive_scan`, `parallel_inclusive_scan` and `binarySearch`.
//! These primitives are *deterministic*: their output depends only on their
//! input, never on thread interleaving — the property that makes
//! deter-G-PASTA reproducible. Every function here honours that contract
//! for any [`Device`] worker count (sums use wrapping `u32` addition, which
//! is commutative and associative, so even atomic accumulation is
//! order-insensitive).

use crate::Device;

/// Deterministic parallel sort of 64-bit keys (ascending).
///
/// Mirrors `thrust::sort` on the key array of Algorithm 2 line 5. The
/// implementation chunk-sorts in parallel across the device workers and
/// k-way-merges the runs; the result equals `keys.sort_unstable()` for any
/// worker count.
///
/// # Example
///
/// ```
/// use gpasta_gpu::{prims, Device};
///
/// let dev = Device::new(2);
/// let mut keys = vec![5u64, 1, 4, 1, 3];
/// prims::sort_u64(&dev, &mut keys);
/// assert_eq!(keys, vec![1, 1, 3, 4, 5]);
/// ```
pub fn sort_u64(dev: &Device, keys: &mut Vec<u64>) {
    let n = keys.len();
    let threads = dev.num_threads().min(n.max(1));
    if threads <= 1 || n < 4096 {
        keys.sort_unstable();
        return;
    }

    // Parallel chunk sort.
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for part in keys.chunks_mut(chunk) {
            s.spawn(|| part.sort_unstable());
        }
    });

    // K-way merge of the sorted runs (sequential, deterministic).
    let runs: Vec<&[u64]> = keys.chunks(chunk).collect();
    let mut cursors = vec![0usize; runs.len()];
    let mut out = Vec::with_capacity(n);
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (r, run) in runs.iter().enumerate() {
            if cursors[r] < run.len() {
                let v = run[cursors[r]];
                if best.is_none_or(|(bv, _)| v < bv) {
                    best = Some((v, r));
                }
            }
        }
        match best {
            Some((v, r)) => {
                out.push(v);
                cursors[r] += 1;
            }
            None => break,
        }
    }
    drop(runs);
    *keys = out;
}

/// Exclusive prefix sum: `out[i] = xs[0] + … + xs[i-1]`, `out[0] = 0`.
///
/// Mirrors `thrust::exclusive_scan` (Algorithm 2 line 10). Uses the classic
/// three-phase blocked scan: parallel per-chunk sums, sequential scan of
/// chunk totals, parallel offset add.
///
/// # Example
///
/// ```
/// use gpasta_gpu::{prims, Device};
///
/// let dev = Device::single();
/// assert_eq!(prims::exclusive_scan(&dev, &[3, 1, 4]), vec![0, 3, 4]);
/// ```
pub fn exclusive_scan(dev: &Device, xs: &[u32]) -> Vec<u32> {
    scan(dev, xs, false)
}

/// Inclusive prefix sum: `out[i] = xs[0] + … + xs[i]`.
///
/// Mirrors `thrust::inclusive_scan` (Algorithm 2 line 20).
///
/// # Example
///
/// ```
/// use gpasta_gpu::{prims, Device};
///
/// let dev = Device::single();
/// assert_eq!(prims::inclusive_scan(&dev, &[3, 1, 4]), vec![3, 4, 8]);
/// ```
pub fn inclusive_scan(dev: &Device, xs: &[u32]) -> Vec<u32> {
    scan(dev, xs, true)
}

fn scan(dev: &Device, xs: &[u32], inclusive: bool) -> Vec<u32> {
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = dev.num_threads().min(n);
    if threads <= 1 || n < 4096 {
        let mut out = Vec::with_capacity(n);
        let mut acc = 0u32;
        for &x in xs {
            if inclusive {
                acc = acc.wrapping_add(x);
                out.push(acc);
            } else {
                out.push(acc);
                acc = acc.wrapping_add(x);
            }
        }
        return out;
    }

    let chunk = n.div_ceil(threads);
    // Phase 1: per-chunk local scans, in parallel.
    let mut out = vec![0u32; n];
    let mut sums = vec![0u32; xs.chunks(chunk).len()];
    std::thread::scope(|s| {
        for ((src, dst), sum) in xs
            .chunks(chunk)
            .zip(out.chunks_mut(chunk))
            .zip(sums.iter_mut())
        {
            s.spawn(move || {
                let mut acc = 0u32;
                for (d, &x) in dst.iter_mut().zip(src) {
                    if inclusive {
                        acc = acc.wrapping_add(x);
                        *d = acc;
                    } else {
                        *d = acc;
                        acc = acc.wrapping_add(x);
                    }
                }
                // For both scan flavours the chunk total is the full sum.
                *sum = acc;
            });
        }
    });
    // Phase 2: sequential scan of chunk totals.
    let mut offsets = Vec::with_capacity(sums.len());
    let mut acc = 0u32;
    for &s in &sums {
        offsets.push(acc);
        acc = acc.wrapping_add(s);
    }
    // Phase 3: add offsets, in parallel.
    std::thread::scope(|s| {
        for (dst, &off) in out.chunks_mut(chunk).zip(&offsets) {
            s.spawn(move || {
                for d in dst {
                    *d = d.wrapping_add(off);
                }
            });
        }
    });
    out
}

/// Segmented reduction over *pre-sorted* (grouped) keys: returns the unique
/// keys in order of first appearance and the sum of `vals` within each
/// group.
///
/// Mirrors `thrust::reduce_by_key` (Algorithm 2 line 9, where `vals` is an
/// array of ones and the result is each partition's size).
///
/// # Panics
///
/// Panics if `keys.len() != vals.len()`.
///
/// # Example
///
/// ```
/// use gpasta_gpu::{prims, Device};
///
/// let dev = Device::single();
/// let (keys, sums) = prims::reduce_by_key(&dev, &[7, 7, 9, 9, 9], &[1, 1, 1, 1, 1]);
/// assert_eq!(keys, vec![7, 9]);
/// assert_eq!(sums, vec![2, 3]);
/// ```
pub fn reduce_by_key(dev: &Device, keys: &[u32], vals: &[u32]) -> (Vec<u32>, Vec<u32>) {
    assert_eq!(keys.len(), vals.len(), "keys/vals length mismatch");
    let n = keys.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }

    // Head flags: 1 where a new segment starts.
    let mut flags = vec![0u32; n];
    flags[0] = 1;
    let threads = dev.num_threads().min(n);
    if threads > 1 && n >= 4096 {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|s| {
            for (c, dst) in flags.chunks_mut(chunk).enumerate() {
                let base = c * chunk;
                s.spawn(move || {
                    for (i, f) in dst.iter_mut().enumerate() {
                        let g = base + i;
                        if g > 0 {
                            *f = u32::from(keys[g] != keys[g - 1]);
                        }
                    }
                });
            }
        });
        flags[0] = 1;
    } else {
        for i in 1..n {
            flags[i] = u32::from(keys[i] != keys[i - 1]);
        }
    }

    // Segment index of each element = inclusive_scan(flags) - 1.
    let seg = inclusive_scan(dev, &flags);
    let num_segments = seg[n - 1] as usize;

    let mut out_keys = vec![0u32; num_segments];
    let mut out_sums = vec![0u32; num_segments];
    // Sequential accumulation; wrapping add keeps parity with the atomic
    // variant a real GPU would use.
    for i in 0..n {
        let s = (seg[i] - 1) as usize;
        out_keys[s] = keys[i];
        out_sums[s] = out_sums[s].wrapping_add(vals[i]);
    }
    (out_keys, out_sums)
}

/// Index of the segment (in a sorted array of segment-start offsets) that
/// contains position `x`: the largest `i` with `starts[i] <= x`.
///
/// Mirrors Algorithm 2 line 13: `binarySearch(gid, fir_tid_arr)` locates the
/// partition whose first-task offset covers the thread's position.
///
/// # Panics
///
/// Panics if `starts` is empty or `x < starts[0]`.
///
/// # Example
///
/// ```
/// use gpasta_gpu::prims;
///
/// let starts = [0u32, 4, 9];
/// assert_eq!(prims::segment_of(&starts, 0), 0);
/// assert_eq!(prims::segment_of(&starts, 3), 0);
/// assert_eq!(prims::segment_of(&starts, 4), 1);
/// assert_eq!(prims::segment_of(&starts, 100), 2);
/// ```
pub fn segment_of(starts: &[u32], x: u32) -> usize {
    assert!(!starts.is_empty(), "segment array is empty");
    assert!(x >= starts[0], "position precedes the first segment");
    // partition_point returns the first index with start > x.
    starts.partition_point(|&s| s <= x) - 1
}

/// Non-panicking [`segment_of`]: `None` when `starts` is empty or `x`
/// precedes the first segment — the checked-view counterpart for host
/// arrays, so sanitized kernels can surface a diagnostic instead of a bare
/// assertion failure.
pub fn try_segment_of(starts: &[u32], x: u32) -> Option<usize> {
    if starts.is_empty() || x < starts[0] {
        return None;
    }
    Some(starts.partition_point(|&s| s <= x) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices() -> Vec<Device> {
        vec![Device::single(), Device::new(2), Device::new(4)]
    }

    #[test]
    fn sort_small_and_empty() {
        let dev = Device::new(2);
        let mut v: Vec<u64> = vec![];
        sort_u64(&dev, &mut v);
        assert!(v.is_empty());
        let mut v = vec![2u64, 1];
        sort_u64(&dev, &mut v);
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn sort_large_matches_std_for_all_worker_counts() {
        // Deterministic pseudo-random input.
        let mut x = 0x9e3779b97f4a7c15u64;
        let input: Vec<u64> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect();
        let mut expect = input.clone();
        expect.sort_unstable();
        for dev in devices() {
            let mut got = input.clone();
            sort_u64(&dev, &mut got);
            assert_eq!(got, expect, "worker count {}", dev.num_threads());
        }
    }

    #[test]
    fn scans_match_reference_for_all_worker_counts() {
        let input: Vec<u32> = (0..10_000).map(|i| (i * 7 + 3) % 11).collect();
        let mut exc = Vec::with_capacity(input.len());
        let mut inc = Vec::with_capacity(input.len());
        let mut acc = 0u32;
        for &x in &input {
            exc.push(acc);
            acc += x;
            inc.push(acc);
        }
        for dev in devices() {
            assert_eq!(exclusive_scan(&dev, &input), exc);
            assert_eq!(inclusive_scan(&dev, &input), inc);
        }
    }

    #[test]
    fn scan_empty_and_singleton() {
        let dev = Device::new(2);
        assert!(exclusive_scan(&dev, &[]).is_empty());
        assert_eq!(exclusive_scan(&dev, &[5]), vec![0]);
        assert_eq!(inclusive_scan(&dev, &[5]), vec![5]);
    }

    #[test]
    fn reduce_by_key_basic() {
        let dev = Device::single();
        let (k, s) = reduce_by_key(&dev, &[1, 1, 2, 3, 3, 3], &[10, 1, 5, 2, 2, 2]);
        assert_eq!(k, vec![1, 2, 3]);
        assert_eq!(s, vec![11, 5, 6]);
    }

    #[test]
    fn reduce_by_key_all_same_and_all_distinct() {
        let dev = Device::new(2);
        let (k, s) = reduce_by_key(&dev, &[4; 5], &[1; 5]);
        assert_eq!((k, s), (vec![4], vec![5]));
        let (k, s) = reduce_by_key(&dev, &[1, 2, 3], &[7, 8, 9]);
        assert_eq!((k, s), (vec![1, 2, 3], vec![7, 8, 9]));
    }

    #[test]
    fn reduce_by_key_empty() {
        let dev = Device::single();
        let (k, s) = reduce_by_key(&dev, &[], &[]);
        assert!(k.is_empty() && s.is_empty());
    }

    #[test]
    fn reduce_by_key_large_matches_sequential_for_all_worker_counts() {
        let n = 12_000usize;
        let keys: Vec<u32> = (0..n).map(|i| (i / 7) as u32).collect();
        let vals: Vec<u32> = (0..n).map(|i| (i % 5) as u32).collect();
        let reference = {
            let dev = Device::single();
            reduce_by_key(&dev, &keys, &vals)
        };
        for dev in devices() {
            assert_eq!(reduce_by_key(&dev, &keys, &vals), reference);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn reduce_by_key_length_mismatch_panics() {
        reduce_by_key(&Device::single(), &[1], &[]);
    }

    #[test]
    fn segment_of_edges() {
        let starts = [0u32, 1, 2];
        assert_eq!(segment_of(&starts, 0), 0);
        assert_eq!(segment_of(&starts, 1), 1);
        assert_eq!(segment_of(&starts, 2), 2);
        assert_eq!(segment_of(&starts, u32::MAX), 2);
    }

    #[test]
    #[should_panic(expected = "segment array is empty")]
    fn segment_of_empty_panics() {
        segment_of(&[], 0);
    }

    #[test]
    fn try_segment_of_matches_and_reports() {
        let starts = [0u32, 4, 9];
        assert_eq!(try_segment_of(&starts, 3), Some(0));
        assert_eq!(try_segment_of(&starts, 4), Some(1));
        assert_eq!(try_segment_of(&starts, 100), Some(2));
        assert_eq!(try_segment_of(&[], 0), None);
        assert_eq!(
            try_segment_of(&[5], 4),
            None,
            "position precedes the first segment"
        );
    }

    #[test]
    fn sort_key_packing_round_trip() {
        // The Algorithm 2 key layout: pid << 32 | task, sorted by pid then
        // task.
        let dev = Device::single();
        let mut keys: Vec<u64> = vec![(2u64 << 32) | 5, (1u64 << 32) | 9, (1u64 << 32) | 3];
        sort_u64(&dev, &mut keys);
        let pids: Vec<u64> = keys.iter().map(|k| k >> 32).collect();
        let tasks: Vec<u64> = keys.iter().map(|k| k & 0xffff_ffff).collect();
        assert_eq!(pids, vec![1, 1, 2]);
        assert_eq!(tasks, vec![3, 9, 5]);
    }
}
