//! Per-kernel wall-clock accounting (the `cudaEvent` stand-in).

use gpasta_check::sync::Mutex;
use std::collections::BTreeMap;
use std::time::Duration;

/// Accumulates execution time per kernel name.
///
/// # Example
///
/// ```
/// use gpasta_gpu::KernelTimer;
/// use std::time::Duration;
///
/// let timer = KernelTimer::new();
/// timer.record("assign_f_pid", Duration::from_micros(15));
/// timer.record("assign_f_pid", Duration::from_micros(10));
/// let report = timer.report();
/// assert_eq!(report.len(), 1);
/// assert_eq!(report[0].0, "assign_f_pid");
/// assert_eq!(report[0].1, 2); // invocation count
/// ```
#[derive(Debug, Default)]
pub struct KernelTimer {
    entries: Mutex<BTreeMap<String, (u64, Duration)>>,
}

impl KernelTimer {
    /// Create an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one invocation of `name` taking `elapsed`.
    pub fn record(&self, name: &str, elapsed: Duration) {
        let mut entries = self.entries.lock();
        let entry = entries
            .entry(name.to_owned())
            .or_insert((0, Duration::ZERO));
        entry.0 += 1;
        entry.1 += elapsed;
    }

    /// Run `f`, recording its duration under `name`, and return its result.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Total time across all kernels.
    pub fn total(&self) -> Duration {
        self.entries.lock().values().map(|&(_, d)| d).sum()
    }

    /// Snapshot of `(kernel name, invocation count, total time)` rows,
    /// sorted by name.
    pub fn report(&self) -> Vec<(String, u64, Duration)> {
        self.entries
            .lock()
            .iter()
            .map(|(k, &(c, d))| (k.clone(), c, d))
            .collect()
    }

    /// Discard all recorded entries.
    pub fn reset(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let t = KernelTimer::new();
        t.record("k", Duration::from_millis(2));
        t.record("k", Duration::from_millis(3));
        t.record("other", Duration::from_millis(1));
        assert_eq!(t.total(), Duration::from_millis(6));
        let report = t.report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0], ("k".to_owned(), 2, Duration::from_millis(5)));
    }

    #[test]
    fn time_returns_closure_result() {
        let t = KernelTimer::new();
        let v = t.time("compute", || 21 * 2);
        assert_eq!(v, 42);
        assert_eq!(t.report()[0].1, 1);
    }

    #[test]
    fn reset_clears() {
        let t = KernelTimer::new();
        t.record("k", Duration::from_millis(1));
        t.reset();
        assert!(t.report().is_empty());
        assert_eq!(t.total(), Duration::ZERO);
    }
}
