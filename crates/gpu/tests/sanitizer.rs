//! Acceptance tests for the device sanitizer: racecheck, initcheck,
//! boundscheck and the determinism audit, including the inline-launch fast
//! path (which must be just as instrumented as the threaded path).

use gpasta_gpu::{audit_determinism, Device, Schedule, Verdict, ViolationKind};

/// The deliberately racy kernel from the acceptance criteria: every gid
/// plain-stores to the same word.
#[test]
fn racecheck_flags_plain_stores_to_one_word() {
    let dev = Device::sanitized(2);
    let victim = dev.buf_zeroed("victim", 1);
    dev.launch(128, |gid| victim.store(0, gid)); // n >= 64: threaded path
    let rep = dev.sanitizer_report().unwrap();
    assert!(rep.race_count() > 0, "racy kernel must be flagged: {rep}");
    let race = rep.races().next().unwrap();
    assert_eq!(race.kind, ViolationKind::StoreStoreRace);
    assert_eq!(race.buffer, "victim");
    assert_eq!(race.index, 0);
    assert_ne!(
        race.gids.0, race.gids.1,
        "a race involves two distinct gids"
    );
}

/// Satellite: the INLINE_THRESHOLD fast path must still produce access
/// records — a racy kernel too small for the threaded path is still caught.
#[test]
fn racecheck_flags_races_on_the_inline_fast_path() {
    let dev = Device::sanitized(4);
    let victim = dev.buf_zeroed("victim", 1);
    dev.launch(8, |gid| victim.store(0, gid)); // n < 64: inline path
    let rep = dev.sanitizer_report().unwrap();
    assert_eq!(rep.launches, 1);
    assert!(
        rep.race_count() > 0,
        "inline launches must be instrumented too: {rep}"
    );
}

#[test]
fn racecheck_flags_store_load_pairs() {
    let dev = Device::sanitized(1);
    let buf = dev.buf_zeroed("shared", 1);
    dev.launch(4, |gid| {
        if gid == 0 {
            buf.store(0, 7);
        } else {
            let _ = buf.load(0);
        }
    });
    let rep = dev.sanitizer_report().unwrap();
    assert!(
        rep.violations
            .iter()
            .any(|v| v.kind == ViolationKind::StoreLoadRace),
        "store/load pair from different gids must be flagged: {rep}"
    );
}

#[test]
fn racecheck_flags_atomic_vs_plain_but_not_atomic_vs_atomic() {
    // All-atomic access to one word is well-defined (Algorithm 1's whole
    // premise) — clean.
    let dev = Device::sanitized(2);
    let ctr = dev.buf_zeroed("counter", 1);
    dev.launch(128, |_| {
        ctr.fetch_add(0, 1);
    });
    assert!(dev.sanitizer_report().unwrap().is_clean());

    // Mixing a plain load into the same word is a race.
    let dev = Device::sanitized(2);
    let ctr = dev.buf_zeroed("counter", 1);
    dev.launch(128, |gid| {
        if gid == 0 {
            let _ = ctr.load(0);
        } else {
            ctr.fetch_add(0, 1);
        }
    });
    let rep = dev.sanitizer_report().unwrap();
    assert!(
        rep.violations
            .iter()
            .any(|v| v.kind == ViolationKind::AtomicPlainRace),
        "atomic/plain mix must be flagged: {rep}"
    );
}

#[test]
fn distinct_indices_per_gid_are_clean() {
    let dev = Device::sanitized(4);
    let out = dev.buf_uninit("out", 1000);
    dev.launch(1000, |gid| out.store(gid as usize, gid * 2));
    let sum = dev.buf_zeroed("sum", 1);
    dev.launch(1000, |gid| {
        sum.fetch_add(0, out.load(gid as usize));
    });
    let rep = dev.sanitizer_report().unwrap();
    assert!(
        rep.is_clean(),
        "disjoint writes then next-launch reads are race-free: {rep}"
    );
    assert_eq!(rep.launches, 2);
}

#[test]
fn initcheck_flags_reads_of_never_written_words() {
    let dev = Device::sanitized(1);
    let buf = dev.buf_uninit("maybe", 8);
    dev.launch(8, |gid| {
        if gid < 4 {
            buf.store(gid as usize, 1);
        }
    });
    // Next launch reads everything: the upper half was never written.
    let sink = dev.buf_zeroed("sink", 1);
    dev.launch(8, |gid| {
        sink.fetch_add(0, buf.load(gid as usize));
    });
    let rep = dev.sanitizer_report().unwrap();
    let uninit: Vec<_> = rep
        .violations
        .iter()
        .filter(|v| v.kind == ViolationKind::UninitRead)
        .collect();
    assert_eq!(uninit.len(), 4, "exactly the 4 unwritten words: {rep}");
    assert!(uninit.iter().all(|v| v.buffer == "maybe" && v.index >= 4));
}

#[test]
fn initcheck_trusts_zeroed_and_host_initialised_buffers() {
    let dev = Device::sanitized(1);
    let zeroed = dev.buf_zeroed("zeroed", 4);
    let seeded = dev.buf_from_slice("seeded", &[1, 2, 3, 4]);
    let filled = dev.buf_uninit("filled", 4);
    filled.fill(9); // cudaMemset marks the words initialised
    let sink = dev.buf_zeroed("sink", 1);
    dev.launch(4, |gid| {
        let i = gid as usize;
        sink.fetch_add(0, zeroed.load(i) + seeded.load(i) + filled.load(i));
    });
    assert!(dev.sanitizer_report().unwrap().is_clean());
}

#[test]
fn boundscheck_checked_view_reports_instead_of_panicking() {
    let dev = Device::sanitized(1);
    let buf = dev.buf_zeroed("small", 3);
    let seen = dev.buf_zeroed("seen", 1);
    dev.launch(8, |gid| {
        // Indices 3..8 overflow; the checked view turns that into an error
        // value (and a report entry) instead of a panic.
        match buf.checked().store(gid as usize, 1) {
            Ok(()) => {}
            Err(e) => {
                assert_eq!(e.buffer, "small");
                assert_eq!(e.len, 3);
                seen.fetch_add(0, 1);
            }
        }
    });
    assert_eq!(seen.load(0), 5);
    let rep = dev.sanitizer_report().unwrap();
    assert_eq!(
        rep.bounds_count(),
        5,
        "each overflowing index is recorded: {rep}"
    );
}

#[test]
#[should_panic(expected = "out-of-bounds store on `small`")]
fn boundscheck_unchecked_panic_names_the_buffer() {
    let dev = Device::sanitized(1);
    let buf = dev.buf_zeroed("small", 3);
    buf.store(7, 1);
}

/// The host thread runs inline launches itself; afterwards host-side
/// accesses must not masquerade as the last gid of the launch (which would
/// produce false races against other gids of that epoch).
#[test]
fn inline_launch_resets_host_context() {
    let dev = Device::sanitized(1);
    let buf = dev.buf_zeroed("grid", 8);
    dev.launch(8, |gid| buf.store(gid as usize, gid)); // inline: n < 64
    buf.store(0, 99); // host write to a word gid 0 stored to
    buf.store(1, 99);
    let rep = dev.sanitizer_report().unwrap();
    assert!(
        rep.is_clean(),
        "host access after an inline launch was misattributed: {rep}"
    );
}

/// GPasta's pid-allocation launch in miniature (Algorithm 1 step 1): tasks
/// race with `atomicAdd` for slots in their desired partition; losers open
/// fresh partitions. Race-free, but the winner depends on atomic order.
fn pid_allocation(dev: &Device) -> Vec<u32> {
    let ps = 2; // partition capacity
    let pid_cnt = dev.buf_zeroed("pid_cnt", 8);
    let max_pid = dev.buf_zeroed("max_pid", 1);
    let f_pid = dev.buf_uninit("f_pid", 8);
    dev.launch(8, |gid| {
        let desired = 0usize; // every task wants partition 0
        let pid = if pid_cnt.fetch_add(desired, 1) < ps {
            desired as u32
        } else {
            max_pid.fetch_add(0, 1) + 1
        };
        f_pid.store(gid as usize, pid);
    });
    f_pid.to_vec()
}

/// Acceptance: the audit classifies the atomicAdd allocation as
/// order-sensitive (not racy, not deterministic) across workers {1, 2, 4}.
#[test]
fn audit_classifies_pid_allocation_as_order_sensitive() {
    let outcome = audit_determinism(&[1, 2, 4], 2, pid_allocation);
    assert_eq!(outcome.verdict, Verdict::AtomicOrderSensitive, "{outcome}");
    assert_eq!(
        outcome.report.race_count(),
        0,
        "atomic allocation has no data race"
    );
    assert!(outcome.distinct_outputs > 1);
    assert_eq!(outcome.runs, 3 * Schedule::ALL.len() * 2);
}

/// Acceptance: a schedule-independent kernel (the shape of Algorithm 2's
/// sorted, rank-based assignment) audits as Deterministic.
#[test]
fn audit_classifies_rank_based_assignment_as_deterministic() {
    let outcome = audit_determinism(&[1, 2, 4], 2, |dev| {
        let f_pid = dev.buf_uninit("f_pid", 8);
        dev.launch(8, |gid| {
            // Partition by precomputed rank — no atomics, no order
            // dependence; this is what sort + scan + binary-search buy.
            f_pid.store(gid as usize, gid / 2);
        });
        f_pid.to_vec()
    });
    assert_eq!(outcome.verdict, Verdict::Deterministic, "{outcome}");
    assert_eq!(outcome.distinct_outputs, 1);
    assert!(outcome.report.is_clean());
}

#[test]
fn audit_classifies_plain_store_conflicts_as_racy() {
    let outcome = audit_determinism(&[1, 2], 1, |dev| {
        let cell = dev.buf_zeroed("cell", 1);
        dev.launch(8, |gid| cell.store(0, gid));
        cell.to_vec()
    });
    assert_eq!(outcome.verdict, Verdict::Racy, "{outcome}");
    assert!(outcome.report.race_count() > 0);
}

#[test]
fn reverse_schedule_flips_atomic_allocation_order() {
    // Direct demonstration of why the audit perturbs the schedule: at one
    // worker, Forward gives the low gids the partition-0 slots, Reverse
    // gives them to the high gids.
    let fwd = pid_allocation(&Device::sanitized(1));
    let rev = pid_allocation(&Device::sanitized(1).with_schedule(Schedule::Reverse));
    assert_ne!(fwd, rev);
    assert_eq!(fwd[0], 0, "forward: gid 0 claims a partition-0 slot");
    assert_eq!(rev[7], 0, "reverse: gid 7 claims a partition-0 slot");
}
