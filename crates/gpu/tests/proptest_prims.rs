//! Property-based tests of the device primitives against reference
//! implementations, across worker counts. Determinism for any worker
//! count is the contract Algorithm 2 depends on.

use gpasta_gpu::{prims, AtomicBuf, Device};
use proptest::prelude::*;

fn devices() -> Vec<Device> {
    vec![Device::single(), Device::new(2), Device::new(5)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sort_matches_std(mut input in proptest::collection::vec(any::<u64>(), 0..6000)) {
        let mut expect = input.clone();
        expect.sort_unstable();
        for dev in devices() {
            let mut got = input.clone();
            prims::sort_u64(&dev, &mut got);
            prop_assert_eq!(&got, &expect, "workers = {}", dev.num_threads());
        }
        input.clear();
    }

    #[test]
    fn scans_match_reference(input in proptest::collection::vec(0u32..1000, 0..6000)) {
        let mut exc = Vec::with_capacity(input.len());
        let mut inc = Vec::with_capacity(input.len());
        let mut acc = 0u32;
        for &x in &input {
            exc.push(acc);
            acc = acc.wrapping_add(x);
            inc.push(acc);
        }
        for dev in devices() {
            prop_assert_eq!(prims::exclusive_scan(&dev, &input), exc.clone());
            prop_assert_eq!(prims::inclusive_scan(&dev, &input), inc.clone());
        }
    }

    #[test]
    fn scan_handles_wrapping(input in proptest::collection::vec(u32::MAX - 5..=u32::MAX, 0..5000)) {
        // Prefix sums overflow quickly at these magnitudes; all devices
        // must wrap identically.
        let single = prims::inclusive_scan(&Device::single(), &input);
        for dev in devices() {
            prop_assert_eq!(prims::inclusive_scan(&dev, &input), single.clone());
        }
    }

    #[test]
    fn reduce_by_key_matches_reference(runs in proptest::collection::vec((0u32..50, 1usize..9, 0u32..100), 0..300)) {
        // Build grouped keys from run-length descriptions; dedupe adjacent
        // equal keys into one run (the reference merges them too).
        let mut keys = Vec::new();
        let mut vals = Vec::new();
        for &(key, len, val) in &runs {
            for i in 0..len {
                keys.push(key);
                vals.push(val + i as u32);
            }
        }
        // Reference.
        let mut ref_keys: Vec<u32> = Vec::new();
        let mut ref_sums: Vec<u32> = Vec::new();
        for (k, v) in keys.iter().zip(&vals) {
            if ref_keys.last() == Some(k) {
                let s = ref_sums.last_mut().expect("non-empty");
                *s = s.wrapping_add(*v);
            } else {
                ref_keys.push(*k);
                ref_sums.push(*v);
            }
        }
        for dev in devices() {
            let (k, s) = prims::reduce_by_key(&dev, &keys, &vals);
            prop_assert_eq!(&k, &ref_keys);
            prop_assert_eq!(&s, &ref_sums);
        }
    }

    #[test]
    fn segment_of_matches_linear_search(mut starts in proptest::collection::vec(0u32..10_000, 1..50), x in 0u32..20_000) {
        starts.sort_unstable();
        starts.dedup();
        if starts[0] != 0 {
            starts.insert(0, 0);
        }
        let expect = starts
            .iter()
            .rposition(|&s| s <= x)
            .expect("starts[0] == 0 covers every x");
        prop_assert_eq!(prims::segment_of(&starts, x), expect);
    }

    #[test]
    fn launch_touches_every_index_once(n in 0u32..20_000, workers in 1usize..9) {
        // Covers both launch paths for every worker count 1..=8: small n
        // takes the inline fast path, large n the self-scheduling path.
        let dev = Device::new(workers);
        let buf = AtomicBuf::zeroed(n as usize);
        dev.launch(n, |gid| {
            buf.fetch_add(gid as usize, 1);
        });
        prop_assert!(buf.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn launch_touches_every_index_once_under_any_schedule(
        n in 0u32..20_000,
        workers in 1usize..9,
        sched_ix in 0usize..3,
    ) {
        let dev = Device::new(workers).with_schedule(gpasta_gpu::Schedule::ALL[sched_ix]);
        let buf = AtomicBuf::zeroed(n as usize);
        dev.launch(n, |gid| {
            buf.fetch_add(gid as usize, 1);
        });
        prop_assert!(buf.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn atomic_sum_is_exact(n in 0u32..30_000, workers in 1usize..6) {
        let dev = Device::new(workers);
        let acc = AtomicBuf::zeroed(1);
        dev.launch(n, |gid| {
            acc.fetch_add(0, gid % 7);
        });
        let expect: u32 = (0..n).map(|g| g % 7).sum();
        prop_assert_eq!(acc.load(0), expect);
    }
}
