//! Seeded layered netlist generation.

use gpasta_sta::{CellKind, GateId, Netlist, NetlistBuilder, PinRef, PortId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Parameters of a synthetic design.
///
/// Generation is layered: gates are assigned to `depth` logic levels and
/// draw their inputs from earlier levels (biased towards recent ones), so
/// the result is combinationally acyclic by construction and has a logic
/// depth close to `depth`.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitSpec {
    /// Design name (used in reports).
    pub name: String,
    /// Number of gate instances (including flip-flops).
    pub num_gates: usize,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Target logic depth (number of layers).
    pub depth: usize,
    /// Fraction of gates that are D flip-flops.
    pub seq_ratio: f64,
    /// RNG seed; equal specs generate identical netlists.
    pub seed: u64,
}

impl CircuitSpec {
    /// A small default spec, handy for tests.
    pub fn small(name: impl Into<String>, seed: u64) -> Self {
        CircuitSpec {
            name: name.into(),
            num_gates: 400,
            num_inputs: 24,
            num_outputs: 24,
            depth: 18,
            seq_ratio: 0.08,
            seed,
        }
    }

    /// Derive a spec whose generated `update_timing` TDG has approximately
    /// `target_tasks` tasks (the calibration used for the paper suite).
    ///
    /// The task count of a full update is `2 × nodes`, and the expected
    /// node count per gate follows from the cell-mix input-arity average —
    /// see [`expected_tasks`](CircuitSpec::expected_tasks).
    pub fn for_tasks(
        name: impl Into<String>,
        target_tasks: usize,
        depth: usize,
        seed: u64,
    ) -> Self {
        // Register-rich profile (leon2-class SoCs are 20-30 % flip-flops).
        // Source density drives how far G-PASTA's default-Ps clustering
        // converges: the update-TDG sources are the PIs plus the DFF
        // outputs, and the paper's circuits saturate at ~15 tasks per
        // partition, i.e. sources ~= tasks / 15.
        let seq_ratio = 0.20;
        // avg inputs per gate = (1 - seq) * comb_avg + seq * 1
        let avg_in = (1.0 - seq_ratio) * COMB_AVG_INPUTS + seq_ratio;
        // nodes = PI + gates*(avg_in + 1) + PO; tasks = 2*nodes.
        let io = ((target_tasks as f64) * 0.002).max(8.0) as usize;
        let nodes = target_tasks as f64 / 2.0;
        let num_gates = ((nodes - 2.0 * io as f64) / (avg_in + 1.0)).max(1.0) as usize;
        CircuitSpec {
            name: name.into(),
            num_gates,
            num_inputs: io,
            num_outputs: io,
            depth,
            seq_ratio,
            seed,
        }
    }

    /// Expected `update_timing` task count of the generated design (the
    /// calibration target; the realised count differs by the random cell
    /// mix, typically within a few percent).
    pub fn expected_tasks(&self) -> usize {
        let avg_in = (1.0 - self.seq_ratio) * COMB_AVG_INPUTS + self.seq_ratio;
        let nodes = self.num_inputs as f64
            + self.num_gates as f64 * (avg_in + 1.0)
            + self.num_outputs as f64;
        (2.0 * nodes) as usize
    }
}

/// Combinational cell mix: `(kind, relative weight)`. Mirrors a typical
/// mapped-netlist profile (mostly 2-input cells, some 1- and 3-input).
const CELL_MIX: &[(CellKind, f64)] = &[
    (CellKind::Inv, 0.15),
    (CellKind::Buf, 0.10),
    (CellKind::Nand2, 0.20),
    (CellKind::Nor2, 0.10),
    (CellKind::And2, 0.10),
    (CellKind::Or2, 0.10),
    (CellKind::Xor2, 0.05),
    (CellKind::Nand3, 0.10),
    (CellKind::Mux2, 0.05),
    (CellKind::Aoi21, 0.05),
];

/// Average input arity of [`CELL_MIX`].
const COMB_AVG_INPUTS: f64 = 1.95;

fn draw_cell(rng: &mut ChaCha8Rng) -> CellKind {
    let total: f64 = CELL_MIX.iter().map(|&(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for &(kind, w) in CELL_MIX {
        if x < w {
            return kind;
        }
        x -= w;
    }
    CellKind::Nand2
}

/// What can drive a gate input at a given layer.
#[derive(Clone, Copy)]
enum Driver {
    Pi(PortId),
    Gate(GateId),
}

/// Generate a netlist from `spec`. Deterministic in the spec (including its
/// seed).
///
/// # Panics
///
/// Panics if the spec has zero gates, inputs, or depth.
pub fn generate_netlist(spec: &CircuitSpec) -> Netlist {
    assert!(spec.num_gates > 0, "spec needs at least one gate");
    assert!(spec.num_inputs > 0, "spec needs at least one primary input");
    assert!(spec.depth > 0, "spec needs at least one layer");
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut nb = NetlistBuilder::new();

    let pis: Vec<PortId> = (0..spec.num_inputs)
        .map(|i| nb.add_primary_input(format!("in{i}")))
        .collect();

    // Assign gates round-robin to layers so every layer is populated.
    let depth = spec.depth.min(spec.num_gates);
    let mut layers: Vec<Vec<GateId>> = vec![Vec::new(); depth];
    let mut all_gates = Vec::with_capacity(spec.num_gates);
    for i in 0..spec.num_gates {
        let is_ff = rng.gen_bool(spec.seq_ratio);
        let kind = if is_ff {
            CellKind::Dff
        } else {
            draw_cell(&mut rng)
        };
        let g = nb.add_gate(format!("u{i}"), kind);
        layers[i % depth].push(g);
        all_gates.push((g, kind));
    }

    // Drivers available to layer l: PIs, gate outputs of layers < l, and
    // (because flip-flops break combinational paths) *any* DFF output.
    // Connect each gate input to a random available driver with a bias
    // towards the immediately preceding layer (local wiring).
    let mut prior: Vec<Driver> = pis.iter().map(|&p| Driver::Pi(p)).collect();
    // DFF outputs can feed any layer, including earlier ones, without
    // creating combinational cycles; collect them up front.
    let dff_outputs: Vec<Driver> = all_gates
        .iter()
        .filter(|&&(_, k)| k.is_sequential())
        .map(|&(g, _)| Driver::Gate(g))
        .collect();

    let mut recent: Vec<Driver> = Vec::new();
    for layer in &layers {
        let mut produced = Vec::with_capacity(layer.len());
        for (pos, &g) in layer.iter().enumerate() {
            let kind = all_gates[g.index()].1;
            for pin in 0..kind.num_inputs() as u8 {
                // 70%: recent layer within a placement window (real
                // netlists wire locally, which keeps fan-out cones narrow);
                // 20%: any prior driver; 10%: a DFF output.
                let pick = rng.gen_range(0..10);
                let driver = if pick < 7 && !recent.is_empty() {
                    let window = (recent.len() / 16).max(8).min(recent.len());
                    let center = pos * recent.len() / layer.len().max(1);
                    let lo = center.saturating_sub(window / 2).min(recent.len() - window);
                    recent[lo + rng.gen_range(0..window)]
                } else if pick < 9 || dff_outputs.is_empty() {
                    prior[rng.gen_range(0..prior.len())]
                } else {
                    dff_outputs[rng.gen_range(0..dff_outputs.len())]
                };
                match driver {
                    Driver::Pi(p) => nb
                        .connect_to_gate(p, g, pin)
                        .expect("generator uses valid pins"),
                    Driver::Gate(d) => nb
                        .connect_gates(d, g, pin)
                        .expect("generator uses valid pins"),
                }
            }
            if !kind.is_sequential() {
                produced.push(Driver::Gate(g));
            }
        }
        prior.extend(recent.iter().copied());
        recent = produced;
    }
    prior.extend(recent);

    // Primary outputs tap late drivers (biased to the last layers).
    for o in 0..spec.num_outputs {
        let out = nb.add_primary_output(format!("out{o}"));
        let lo = prior
            .len()
            .saturating_sub(prior.len() / 4)
            .min(prior.len() - 1);
        let pick = rng.gen_range(lo..prior.len());
        match prior[pick] {
            Driver::Pi(p) => nb.connect_input_to_output(p, out),
            Driver::Gate(g) => nb.connect_to_output(g, out).expect("gate exists"),
        }
    }

    // Sprinkle wire capacitance so net delays are non-trivial.
    for i in 0..spec.num_gates {
        if rng.gen_bool(0.3) {
            nb.add_wire_cap(
                PinRef::GateOutput(GateId(i as u32)),
                rng.gen_range(0.2..4.0),
            );
        }
    }

    nb.build().expect("generator produces complete netlists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_sta::{CellLibrary, TimingGraph};

    #[test]
    fn generates_a_valid_netlist() {
        let spec = CircuitSpec::small("t0", 42);
        let n = generate_netlist(&spec);
        assert_eq!(n.num_gates(), 400);
        assert_eq!(n.num_inputs(), 24);
        // Timing graph must build (acyclic).
        TimingGraph::build(&n, &CellLibrary::typical()).expect("generated design is acyclic");
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let spec = CircuitSpec::small("t0", 7);
        let a = generate_netlist(&spec);
        let b = generate_netlist(&spec);
        assert_eq!(a, b);
        let other = generate_netlist(&CircuitSpec::small("t0", 8));
        assert_ne!(a, other);
    }

    #[test]
    fn calibration_hits_target_task_count() {
        for &target in &[5_000usize, 20_000, 60_000] {
            let spec = CircuitSpec::for_tasks("cal", target, 24, 1);
            let n = generate_netlist(&spec);
            let mut timer = gpasta_sta::Timer::new(n, CellLibrary::typical());
            let update = timer.update_timing();
            let got = update.tdg().num_tasks();
            let err = (got as f64 - target as f64).abs() / target as f64;
            assert!(
                err < 0.10,
                "target {target}, got {got} ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn expected_tasks_is_close_to_realised() {
        let spec = CircuitSpec::for_tasks("cal", 30_000, 20, 3);
        let n = generate_netlist(&spec);
        let mut timer = gpasta_sta::Timer::new(n, CellLibrary::typical());
        let got = timer.update_timing().tdg().num_tasks() as f64;
        let exp = spec.expected_tasks() as f64;
        assert!(
            (got - exp).abs() / exp < 0.08,
            "expected {exp}, realised {got}"
        );
    }

    #[test]
    fn depth_is_respected_roughly() {
        let mut spec = CircuitSpec::small("deep", 5);
        spec.depth = 40;
        spec.num_gates = 2000;
        let n = generate_netlist(&spec);
        let g = TimingGraph::build(&n, &CellLibrary::typical()).expect("acyclic");
        // Build a quick levelisation over the timing graph to measure depth.
        let mut indeg: Vec<u32> = (0..g.num_nodes())
            .map(|v| g.fanin(gpasta_sta::NodeId(v as u32)).len() as u32)
            .collect();
        let mut frontier: Vec<u32> = (0..g.num_nodes() as u32)
            .filter(|&v| indeg[v as usize] == 0)
            .collect();
        let mut depth = 0;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &a in g.fanout(gpasta_sta::NodeId(u)) {
                    let v = g.arc(a).to.0;
                    indeg[v as usize] -= 1;
                    if indeg[v as usize] == 0 {
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        // Each logic layer contributes ~2 graph levels (input pin, output
        // pin); allow generous slack for the random wiring.
        assert!(depth >= 20, "graph depth {depth} too shallow for 40 layers");
    }

    #[test]
    fn sequential_gates_appear_at_requested_ratio() {
        let mut spec = CircuitSpec::small("seq", 11);
        spec.num_gates = 4000;
        spec.seq_ratio = 0.2;
        let n = generate_netlist(&spec);
        let ffs = n.gates().iter().filter(|g| g.cell.is_sequential()).count();
        let ratio = ffs as f64 / n.num_gates() as f64;
        assert!((ratio - 0.2).abs() < 0.03, "DFF ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one gate")]
    fn zero_gates_panics() {
        let mut spec = CircuitSpec::small("bad", 0);
        spec.num_gates = 0;
        let _ = generate_netlist(&spec);
    }
}
