//! Hand-written classic benchmark circuits.
//!
//! [`c17`] is the smallest ISCAS-85 benchmark — six NAND2 gates — useful
//! for documentation, debugging, and as a known-good parser fixture. The
//! netlist follows the published structure (inputs 1, 2, 3, 6, 7; outputs
//! 22, 23).

use gpasta_sta::{parse_verilog, Netlist};

/// Structural Verilog for ISCAS-85 c17.
pub const C17_VERILOG: &str = r"// ISCAS-85 c17: 6 NAND2 gates
module c17 (n1, n2, n3, n6, n7, n22, n23);
  input n1, n2, n3, n6, n7;
  output n22, n23;
  wire w10, w11, w16, w19, wn22, wn23;

  NAND2 g10 (.a(n1),  .b(n3),  .y(w10));
  NAND2 g11 (.a(n3),  .b(n6),  .y(w11));
  NAND2 g16 (.a(n2),  .b(w11), .y(w16));
  NAND2 g19 (.a(w11), .b(n7),  .y(w19));
  NAND2 g22 (.a(w10), .b(w16), .y(wn22));
  NAND2 g23 (.a(w16), .b(w19), .y(wn23));

  assign n22 = wn22;
  assign n23 = wn23;
endmodule
";

/// The ISCAS-85 c17 benchmark as a [`Netlist`].
///
/// # Example
///
/// ```
/// use gpasta_circuits::iscas::c17;
/// use gpasta_sta::{CellLibrary, Timer};
///
/// let mut timer = Timer::new(c17(), CellLibrary::typical());
/// timer.update_timing().run_sequential();
/// assert!(timer.report(2).meets_timing());
/// ```
pub fn c17() -> Netlist {
    parse_verilog(C17_VERILOG).expect("the bundled c17 netlist is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_sta::{CellKind, CellLibrary, Timer};

    #[test]
    fn c17_structure_matches_the_benchmark() {
        let n = c17();
        assert_eq!(n.num_gates(), 6);
        assert_eq!(n.num_inputs(), 5);
        assert_eq!(n.num_outputs(), 2);
        assert!(n.gates().iter().all(|g| g.cell == CellKind::Nand2));
    }

    #[test]
    fn c17_analyses_cleanly() {
        let mut timer = Timer::new(c17(), CellLibrary::typical());
        timer.update_timing().run_sequential();
        let report = timer.report(2);
        assert_eq!(report.num_endpoints, 2);
        assert!(report.meets_timing(), "c17 at 1 ns: {}", report.wns_ps);
        // Critical path: three NAND levels (e.g. n3 -> g11 -> g16 -> g23).
        let worst = &report.worst[0];
        let path = gpasta_sta::trace_worst_path(
            timer.graph(),
            timer.netlist(),
            &CellLibrary::typical(),
            timer.data(),
            worst.node,
        )
        .expect("traceable");
        let gate_hops = path
            .steps
            .iter()
            .filter(|s| s.location.ends_with(".out"))
            .count();
        assert_eq!(gate_hops, 3, "c17's depth is three NANDs");
    }

    #[test]
    fn c17_round_trips() {
        let n = c17();
        let back = gpasta_sta::parse_verilog(&gpasta_sta::write_verilog(&n, "c17"))
            .expect("round trip parses");
        assert_eq!(n, back);
    }
}
