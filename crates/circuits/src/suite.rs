//! The six named designs of the paper's Table 1, calibrated by TDG size.

use crate::gen::{generate_netlist, CircuitSpec};
use gpasta_sta::Netlist;
use std::fmt;

/// One of the six industrial circuits the paper evaluates on, reproduced
/// synthetically at matching `update_timing` TDG size (see `DESIGN.md` §2).
///
/// `build(scale)` generates a design whose TDG task count is approximately
/// `scale × paper task count`; `scale = 1.0` reproduces the paper-size
/// workload (up to 4.3 M tasks — use a machine with several GB of RAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperCircuit {
    /// aes_core — 66.8 K tasks, 86.4 K deps.
    AesCore,
    /// des_perf — 303.7 K tasks, 387.3 K deps.
    DesPerf,
    /// vga_lcd — 397.8 K tasks, 498.9 K deps.
    VgaLcd,
    /// leon3mp — 3.4 M tasks, 4.1 M deps.
    Leon3mp,
    /// netcard — 4.0 M tasks, 4.9 M deps.
    Netcard,
    /// leon2 — 4.3 M tasks, 5.3 M deps.
    Leon2,
}

impl PaperCircuit {
    /// All six circuits in the paper's (size) order.
    pub fn all() -> &'static [PaperCircuit] {
        &[
            PaperCircuit::AesCore,
            PaperCircuit::DesPerf,
            PaperCircuit::VgaLcd,
            PaperCircuit::Leon3mp,
            PaperCircuit::Netcard,
            PaperCircuit::Leon2,
        ]
    }

    /// The circuit's name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            PaperCircuit::AesCore => "aes_core",
            PaperCircuit::DesPerf => "des_perf",
            PaperCircuit::VgaLcd => "vga_lcd",
            PaperCircuit::Leon3mp => "leon3mp",
            PaperCircuit::Netcard => "netcard",
            PaperCircuit::Leon2 => "leon2",
        }
    }

    /// `update_timing` TDG task count reported in Table 1.
    pub fn paper_tasks(self) -> usize {
        match self {
            PaperCircuit::AesCore => 66_800,
            PaperCircuit::DesPerf => 303_700,
            PaperCircuit::VgaLcd => 397_800,
            PaperCircuit::Leon3mp => 3_400_000,
            PaperCircuit::Netcard => 4_000_000,
            PaperCircuit::Leon2 => 4_300_000,
        }
    }

    /// `update_timing` TDG dependency count reported in Table 1.
    pub fn paper_deps(self) -> usize {
        match self {
            PaperCircuit::AesCore => 86_400,
            PaperCircuit::DesPerf => 387_300,
            PaperCircuit::VgaLcd => 498_900,
            PaperCircuit::Leon3mp => 4_100_000,
            PaperCircuit::Netcard => 4_900_000,
            PaperCircuit::Leon2 => 5_300_000,
        }
    }

    /// Logic depth used for the synthetic stand-in (deeper for the large
    /// SoCs, matching how real designs scale).
    fn depth(self) -> usize {
        match self {
            PaperCircuit::AesCore => 30,
            PaperCircuit::DesPerf => 36,
            PaperCircuit::VgaLcd => 40,
            PaperCircuit::Leon3mp => 64,
            PaperCircuit::Netcard => 60,
            PaperCircuit::Leon2 => 70,
        }
    }

    /// The generation spec at `scale` (fraction of the paper's TDG size).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn spec(self, scale: f64) -> CircuitSpec {
        assert!(scale > 0.0, "scale must be positive");
        let tasks = ((self.paper_tasks() as f64) * scale).max(64.0) as usize;
        // Depth shrinks with sqrt(scale) so the width/depth balance (and
        // with it the span-vs-work ratio that partition quality depends
        // on) stays representative of the paper-size design.
        let depth = ((self.depth() as f64) * scale.sqrt()).clamp(4.0, 80.0) as usize;
        CircuitSpec::for_tasks(self.name(), tasks, depth, 0xC0FFEE ^ self as u64)
    }

    /// Generate the synthetic netlist at `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn build(self, scale: f64) -> Netlist {
        generate_netlist(&self.spec(scale))
    }
}

impl fmt::Display for PaperCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_sta::{CellLibrary, Timer};

    #[test]
    fn six_circuits_in_size_order() {
        let all = PaperCircuit::all();
        assert_eq!(all.len(), 6);
        for w in all.windows(2) {
            assert!(w[0].paper_tasks() < w[1].paper_tasks());
            assert!(w[0].paper_deps() < w[1].paper_deps());
        }
    }

    #[test]
    fn scaled_circuit_matches_scaled_task_count() {
        let scale = 0.02;
        for &c in &[PaperCircuit::AesCore, PaperCircuit::DesPerf] {
            let netlist = c.build(scale);
            let mut timer = Timer::new(netlist, CellLibrary::typical());
            let got = timer.update_timing().tdg().num_tasks() as f64;
            let target = c.paper_tasks() as f64 * scale;
            let err = (got - target).abs() / target;
            assert!(
                err < 0.12,
                "{c}: target {target}, got {got} ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn builds_are_reproducible() {
        let a = PaperCircuit::VgaLcd.build(0.005);
        let b = PaperCircuit::VgaLcd.build(0.005);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_circuits_differ() {
        let a = PaperCircuit::AesCore.build(0.01);
        let b = PaperCircuit::DesPerf.build(0.01);
        assert_ne!(a, b);
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(PaperCircuit::Leon2.to_string(), "leon2");
        assert_eq!(PaperCircuit::AesCore.name(), "aes_core");
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = PaperCircuit::Leon2.spec(0.0);
    }
}
