//! Synthetic circuits and DAGs calibrated to the G-PASTA paper's benchmark
//! suite.
//!
//! The paper evaluates on six industrial designs (aes_core, des_perf,
//! vga_lcd, leon3mp, netcard, leon2). Those netlists are not distributable,
//! so this crate generates *synthetic* designs whose `update_timing` TDGs
//! match the paper's reported task counts (Table 1): same workload size and
//! shape, reproducible from a fixed seed. See `DESIGN.md` §2 for the
//! substitution rationale.
//!
//! * [`CircuitSpec`] / [`generate_netlist`] — seeded layered netlist
//!   generation with a realistic cell mix, fan-out distribution, and
//!   sequential elements;
//! * [`PaperCircuit`] — the six named designs with task-count calibration
//!   and a `scale` knob (laptop-size by default, paper-size with
//!   `scale = 1.0`);
//! * [`dag`] — plain DAG generators (layered, chain, fan-in tree,
//!   series-parallel, random) used by partitioner tests and the Figure 1(b)
//!   sweep.
//!
//! # Example
//!
//! ```
//! use gpasta_circuits::PaperCircuit;
//! use gpasta_sta::{CellLibrary, Timer};
//!
//! // A 1%-scale aes_core lookalike.
//! let netlist = PaperCircuit::AesCore.build(0.01);
//! let mut timer = Timer::new(netlist, CellLibrary::typical());
//! let update = timer.update_timing();
//! assert!(update.tdg().num_tasks() > 300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
mod gen;
pub mod iscas;
mod suite;

pub use gen::{generate_netlist, CircuitSpec};
pub use suite::PaperCircuit;
