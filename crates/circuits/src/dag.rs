//! Plain DAG generators for partitioner tests and sweeps.
//!
//! These produce [`Tdg`]s directly (no netlist), which is what the
//! Figure 1(b) partition-time sweep and the partitioner property tests
//! consume.

use gpasta_tdg::{TaskId, Tdg, TdgBuilder};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A chain `0 -> 1 -> … -> n-1` (worst case for parallelism).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain(n: usize) -> Tdg {
    assert!(n > 0, "chain needs at least one task");
    let mut b = TdgBuilder::with_capacity(n, n - 1);
    for i in 0..n as u32 - 1 {
        b.add_edge(TaskId(i), TaskId(i + 1));
    }
    b.build().expect("chain is a DAG")
}

/// `n` independent tasks (best case for parallelism).
pub fn independent(n: usize) -> Tdg {
    TdgBuilder::new(n).build().expect("edgeless graph is a DAG")
}

/// A layered DAG: `levels` levels of `width` tasks; each non-source task
/// has `fanin` predecessors drawn uniformly from the previous level.
///
/// This is the shape of timing-propagation TDGs (long, moderately wide,
/// short dependency span) and the workload of the Figure 1(b) sweep.
///
/// # Panics
///
/// Panics if any parameter is zero.
pub fn layered(width: usize, levels: usize, fanin: usize, seed: u64) -> Tdg {
    assert!(
        width > 0 && levels > 0 && fanin > 0,
        "parameters must be positive"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = width * levels;
    let mut b = TdgBuilder::with_capacity(n, n * fanin);
    for l in 1..levels {
        for i in 0..width {
            let v = (l * width + i) as u32;
            for _ in 0..fanin {
                let u = ((l - 1) * width + rng.gen_range(0..width)) as u32;
                b.add_edge(TaskId(u), TaskId(v));
            }
        }
    }
    b.build().expect("level-ordered edges form a DAG")
}

/// A complete binary fan-in tree with `leaves` leaves reducing to one root
/// (the reduction-tree shape; tests partitioners on narrowing parallelism).
///
/// # Panics
///
/// Panics if `leaves` is not a power of two or is zero.
pub fn fanin_tree(leaves: usize) -> Tdg {
    assert!(
        leaves > 0 && leaves.is_power_of_two(),
        "leaves must be a power of two"
    );
    let n = 2 * leaves - 1;
    // Tasks 0..leaves are leaves; internal nodes follow level by level.
    let mut b = TdgBuilder::with_capacity(n, n - 1);
    let mut level: Vec<u32> = (0..leaves as u32).collect();
    let mut next_id = leaves as u32;
    while level.len() > 1 {
        let mut parents = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            b.add_edge(TaskId(pair[0]), TaskId(next_id));
            b.add_edge(TaskId(pair[1]), TaskId(next_id));
            parents.push(next_id);
            next_id += 1;
        }
        level = parents;
    }
    b.build().expect("tree is a DAG")
}

/// A series-parallel DAG built by recursive composition: `blocks` diamond
/// blocks of `width` parallel arms chained in series.
///
/// # Panics
///
/// Panics if `blocks` or `width` is zero.
pub fn series_parallel(blocks: usize, width: usize) -> Tdg {
    assert!(blocks > 0 && width > 0, "parameters must be positive");
    // Each block: fork -> width arms -> join. Join of block i is fork of
    // block i+1's predecessor.
    let n = blocks * (width + 2);
    let mut b = TdgBuilder::with_capacity(n, 2 * blocks * width + blocks);
    let mut prev_join: Option<u32> = None;
    let mut id = 0u32;
    for _ in 0..blocks {
        let fork = id;
        id += 1;
        if let Some(j) = prev_join {
            b.add_edge(TaskId(j), TaskId(fork));
        }
        let arms: Vec<u32> = (0..width as u32).map(|k| fork + 1 + k).collect();
        id += width as u32;
        let join = id;
        id += 1;
        for &a in &arms {
            b.add_edge(TaskId(fork), TaskId(a));
            b.add_edge(TaskId(a), TaskId(join));
        }
        prev_join = Some(join);
    }
    b.build().expect("series-parallel composition is a DAG")
}

/// A random DAG: `n` tasks, roughly `avg_degree × n` edges oriented from
/// lower to higher id with bounded span (so levels stay populated).
///
/// # Panics
///
/// Panics if `n == 0` or `avg_degree == 0.0`.
pub fn random_dag(n: usize, avg_degree: f64, seed: u64) -> Tdg {
    assert!(n > 0 && avg_degree > 0.0, "parameters must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = (n as f64 * avg_degree) as usize;
    let span = (n / 8).max(2);
    let mut b = TdgBuilder::with_capacity(n, m);
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let d = rng.gen_range(1..=span as u32);
        let v = u.saturating_add(d);
        if (v as usize) < n {
            b.add_edge(TaskId(u), TaskId(v));
        }
    }
    b.build().expect("low-to-high orientation is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_tdg::critical_path_len;

    #[test]
    fn chain_shape() {
        let g = chain(10);
        assert_eq!(g.num_tasks(), 10);
        assert_eq!(g.num_deps(), 9);
        assert_eq!(critical_path_len(&g), 10);
    }

    #[test]
    fn independent_shape() {
        let g = independent(8);
        assert_eq!(g.num_deps(), 0);
        assert_eq!(critical_path_len(&g), 1);
    }

    #[test]
    fn layered_shape() {
        let g = layered(16, 10, 2, 1);
        assert_eq!(g.num_tasks(), 160);
        assert_eq!(critical_path_len(&g), 10);
        // Every non-source level-1+ task has at least one predecessor.
        let levels = g.levels();
        assert_eq!(levels.depth(), 10);
        assert_eq!(levels.width(0), 16);
    }

    #[test]
    fn layered_is_seed_deterministic() {
        assert_eq!(layered(8, 5, 2, 42), layered(8, 5, 2, 42));
        assert_ne!(layered(8, 5, 2, 42), layered(8, 5, 2, 43));
    }

    #[test]
    fn fanin_tree_shape() {
        let g = fanin_tree(8);
        assert_eq!(g.num_tasks(), 15);
        assert_eq!(g.num_deps(), 14);
        assert_eq!(critical_path_len(&g), 4);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.sources().len(), 8);
    }

    #[test]
    fn series_parallel_shape() {
        let g = series_parallel(3, 4);
        assert_eq!(g.num_tasks(), 18);
        // fork->arm, arm->join per block: 8 edges, plus 2 series links.
        assert_eq!(g.num_deps(), 26);
        assert_eq!(critical_path_len(&g), 9);
    }

    #[test]
    fn random_dag_is_valid_and_deterministic() {
        let g = random_dag(500, 1.6, 9);
        assert_eq!(g.num_tasks(), 500);
        assert!(g.num_deps() > 400);
        assert_eq!(g, random_dag(500, 1.6, 9));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fanin_tree_rejects_non_power_of_two() {
        let _ = fanin_tree(6);
    }
}
