//! Topological order, critical path, and parallelism profiles.
//!
//! The paper frames TDG partitioning as a trade-off between scheduling cost
//! and *TDG parallelism*. [`ParallelismProfile`] quantifies the latter so
//! tests and benchmarks can verify that G-PASTA preserves more parallelism
//! than level-by-level clustering (Figure 3).

use crate::graph::{TaskId, Tdg};
use serde::{Deserialize, Serialize};

/// A topological order of the tasks of `tdg` (Kahn's algorithm, ties broken
/// by ascending task id), as a vector of task ids.
///
/// # Example
///
/// ```
/// use gpasta_tdg::{topo_order, TdgBuilder, TaskId};
/// # fn main() -> Result<(), gpasta_tdg::BuildTdgError> {
/// let mut b = TdgBuilder::new(3);
/// b.add_edge(TaskId(2), TaskId(0));
/// b.add_edge(TaskId(0), TaskId(1));
/// let tdg = b.build()?;
/// assert_eq!(topo_order(&tdg), vec![2, 0, 1]);
/// # Ok(())
/// # }
/// ```
pub fn topo_order(tdg: &Tdg) -> Vec<u32> {
    tdg.levels().order().to_vec()
}

/// Length of the critical (longest) path in *task count*, i.e. the number of
/// tasks on the longest chain. Equals the TDG depth. Zero for empty graphs.
///
/// # Example
///
/// ```
/// use gpasta_tdg::{critical_path_len, TdgBuilder, TaskId};
/// # fn main() -> Result<(), gpasta_tdg::BuildTdgError> {
/// let mut b = TdgBuilder::new(3);
/// b.add_edge(TaskId(0), TaskId(1));
/// b.add_edge(TaskId(1), TaskId(2));
/// assert_eq!(critical_path_len(&b.build()?), 3);
/// # Ok(())
/// # }
/// ```
pub fn critical_path_len(tdg: &Tdg) -> usize {
    tdg.levels().depth()
}

/// Structural parallelism metrics of a TDG.
///
/// *Average parallelism* is the classic `work / span` ratio under unit task
/// cost: `num_tasks / depth`. A partitioned TDG with average parallelism at
/// or above the worker count schedules without starvation; one that collapses
/// towards 1.0 has been serialised (the failure mode of GDCA in Figure 3(a)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelismProfile {
    /// Total number of tasks (work, under unit cost).
    pub num_tasks: usize,
    /// Depth of the TDG (span, under unit cost).
    pub depth: usize,
    /// Width of the widest level.
    pub max_width: usize,
    /// `num_tasks / depth`; zero for an empty graph.
    pub avg_parallelism: f64,
    /// Same ratio but weighted by estimated task cost:
    /// `total_weight / critical_path_weight`.
    pub weighted_parallelism: f64,
}

impl ParallelismProfile {
    /// Compute the profile of `tdg`.
    pub fn of(tdg: &Tdg) -> Self {
        let levels = tdg.levels();
        let depth = levels.depth();
        let num_tasks = tdg.num_tasks();
        let max_width = levels.max_width();
        let avg_parallelism = if depth == 0 {
            0.0
        } else {
            num_tasks as f64 / depth as f64
        };

        // Weighted span: longest path under task weights, via one pass over
        // the levelised order.
        let mut dist = vec![0.0f64; num_tasks];
        let mut span = 0.0f64;
        let mut work = 0.0f64;
        for &u in levels.order() {
            let t = TaskId(u);
            let w = f64::from(tdg.weight(t));
            work += w;
            let d = dist[u as usize] + w;
            span = span.max(d);
            for &v in tdg.successors(t) {
                if dist[v as usize] < d {
                    dist[v as usize] = d;
                }
            }
        }
        let weighted_parallelism = if span == 0.0 { 0.0 } else { work / span };

        ParallelismProfile {
            num_tasks,
            depth,
            max_width,
            avg_parallelism,
            weighted_parallelism,
        }
    }
}

impl std::fmt::Display for ParallelismProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} tasks, depth {}, max width {}, avg parallelism {:.2}",
            self.num_tasks, self.depth, self.max_width, self.avg_parallelism
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TdgBuilder;

    #[test]
    fn chain_profile() {
        let mut b = TdgBuilder::new(5);
        for i in 0..4u32 {
            b.add_edge(TaskId(i), TaskId(i + 1));
        }
        let p = ParallelismProfile::of(&b.build().expect("chain DAG"));
        assert_eq!(p.depth, 5);
        assert_eq!(p.max_width, 1);
        assert!((p.avg_parallelism - 1.0).abs() < 1e-12);
        assert!((p.weighted_parallelism - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wide_profile() {
        let b = TdgBuilder::new(8);
        let p = ParallelismProfile::of(&b.build().expect("edgeless DAG"));
        assert_eq!(p.depth, 1);
        assert_eq!(p.max_width, 8);
        assert!((p.avg_parallelism - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = ParallelismProfile::of(&TdgBuilder::new(0).build().expect("empty DAG"));
        assert_eq!(p.num_tasks, 0);
        assert_eq!(p.avg_parallelism, 0.0);
        assert_eq!(p.weighted_parallelism, 0.0);
    }

    #[test]
    fn weighted_parallelism_tracks_heavy_chain() {
        // Two parallel chains of 2; one chain is 10x heavier. Unit-cost
        // parallelism is 2.0 but weighted parallelism is dominated by the
        // heavy chain: work=22, span=20 -> 1.1.
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(2), TaskId(3));
        b.set_weight(TaskId(0), 10.0);
        b.set_weight(TaskId(1), 10.0);
        b.set_weight(TaskId(2), 1.0);
        b.set_weight(TaskId(3), 1.0);
        let p = ParallelismProfile::of(&b.build().expect("two chains"));
        assert!((p.avg_parallelism - 2.0).abs() < 1e-12);
        assert!((p.weighted_parallelism - 1.1).abs() < 1e-9);
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut b = TdgBuilder::new(6);
        b.add_edge(TaskId(5), TaskId(0));
        b.add_edge(TaskId(0), TaskId(3));
        b.add_edge(TaskId(3), TaskId(1));
        let g = b.build().expect("DAG");
        let order = topo_order(&g);
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, &t) in order.iter().enumerate() {
                p[t as usize] = i;
            }
            p
        };
        for (u, v) in g.edges() {
            assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    #[test]
    fn critical_path_of_figure4_graph() {
        let mut b = TdgBuilder::new(7);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(2), TaskId(3));
        b.add_edge(TaskId(4), TaskId(5));
        b.add_edge(TaskId(1), TaskId(6));
        b.add_edge(TaskId(3), TaskId(6));
        b.add_edge(TaskId(5), TaskId(6));
        assert_eq!(critical_path_len(&b.build().expect("DAG")), 3);
    }

    #[test]
    fn display_mentions_tasks_and_depth() {
        let p = ParallelismProfile::of(&TdgBuilder::new(3).build().expect("DAG"));
        let s = p.to_string();
        assert!(s.contains("3 tasks"));
        assert!(s.contains("depth 1"));
    }
}
