//! Graphviz DOT export for TDGs and partitioned TDGs (debugging aid).

use crate::graph::{TaskId, Tdg};
use crate::partition::Partition;
use std::fmt::Write as _;

/// Render `tdg` as a Graphviz `digraph`.
///
/// # Example
///
/// ```
/// use gpasta_tdg::{tdg_to_dot, TdgBuilder, TaskId};
/// # fn main() -> Result<(), gpasta_tdg::BuildTdgError> {
/// let mut b = TdgBuilder::new(2);
/// b.add_edge(TaskId(0), TaskId(1));
/// let dot = tdg_to_dot(&b.build()?);
/// assert!(dot.contains("t0 -> t1"));
/// # Ok(())
/// # }
/// ```
pub fn tdg_to_dot(tdg: &Tdg) -> String {
    let mut out = String::from("digraph tdg {\n  rankdir=TB;\n  node [shape=circle];\n");
    for t in 0..tdg.num_tasks() as u32 {
        let _ = writeln!(out, "  t{t};");
    }
    for (u, v) in tdg.edges() {
        let _ = writeln!(out, "  {u} -> {v};");
    }
    out.push_str("}\n");
    out
}

/// Render `tdg` grouped into clusters by `partition` (one Graphviz
/// `subgraph cluster_*` per partition).
///
/// # Panics
///
/// Panics if the partition does not cover the TDG's tasks.
pub fn partition_to_dot(tdg: &Tdg, partition: &Partition) -> String {
    assert_eq!(
        partition.num_tasks(),
        tdg.num_tasks(),
        "partition/TDG task count mismatch"
    );
    let mut out =
        String::from("digraph partitioned_tdg {\n  rankdir=TB;\n  node [shape=circle];\n");
    for (pid, members) in partition.members().iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{pid} {{");
        let _ = writeln!(out, "    label=\"P{pid}\";");
        for &t in members {
            let _ = writeln!(out, "    t{t};");
        }
        out.push_str("  }\n");
    }
    for (u, v) in tdg.edges() {
        let style = if partition.pid_of(u) == partition.pid_of(v) {
            ""
        } else {
            " [style=bold]"
        };
        let _ = writeln!(out, "  {u} -> {v}{style};");
    }
    out.push_str("}\n");
    out
}

/// Render only the quotient graph of `partition` over `tdg`.
///
/// # Errors
///
/// Propagates quotient-construction failures (cyclic partitions).
pub fn quotient_to_dot(
    tdg: &Tdg,
    partition: &Partition,
) -> Result<String, crate::ValidatePartitionError> {
    let q = crate::quotient::QuotientTdg::build(tdg, partition)?;
    let g = q.graph();
    let mut out = String::from("digraph quotient {\n  rankdir=TB;\n  node [shape=box];\n");
    for p in 0..g.num_tasks() as u32 {
        let size = q.execution_order(crate::PartitionId(p)).len();
        let _ = writeln!(out, "  p{p} [label=\"P{p} ({size} tasks)\"];");
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  p{} -> p{};", u.0, v.0);
    }
    out.push_str("}\n");
    Ok(out)
}

// Keep TaskId referenced for the doc wording above even in minimal builds.
const _: fn(TaskId) -> usize = TaskId::index;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TdgBuilder;

    fn diamond() -> Tdg {
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.build().expect("diamond DAG")
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let dot = tdg_to_dot(&diamond());
        for t in 0..4 {
            assert!(dot.contains(&format!("t{t};")));
        }
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.contains("t2 -> t3;"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn partition_dot_has_clusters_and_bold_cross_edges() {
        let tdg = diamond();
        let p = Partition::new(vec![0, 1, 1, 2]);
        let dot = partition_to_dot(&tdg, &p);
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("subgraph cluster_2"));
        // 0 -> 1 crosses P0 -> P1: bold.
        assert!(dot.contains("t0 -> t1 [style=bold];"));
        // 1 and 2 share P1, but there is no edge between them; 1 -> 3 crosses.
        assert!(dot.contains("t1 -> t3 [style=bold];"));
    }

    #[test]
    fn quotient_dot_labels_sizes() {
        let tdg = diamond();
        let p = Partition::new(vec![0, 1, 1, 2]);
        let dot = quotient_to_dot(&tdg, &p).expect("valid partition");
        assert!(dot.contains("P1 (2 tasks)"));
        assert!(dot.contains("p0 -> p1;"));
        assert!(dot.contains("p1 -> p2;"));
    }

    #[test]
    fn quotient_dot_rejects_cyclic_partition() {
        let tdg = diamond();
        let p = Partition::new(vec![0, 1, 1, 0]);
        assert!(quotient_to_dot(&tdg, &p).is_err());
    }
}
