//! The partitioning result type shared by every partitioner.

use crate::graph::{TaskId, Tdg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a partition within a [`Partition`] result.
///
/// Partition ids are dense (`0..num_partitions`) after
/// [`Partition::compact`]; partitioners may produce sparse ids internally
/// (G-PASTA's `max_pid` counter can skip ids when partitions never receive
/// a member) and compact before returning.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A clustering of every task of a TDG into partitions — the paper's
/// `f_pid` array plus the partition count.
///
/// Invariants maintained by [`Partition::new`]:
/// * every task has exactly one partition id;
/// * partition ids are dense: each id in `0..num_partitions` has at least
///   one member.
///
/// Whether the partition is *valid* for scheduling (acyclic quotient,
/// convexity) is checked separately by [`validate`](crate::validate) — the
/// type deliberately admits invalid clusterings so tests can exercise the
/// validators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    f_pid: Vec<u32>,
    num_partitions: u32,
}

impl Partition {
    /// Build a partition from a raw (possibly sparse) assignment vector,
    /// remapping partition ids to a dense `0..num_partitions` range.
    ///
    /// Ids are remapped *order-preservingly* (the relative order of surviving
    /// ids is kept), which preserves the acyclicity argument of §3.2: if
    /// `pid(i) < pid(j)` before compaction, it still holds after.
    ///
    /// # Panics
    ///
    /// Panics if `raw_assignment` is empty-task-safe (an empty vector yields
    /// an empty partition; no panic).
    pub fn new(raw_assignment: Vec<u32>) -> Self {
        Self::compact(raw_assignment)
    }

    /// Same as [`Partition::new`]; exposed under the name the operation
    /// performs.
    pub fn compact(mut raw: Vec<u32>) -> Self {
        if raw.is_empty() {
            return Partition {
                f_pid: raw,
                num_partitions: 0,
            };
        }
        let max_id = *raw.iter().max().expect("non-empty") as usize;
        // Fast path: ids are reasonably dense — a counting remap is O(n).
        if max_id < 4 * raw.len() + 1024 {
            const UNSEEN: u32 = u32::MAX;
            let mut remap = vec![UNSEEN; max_id + 1];
            for &pid in &raw {
                remap[pid as usize] = 0;
            }
            let mut next = 0u32;
            for slot in remap.iter_mut() {
                if *slot != UNSEEN {
                    *slot = next;
                    next += 1;
                }
            }
            for pid in raw.iter_mut() {
                *pid = remap[*pid as usize];
            }
            return Partition {
                f_pid: raw,
                num_partitions: next,
            };
        }
        // Sparse ids: order-preserving remap via sort + binary search.
        let mut ids: Vec<u32> = raw.clone();
        ids.sort_unstable();
        ids.dedup();
        let f_pid: Vec<u32> = raw
            .into_iter()
            .map(|pid| {
                ids.binary_search(&pid)
                    .expect("id came from the same vector") as u32
            })
            .collect();
        let num_partitions = ids.len() as u32;
        Partition {
            f_pid,
            num_partitions,
        }
    }

    /// Build the trivial partition: every task alone in its own partition
    /// (partition id == task id). This is the "no clustering" identity.
    pub fn singletons(num_tasks: usize) -> Self {
        Partition {
            f_pid: (0..num_tasks as u32).collect(),
            num_partitions: num_tasks as u32,
        }
    }

    /// Number of tasks covered.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.f_pid.len()
    }

    /// Number of partitions.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.num_partitions as usize
    }

    /// Partition id of task `t` — the paper's `f_pid[t]`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[inline]
    pub fn pid_of(&self, t: TaskId) -> PartitionId {
        PartitionId(self.f_pid[t.index()])
    }

    /// The full assignment vector, indexed by task id.
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.f_pid
    }

    /// Member task ids of every partition, indexed by partition id.
    /// Members are listed in ascending task id order.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut members = vec![Vec::new(); self.num_partitions as usize];
        for (t, &p) in self.f_pid.iter().enumerate() {
            members[p as usize].push(t as u32);
        }
        members
    }

    /// Size of every partition, indexed by partition id.
    pub fn sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.num_partitions as usize];
        for &p in &self.f_pid {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Summary statistics; see [`PartitionStats`].
    pub fn stats(&self, tdg: &Tdg) -> PartitionStats {
        PartitionStats::of(self, tdg)
    }
}

/// Summary statistics of a [`Partition`] against its TDG.
///
/// `quotient_depth` and `quotient_avg_parallelism` quantify how much of the
/// original TDG parallelism survived clustering — the paper's quality metric
/// (Figure 3): a good partitioner shrinks the task count without inflating
/// the quotient depth towards the task count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Tasks in the original TDG.
    pub num_tasks: usize,
    /// Dependencies in the original TDG.
    pub num_deps: usize,
    /// Partitions produced.
    pub num_partitions: usize,
    /// Edges of the quotient TDG (after dedup).
    pub quotient_deps: usize,
    /// Largest partition size.
    pub max_size: usize,
    /// Mean partition size.
    pub avg_size: f64,
    /// Depth of the quotient TDG.
    pub quotient_depth: usize,
    /// `num_partitions / quotient_depth`.
    pub quotient_avg_parallelism: f64,
    /// Compression ratio `num_tasks / num_partitions`.
    pub compression: f64,
}

impl PartitionStats {
    /// Compute statistics of `p` over `tdg`.
    ///
    /// # Panics
    ///
    /// Panics if `p` does not cover exactly the tasks of `tdg`, or if the
    /// quotient graph is cyclic (validate first for untrusted partitions).
    pub fn of(p: &Partition, tdg: &Tdg) -> Self {
        assert_eq!(
            p.num_tasks(),
            tdg.num_tasks(),
            "partition/TDG task count mismatch"
        );
        let q = crate::quotient::QuotientTdg::build(tdg, p)
            .expect("quotient must be acyclic; run validate::check_acyclic first");
        let sizes = p.sizes();
        let max_size = sizes.iter().copied().max().unwrap_or(0) as usize;
        let num_partitions = p.num_partitions();
        let avg_size = if num_partitions == 0 {
            0.0
        } else {
            p.num_tasks() as f64 / num_partitions as f64
        };
        let quotient_depth = q.graph().levels().depth();
        let quotient_avg_parallelism = if quotient_depth == 0 {
            0.0
        } else {
            num_partitions as f64 / quotient_depth as f64
        };
        let compression = if num_partitions == 0 {
            0.0
        } else {
            p.num_tasks() as f64 / num_partitions as f64
        };
        PartitionStats {
            num_tasks: p.num_tasks(),
            num_deps: tdg.num_deps(),
            num_partitions,
            quotient_deps: q.graph().num_deps(),
            max_size,
            avg_size,
            quotient_depth,
            quotient_avg_parallelism,
            compression,
        }
    }
}

impl fmt::Display for PartitionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks -> {} partitions ({:.1}x compression, max size {}, quotient depth {}, quotient parallelism {:.2})",
            self.num_tasks,
            self.num_partitions,
            self.compression,
            self.max_size,
            self.quotient_depth,
            self.quotient_avg_parallelism
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TdgBuilder;

    #[test]
    fn compact_remaps_sparse_ids_densely_preserving_order() {
        // Raw ids 5, 5, 9, 2 -> dense 1, 1, 2, 0 (order of 2 < 5 < 9 kept).
        let p = Partition::new(vec![5, 5, 9, 2]);
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.assignment(), &[1, 1, 2, 0]);
    }

    #[test]
    fn compact_preserves_relative_order() {
        let p = Partition::new(vec![10, 20, 30]);
        assert_eq!(p.assignment(), &[0, 1, 2]);
    }

    #[test]
    fn singletons_identity() {
        let p = Partition::singletons(4);
        assert_eq!(p.num_partitions(), 4);
        for t in 0..4u32 {
            assert_eq!(p.pid_of(TaskId(t)), PartitionId(t));
        }
    }

    #[test]
    fn empty_partition_of_empty_graph() {
        let p = Partition::new(vec![]);
        assert_eq!(p.num_tasks(), 0);
        assert_eq!(p.num_partitions(), 0);
        assert!(p.members().is_empty());
    }

    #[test]
    fn members_and_sizes_agree() {
        let p = Partition::new(vec![0, 0, 1, 1, 1, 2]);
        assert_eq!(p.members(), vec![vec![0, 1], vec![2, 3, 4], vec![5]]);
        assert_eq!(p.sizes(), vec![2, 3, 1]);
    }

    #[test]
    fn stats_on_figure2b() {
        // Figure 2(b): P0={0}, P1={1,2}, P2={3} over the diamond.
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        let tdg = b.build().expect("diamond DAG");
        let p = Partition::new(vec![0, 1, 1, 2]);
        let s = p.stats(&tdg);
        assert_eq!(s.num_partitions, 3);
        assert_eq!(s.max_size, 2);
        assert_eq!(s.quotient_depth, 3);
        assert!((s.compression - 4.0 / 3.0).abs() < 1e-12);
        // Quotient edges: P0->P1, P1->P2 (the two diamond arms merge).
        assert_eq!(s.quotient_deps, 2);
    }

    #[test]
    fn display_is_informative() {
        let tdg = TdgBuilder::new(2).build().expect("DAG");
        let p = Partition::singletons(2);
        let s = p.stats(&tdg).to_string();
        assert!(s.contains("2 tasks"));
        assert!(s.contains("2 partitions"));
    }

    #[test]
    fn partition_id_display() {
        assert_eq!(PartitionId(3).to_string(), "P3");
        assert_eq!(PartitionId(3).index(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let p = Partition::new(vec![0, 1, 0, 2]);
        let json = serde_json::to_string(&p).expect("serializes");
        let back: Partition = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(p, back);
    }
}
