//! Task-dependency-graph (TDG) substrate for the G-PASTA reproduction.
//!
//! A TDG is a directed acyclic graph whose nodes are *tasks* (e.g. a forward
//! timing-propagation step on one circuit node) and whose edges are
//! *dependencies* (task `u` must finish before task `v` starts). This crate
//! provides:
//!
//! * [`Tdg`] — an immutable, validated DAG in compressed-sparse-row form with
//!   both forward (successor) and reverse (predecessor) adjacency, built via
//!   [`TdgBuilder`];
//! * [`Levels`] — BFS levelisation (the backbone of every partitioner in the
//!   paper) and parallelism profiles;
//! * [`Partition`] — a clustering of tasks into partitions, the output type
//!   of every partitioner, plus [`PartitionStats`];
//! * [`quotient`] — construction of the *partitioned TDG*
//!   (quotient graph) that the scheduler actually runs, and
//!   [`patch`] — in-place maintenance of the quotient's structure under
//!   incremental partition repair;
//! * [`shard`] — grouping of quotient partitions into contiguous, acyclic
//!   shards ([`ShardPlan`]), the unit of multi-process distribution;
//! * [`validate`] — the paper's validity conditions:
//!   acyclic quotient, convex partitions, bounded partition size;
//! * [`transitive_reduction`] — the minimal equivalent DAG, and
//!   [`io`] — plain-text edge-list interchange.
//!
//! # Example
//!
//! ```
//! use gpasta_tdg::{TdgBuilder, TaskId};
//!
//! # fn main() -> Result<(), gpasta_tdg::BuildTdgError> {
//! // The diamond 0 -> {1,2} -> 3.
//! let mut b = TdgBuilder::new(4);
//! b.add_edge(TaskId(0), TaskId(1));
//! b.add_edge(TaskId(0), TaskId(2));
//! b.add_edge(TaskId(1), TaskId(3));
//! b.add_edge(TaskId(2), TaskId(3));
//! let tdg = b.build()?;
//! assert_eq!(tdg.num_tasks(), 4);
//! assert_eq!(tdg.num_deps(), 4);
//! assert_eq!(tdg.levels().depth(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
pub mod csr;
mod dot;
mod error;
mod graph;
pub mod io;
mod level;
mod partition;
pub mod patch;
pub mod quotient;
mod recycle;
mod reduce;
pub mod shard;
mod topo;
pub mod validate;

pub use cancel::{CancelObserver, CancelToken};
pub use csr::{CsrArena, CsrTdg};
pub use dot::{partition_to_dot, quotient_to_dot, tdg_to_dot};
pub use error::{BuildTdgError, ValidatePartitionError};
pub use graph::{TaskId, Tdg, TdgBuilder};
pub use io::{parse_edge_list, write_edge_list, ParseEdgeListError};
pub use level::Levels;
pub use partition::{Partition, PartitionId, PartitionStats};
pub use patch::{PatchableQuotient, TaskMove};
pub use quotient::{QuotientArena, QuotientTdg};
pub use recycle::{ArenaTdgBuilder, TdgArena};
pub use reduce::transitive_reduction;
pub use shard::{ShardPlan, ShardPlanError, ShardPlanOptions};
pub use topo::{critical_path_len, topo_order, ParallelismProfile};
