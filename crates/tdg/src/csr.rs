//! Flat, level-ordered CSR view of a [`Tdg`] — the hot-path storage the
//! wavefront partitioners consume.
//!
//! The partitioners traverse the TDG one BFS level at a time, but the
//! original task-id space scatters each level across the whole id range:
//! every frontier touch of `d_pid` / `dep_cnt` / `f_pid` is a random
//! access. [`CsrTdg`] renumbers tasks by `(level, original id)` so a
//! wavefront step reads and writes *contiguous* array ranges (the CUDA
//! coalescing rule applied to CPU cache lines), and packs both adjacency
//! directions into flat offset + adjacency arrays with no `TaskId`
//! indirection.
//!
//! # Invariants (the memory-layout contract, DESIGN.md §13)
//!
//! 1. **Permutation**: `perm` (CSR → original) and `rank` (original → CSR)
//!    are inverse bijections over `0..num_tasks`.
//! 2. **Level order**: CSR ids are assigned level-major; `level_off[l] ..
//!    level_off[l+1]` is exactly level `l`. Within a level, CSR order is
//!    ascending original id (inherited from [`Levels`]), so CSR id order
//!    and original id order agree on any same-level set — this is what
//!    makes the partitioners' sorted-key passes permutation-invariant.
//! 3. **Topology**: every CSR-space edge points to a strictly later level,
//!    hence `u < v` for every edge `(u, v)` in CSR space.
//! 4. **Adjacency order**: `successors(u)` / `predecessors(u)` list
//!    neighbours in the *original* graph's adjacency order (ascending
//!    original id), mapped through `rank`. Wavefront discovery order is
//!    therefore identical to the original-space traversal, which keeps the
//!    sequential and device partitioners bit-identical to their legacy
//!    paths.
//! 5. **Edge multiset**: mapping every CSR edge through `perm` recovers
//!    the original edge multiset exactly.

use crate::graph::{TaskId, Tdg};
use crate::level::Levels;

/// Level-ordered flat CSR view of a [`Tdg`].
///
/// Obtain one with [`Tdg::csr`], which computes the view once and caches
/// it for the graph's lifetime (the fig8 sweep issues 40 partition calls
/// per graph; the view is shared by all of them).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrTdg {
    /// CSR id → original task id (the levelised topological order).
    perm: Vec<u32>,
    /// Original task id → CSR id (inverse of `perm`).
    rank: Vec<u32>,
    /// `level_off[l]..level_off[l+1]` is the CSR id range of level `l`.
    level_off: Vec<u32>,
    /// Forward adjacency offsets in CSR space.
    fwd_off: Vec<u32>,
    /// Packed successor lists (CSR ids, original adjacency order).
    fwd_adj: Vec<u32>,
    /// Reverse adjacency offsets in CSR space.
    rev_off: Vec<u32>,
    /// Packed predecessor lists (CSR ids, original adjacency order).
    rev_adj: Vec<u32>,
}

/// Reusable buffers for repeated [`CsrTdg`] construction — the
/// [`crate::TdgArena`] lifecycle applied to the level-ordered view.
/// Incremental flows rebuild the view for every fresh TDG; the arena
/// takes finished views back via [`CsrArena::recycle`] so steady-state
/// rebuilds reuse the previous iteration's capacity. Arena-built views
/// are bit-identical to [`CsrTdg::from_levels`] output (which delegates
/// here).
#[derive(Debug, Default)]
pub struct CsrArena {
    perm: Vec<u32>,
    rank: Vec<u32>,
    level_off: Vec<u32>,
    fwd_off: Vec<u32>,
    fwd_adj: Vec<u32>,
    rev_off: Vec<u32>,
    rev_adj: Vec<u32>,
}

impl CsrArena {
    /// An empty arena; buffers grow to the workload's high-water mark and
    /// are reused from then on.
    pub fn new() -> Self {
        CsrArena::default()
    }

    /// Take a finished view's buffers back for the next build.
    pub fn recycle(&mut self, csr: CsrTdg) {
        let CsrTdg {
            perm,
            rank,
            level_off,
            fwd_off,
            fwd_adj,
            rev_off,
            rev_adj,
        } = csr;
        self.perm = perm;
        self.rank = rank;
        self.level_off = level_off;
        self.fwd_off = fwd_off;
        self.fwd_adj = fwd_adj;
        self.rev_off = rev_off;
        self.rev_adj = rev_adj;
    }
}

impl CsrTdg {
    /// Build the level-ordered view of `tdg`. Prefer [`Tdg::csr`], which
    /// amortises this over every consumer of the same graph.
    pub fn build(tdg: &Tdg) -> Self {
        let levels = tdg.levels();
        Self::from_levels(tdg, &levels)
    }

    /// Build from a precomputed levelisation (avoids recomputing it when
    /// the caller already holds one).
    pub fn from_levels(tdg: &Tdg, levels: &Levels) -> Self {
        Self::from_levels_in(tdg, levels, &mut CsrArena::new())
    }

    /// [`from_levels`](Self::from_levels) on recycled buffers: the same
    /// view, bit-identical, with every allocation served from (and
    /// returnable to, via [`CsrArena::recycle`]) `arena`.
    pub fn from_levels_in(tdg: &Tdg, levels: &Levels, arena: &mut CsrArena) -> Self {
        let n = tdg.num_tasks();
        let mut perm = std::mem::take(&mut arena.perm);
        perm.clear();
        perm.extend_from_slice(levels.order());
        let mut rank = std::mem::take(&mut arena.rank);
        rank.clear();
        rank.resize(n, 0);
        for (new, &old) in perm.iter().enumerate() {
            rank[old as usize] = new as u32;
        }
        let mut level_off = std::mem::take(&mut arena.level_off);
        level_off.clear();
        level_off.push(0u32);
        for l in 0..levels.depth() {
            level_off.push(level_off[l] + levels.width(l) as u32);
        }

        let num_edges = tdg.num_deps();
        let mut fwd_off = std::mem::take(&mut arena.fwd_off);
        let mut fwd_adj = std::mem::take(&mut arena.fwd_adj);
        let mut rev_off = std::mem::take(&mut arena.rev_off);
        let mut rev_adj = std::mem::take(&mut arena.rev_adj);
        fwd_off.clear();
        fwd_off.reserve(n + 1);
        fwd_adj.clear();
        fwd_adj.reserve(num_edges);
        rev_off.clear();
        rev_off.reserve(n + 1);
        rev_adj.clear();
        rev_adj.reserve(num_edges);
        fwd_off.push(0u32);
        rev_off.push(0u32);
        for &old in &perm {
            for &s in tdg.successors(TaskId(old)) {
                fwd_adj.push(rank[s as usize]);
            }
            fwd_off.push(fwd_adj.len() as u32);
            for &p in tdg.predecessors(TaskId(old)) {
                rev_adj.push(rank[p as usize]);
            }
            rev_off.push(rev_adj.len() as u32);
        }

        CsrTdg {
            perm,
            rank,
            level_off,
            fwd_off,
            fwd_adj,
            rev_off,
            rev_adj,
        }
    }

    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.perm.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_deps(&self) -> usize {
        self.fwd_adj.len()
    }

    /// Number of BFS levels.
    #[inline]
    pub fn depth(&self) -> usize {
        self.level_off.len() - 1
    }

    /// CSR id range of level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= depth()`.
    #[inline]
    pub fn level_range(&self, l: usize) -> std::ops::Range<usize> {
        self.level_off[l] as usize..self.level_off[l + 1] as usize
    }

    /// Number of sources (the width of level 0); zero for an empty graph.
    #[inline]
    pub fn num_sources(&self) -> usize {
        if self.depth() == 0 {
            0
        } else {
            self.level_off[1] as usize
        }
    }

    /// CSR id → original task id.
    #[inline]
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Original task id → CSR id.
    #[inline]
    pub fn rank(&self) -> &[u32] {
        &self.rank
    }

    /// Level offsets (`depth() + 1` entries).
    #[inline]
    pub fn level_offsets(&self) -> &[u32] {
        &self.level_off
    }

    /// Successors of CSR id `u`, in the original graph's adjacency order.
    #[inline]
    pub fn successors(&self, u: u32) -> &[u32] {
        let i = u as usize;
        &self.fwd_adj[self.fwd_off[i] as usize..self.fwd_off[i + 1] as usize]
    }

    /// Predecessors of CSR id `u`, in the original graph's adjacency order.
    #[inline]
    pub fn predecessors(&self, u: u32) -> &[u32] {
        let i = u as usize;
        &self.rev_adj[self.rev_off[i] as usize..self.rev_off[i + 1] as usize]
    }

    /// Fan-in degree of CSR id `u`.
    #[inline]
    pub fn in_degree(&self, u: u32) -> u32 {
        let i = u as usize;
        self.rev_off[i + 1] - self.rev_off[i]
    }

    /// Fill `out` with the fan-in degree of every CSR id (the initial
    /// `dep_cnt` array), reusing `out`'s capacity.
    pub fn fill_in_degrees(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(
            self.rev_off
                .windows(2)
                .map(|w| w[1] - w[0])
                .take(self.num_tasks()),
        );
    }

    /// Scatter a CSR-indexed value array back to original task ids:
    /// `out[perm[i]] = csr_vals[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `csr_vals.len() != num_tasks()`.
    pub fn scatter_to_original(&self, csr_vals: &[u32]) -> Vec<u32> {
        assert_eq!(csr_vals.len(), self.num_tasks(), "length mismatch");
        let mut out = vec![0u32; csr_vals.len()];
        for (i, &v) in csr_vals.iter().enumerate() {
            out[self.perm[i] as usize] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TdgBuilder;

    fn diamond() -> Tdg {
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.build().expect("diamond DAG")
    }

    /// 5 -> {3, 1}, 3 -> 0; sources {5, 4, 2, 1, 0}? No: compute levels.
    fn scrambled() -> Tdg {
        let mut b = TdgBuilder::new(6);
        b.add_edge(TaskId(5), TaskId(3));
        b.add_edge(TaskId(5), TaskId(1));
        b.add_edge(TaskId(3), TaskId(0));
        b.add_edge(TaskId(4), TaskId(0));
        b.build().expect("DAG")
    }

    #[test]
    fn diamond_layout() {
        let g = diamond();
        let c = g.csr();
        assert_eq!(c.num_tasks(), 4);
        assert_eq!(c.num_deps(), 4);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.perm(), &[0, 1, 2, 3]);
        assert_eq!(c.level_offsets(), &[0, 1, 3, 4]);
        assert_eq!(c.successors(0), &[1, 2]);
        assert_eq!(c.predecessors(3), &[1, 2]);
        assert_eq!(c.num_sources(), 1);
    }

    #[test]
    fn permutation_is_level_major_ascending_within_level() {
        let g = scrambled();
        let c = g.csr();
        // Levels: {2, 4, 5} sources, {1, 3}, {0}.
        assert_eq!(c.perm(), &[2, 4, 5, 1, 3, 0]);
        assert_eq!(c.level_offsets(), &[0, 3, 5, 6]);
        for (new, &old) in c.perm().iter().enumerate() {
            assert_eq!(c.rank()[old as usize] as usize, new);
        }
    }

    #[test]
    fn all_csr_edges_point_forward() {
        for g in [diamond(), scrambled()] {
            let c = g.csr();
            for u in 0..c.num_tasks() as u32 {
                for &v in c.successors(u) {
                    assert!(u < v, "CSR edge {u} -> {v} must point forward");
                }
                for &p in c.predecessors(u) {
                    assert!(p < u, "CSR predecessor {p} of {u} must be earlier");
                }
            }
        }
    }

    #[test]
    fn adjacency_preserves_original_order() {
        let g = scrambled();
        let c = g.csr();
        // Successors of original task 5 (csr id 2) are originals [1, 3]
        // (ascending original id) mapped through rank.
        let u = c.rank()[5];
        let succ: Vec<u32> = c
            .successors(u)
            .iter()
            .map(|&v| c.perm()[v as usize])
            .collect();
        assert_eq!(succ, vec![1, 3]);
        // Predecessors of original 0 are [3, 4] in original order.
        let z = c.rank()[0];
        let pred: Vec<u32> = c
            .predecessors(z)
            .iter()
            .map(|&v| c.perm()[v as usize])
            .collect();
        assert_eq!(pred, vec![3, 4]);
    }

    #[test]
    fn edge_multiset_round_trips() {
        let g = scrambled();
        let c = g.csr();
        let mut orig: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        let mut mapped: Vec<(u32, u32)> = (0..c.num_tasks() as u32)
            .flat_map(|u| {
                c.successors(u)
                    .iter()
                    .map(move |&v| (c.perm()[u as usize], c.perm()[v as usize]))
                    .collect::<Vec<_>>()
            })
            .collect();
        orig.sort_unstable();
        mapped.sort_unstable();
        assert_eq!(orig, mapped);
    }

    #[test]
    fn in_degrees_and_scatter() {
        let g = diamond();
        let c = g.csr();
        let mut deg = Vec::new();
        c.fill_in_degrees(&mut deg);
        assert_eq!(deg, vec![0, 1, 1, 2]);
        let back = c.scatter_to_original(&[10, 11, 12, 13]);
        assert_eq!(back, vec![10, 11, 12, 13]); // identity perm on the diamond
        let s = scrambled();
        let cs = s.csr();
        let vals: Vec<u32> = (0..6).collect();
        let back = cs.scatter_to_original(&vals);
        for (new, &old) in cs.perm().iter().enumerate() {
            assert_eq!(back[old as usize], vals[new]);
        }
    }

    #[test]
    fn empty_graph() {
        let g = TdgBuilder::new(0).build().expect("empty");
        let c = g.csr();
        assert_eq!(c.num_tasks(), 0);
        assert_eq!(c.depth(), 0);
        assert_eq!(c.num_sources(), 0);
        assert_eq!(c.level_offsets(), &[0]);
    }

    #[test]
    fn arena_build_is_bit_identical_and_reuses_capacity() {
        let g = scrambled();
        let levels = g.levels();
        let fresh = CsrTdg::from_levels(&g, &levels);
        let mut arena = CsrArena::new();
        let first = CsrTdg::from_levels_in(&g, &levels, &mut arena);
        assert_eq!(fresh, first, "arena path must be bit-identical");
        arena.recycle(first);
        let caps = |a: &CsrArena| {
            (
                a.perm.capacity(),
                a.rank.capacity(),
                a.level_off.capacity(),
                a.fwd_off.capacity(),
                a.fwd_adj.capacity(),
                a.rev_off.capacity(),
                a.rev_adj.capacity(),
            )
        };
        let before = caps(&arena);
        let second = CsrTdg::from_levels_in(&g, &levels, &mut arena);
        assert_eq!(fresh, second, "recycled rebuild must be bit-identical");
        arena.recycle(second);
        assert_eq!(
            before,
            caps(&arena),
            "no buffer grew on a same-size rebuild"
        );
    }

    #[test]
    fn cached_view_is_shared() {
        let g = diamond();
        let a = g.csr() as *const CsrTdg;
        let b = g.csr() as *const CsrTdg;
        assert_eq!(a, b, "Tdg::csr caches the view");
    }
}
