//! Transitive reduction of a TDG.
//!
//! A dependency `u -> v` is *redundant* when a longer path from `u` to `v`
//! exists: the scheduler will already order the pair through that path.
//! Removing redundant edges shrinks the dependency count (and the per-task
//! release work) without changing the schedulable order — OpenTimer's
//! TDGs are naturally lean (1.2 deps/task on leon2), and reduction brings
//! arbitrary DAGs towards that profile. The `ablation` bench measures its
//! effect on partition quality.

use crate::graph::{TaskId, Tdg, TdgBuilder};

/// Compute the transitive reduction of `tdg`: the unique minimal subgraph
/// with the same reachability (unique for DAGs). Task weights carry over.
///
/// Runs in `O(V · E)` worst case (a reachability pass per node, pruned by
/// longest-path levels), which is fine for test-scale graphs and tolerable
/// for one-off preprocessing of million-task TDGs.
///
/// # Example
///
/// ```
/// use gpasta_tdg::{transitive_reduction, TdgBuilder, TaskId};
/// # fn main() -> Result<(), gpasta_tdg::BuildTdgError> {
/// // 0 -> 1 -> 2 plus the redundant shortcut 0 -> 2.
/// let mut b = TdgBuilder::new(3);
/// b.add_edge(TaskId(0), TaskId(1));
/// b.add_edge(TaskId(1), TaskId(2));
/// b.add_edge(TaskId(0), TaskId(2));
/// let reduced = transitive_reduction(&b.build()?);
/// assert_eq!(reduced.num_deps(), 2);
/// # Ok(())
/// # }
/// ```
pub fn transitive_reduction(tdg: &Tdg) -> Tdg {
    let n = tdg.num_tasks();
    let levels = tdg.levels();

    // An edge u -> v is redundant iff v is reachable from some *other*
    // successor of u. Check per node: DFS from each successor besides v,
    // bounded by v's level (paths only go up in level).
    let mut keep: Vec<(u32, u32)> = Vec::with_capacity(tdg.num_deps());
    let mut mark = vec![u32::MAX; n];
    let mut stamp = 0u32;
    let mut stack: Vec<u32> = Vec::new();

    for u in 0..n as u32 {
        let succs = tdg.successors(TaskId(u));
        if succs.len() <= 1 {
            // A single edge can never be shadowed by a sibling.
            for &v in succs {
                keep.push((u, v));
            }
            continue;
        }
        // Reachability from all successors, recording which nodes are
        // reachable through at least one *intermediate* hop.
        stamp += 1;
        stack.clear();
        // Seed with the successors themselves (not marked as "via path").
        let max_level = succs
            .iter()
            .map(|&v| levels.level_of(TaskId(v)))
            .max()
            .expect("non-empty successor list");
        for &v in succs {
            stack.push(v);
        }
        // Standard DFS; any node reached *from a successor* is transitively
        // reachable. A direct successor v is shadowed iff it is reached
        // again through this DFS (i.e. from another successor).
        let mut shadowed = vec![false; succs.len()];
        while let Some(x) = stack.pop() {
            for &y in tdg.successors(TaskId(x)) {
                if levels.level_of(TaskId(y)) > max_level {
                    continue; // cannot shadow any direct successor
                }
                if let Ok(i) = succs.binary_search(&y) {
                    shadowed[i] = true;
                }
                if mark[y as usize] != stamp {
                    mark[y as usize] = stamp;
                    stack.push(y);
                }
            }
        }
        for (i, &v) in succs.iter().enumerate() {
            if !shadowed[i] {
                keep.push((u, v));
            }
        }
    }

    let mut b = TdgBuilder::with_capacity(n, keep.len());
    for (u, v) in keep {
        b.add_edge(TaskId(u), TaskId(v));
    }
    for t in 0..n as u32 {
        b.set_weight(TaskId(t), tdg.weight(TaskId(t)));
    }
    b.build().expect("a subgraph of a DAG is a DAG")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reachability(tdg: &Tdg) -> Vec<Vec<bool>> {
        let n = tdg.num_tasks();
        let mut reach = vec![vec![false; n]; n];
        for s in 0..n as u32 {
            let mut stack = vec![s];
            while let Some(x) = stack.pop() {
                for &y in tdg.successors(TaskId(x)) {
                    if !reach[s as usize][y as usize] {
                        reach[s as usize][y as usize] = true;
                        stack.push(y);
                    }
                }
            }
        }
        reach
    }

    #[test]
    fn removes_simple_shortcut() {
        let mut b = TdgBuilder::new(3);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(1), TaskId(2));
        b.add_edge(TaskId(0), TaskId(2));
        let g = b.build().expect("DAG");
        let r = transitive_reduction(&g);
        assert_eq!(r.num_deps(), 2);
        assert!(r.successors(TaskId(0)).contains(&1));
        assert!(!r.successors(TaskId(0)).contains(&2));
    }

    #[test]
    fn keeps_diamond_intact() {
        // No edge of a diamond is redundant.
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        let g = b.build().expect("DAG");
        assert_eq!(transitive_reduction(&g).num_deps(), 4);
    }

    #[test]
    fn removes_long_range_shortcut() {
        // Chain 0..=4 plus a 0 -> 4 shortcut across three hops.
        let mut b = TdgBuilder::new(5);
        for i in 0..4u32 {
            b.add_edge(TaskId(i), TaskId(i + 1));
        }
        b.add_edge(TaskId(0), TaskId(4));
        let g = b.build().expect("DAG");
        let r = transitive_reduction(&g);
        assert_eq!(r.num_deps(), 4);
    }

    #[test]
    fn preserves_reachability_on_random_dags() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        for seed in 0..6u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let n = 60usize;
            let mut b = TdgBuilder::new(n);
            for _ in 0..3 * n {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u < v {
                    b.add_edge(TaskId(u), TaskId(v));
                }
            }
            let g = b.build().expect("DAG");
            let r = transitive_reduction(&g);
            assert!(r.num_deps() <= g.num_deps());
            assert_eq!(
                reachability(&g),
                reachability(&r),
                "seed {seed}: reachability changed"
            );
            // Reduction is idempotent.
            let rr = transitive_reduction(&r);
            assert_eq!(r.num_deps(), rr.num_deps(), "seed {seed}: not minimal");
        }
    }

    #[test]
    fn preserves_weights_and_handles_trivial_graphs() {
        let mut b = TdgBuilder::new(2);
        b.add_edge(TaskId(0), TaskId(1));
        b.set_weight(TaskId(1), 77.0);
        let r = transitive_reduction(&b.build().expect("DAG"));
        assert_eq!(r.weight(TaskId(1)), 77.0);

        let empty = TdgBuilder::new(0).build().expect("empty");
        assert_eq!(transitive_reduction(&empty).num_tasks(), 0);
        let edgeless = TdgBuilder::new(5).build().expect("edgeless");
        assert_eq!(transitive_reduction(&edgeless).num_deps(), 0);
    }
}
