//! Validity checks for partitioning results.
//!
//! A valid TDG partitioning (§2 of the paper) must be *cycle-free*: the
//! quotient graph over partitions must be a DAG, otherwise the partitioned
//! TDG cannot be scheduled (Figure 2). G-PASTA's clustering rule further
//! guarantees every partition is *convex* (§3.2, Theorem 1); the convexity
//! checker here verifies that claim directly in tests.

use crate::error::ValidatePartitionError;
use crate::graph::{TaskId, Tdg};
use crate::partition::Partition;

/// Check basic well-formedness: assignment covers the TDG and ids are dense.
///
/// # Errors
///
/// Returns [`ValidatePartitionError::LengthMismatch`],
/// [`ValidatePartitionError::PartitionOutOfRange`] or
/// [`ValidatePartitionError::EmptyPartition`].
pub fn check_well_formed(tdg: &Tdg, p: &Partition) -> Result<(), ValidatePartitionError> {
    if p.num_tasks() != tdg.num_tasks() {
        return Err(ValidatePartitionError::LengthMismatch {
            num_tasks: tdg.num_tasks(),
            assignment_len: p.num_tasks(),
        });
    }
    let np = p.num_partitions() as u32;
    let mut seen = vec![false; np as usize];
    for (t, &pid) in p.assignment().iter().enumerate() {
        if pid >= np {
            return Err(ValidatePartitionError::PartitionOutOfRange {
                task: t as u32,
                pid,
                num_partitions: np,
            });
        }
        seen[pid as usize] = true;
    }
    if let Some(pid) = seen.iter().position(|&s| !s) {
        return Err(ValidatePartitionError::EmptyPartition { pid: pid as u32 });
    }
    Ok(())
}

/// Check that the quotient graph is acyclic (the paper's scheduling-validity
/// condition).
///
/// # Errors
///
/// Returns [`ValidatePartitionError::QuotientCycle`] if any partition
/// participates in a cyclic dependency, and propagates well-formedness
/// errors from quotient construction.
pub fn check_acyclic(tdg: &Tdg, p: &Partition) -> Result<(), ValidatePartitionError> {
    crate::quotient::QuotientTdg::build(tdg, p).map(|_| ())
}

/// Check that every partition is convex: for any two members `u`, `w` of a
/// partition and any path `u -> … -> w` in the TDG, all intermediate tasks
/// belong to the same partition (Figure 5(a) shows a violation).
///
/// Runs in `O(P_max · (V + E))` where `P_max` is the largest partition size
/// bound on the reachability frontier; intended for tests and debugging on
/// small-to-medium graphs, not for the hot path.
///
/// # Errors
///
/// Returns [`ValidatePartitionError::NotConvex`] with a witness task.
pub fn check_convex(tdg: &Tdg, p: &Partition) -> Result<(), ValidatePartitionError> {
    check_well_formed(tdg, p)?;
    let assignment = p.assignment();
    let n = tdg.num_tasks();

    // For each task u, DFS forward through *foreign* tasks only; if we can
    // re-enter u's partition via a foreign intermediate, the partition is
    // not convex. Each DFS is bounded by marking visited per-start.
    let mut visited = vec![u32::MAX; n];
    for u in 0..n as u32 {
        let pu = assignment[u as usize];
        let mut stack: Vec<u32> = Vec::new();
        // Seed with foreign successors of u.
        for &v in tdg.successors(TaskId(u)) {
            if assignment[v as usize] != pu {
                stack.push(v);
            }
        }
        while let Some(v) = stack.pop() {
            if visited[v as usize] == u {
                continue;
            }
            visited[v as usize] = u;
            for &w in tdg.successors(TaskId(v)) {
                if assignment[w as usize] == pu {
                    // Path u -> … -> v -> w with v outside the partition.
                    return Err(ValidatePartitionError::NotConvex {
                        pid: pu,
                        via_task: v,
                    });
                }
                if visited[w as usize] != u {
                    stack.push(w);
                }
            }
        }
    }
    Ok(())
}

/// Check that no partition exceeds `max_size` tasks.
///
/// # Errors
///
/// Returns [`ValidatePartitionError::PartitionTooLarge`].
pub fn check_size_bound(p: &Partition, max_size: usize) -> Result<(), ValidatePartitionError> {
    for (pid, &size) in p.sizes().iter().enumerate() {
        if size as usize > max_size {
            return Err(ValidatePartitionError::PartitionTooLarge {
                pid: pid as u32,
                size: size as usize,
                max_size,
            });
        }
    }
    Ok(())
}

/// Run every validity check applicable to a scheduling-ready partition:
/// well-formedness, quotient acyclicity, and convexity.
///
/// # Errors
///
/// Returns the first failing check's error.
pub fn check_all(tdg: &Tdg, p: &Partition) -> Result<(), ValidatePartitionError> {
    check_well_formed(tdg, p)?;
    check_acyclic(tdg, p)?;
    check_convex(tdg, p)
}

/// Check the §3.2 ordering certificate on a raw (possibly sparse) partition
/// assignment: ids never decrease along any TDG edge.
///
/// Monotone ids *prove* both scheduling-validity conditions in one `O(E)`
/// pass: a cross-partition edge strictly increases the id, so every
/// quotient edge points from a smaller id to a larger one (no cycle is
/// possible), and on any path between two tasks with the same id every
/// intermediate id is squeezed to that same value (convexity). G-PASTA's
/// `atomicMax` rule produces monotone ids by construction; the incremental
/// repair path re-proves this invariant after every patch, where the full
/// [`check_convex`] reachability sweep would be too slow for a debug-build
/// hot path.
///
/// The certificate is sufficient, not necessary: a valid partition whose
/// ids were permuted can fail this check while passing [`check_all`].
///
/// # Errors
///
/// Returns [`ValidatePartitionError::LengthMismatch`] if `assignment` does
/// not cover the TDG, and [`ValidatePartitionError::NotMonotone`] with the
/// offending edge otherwise.
pub fn check_edge_monotone(tdg: &Tdg, assignment: &[u32]) -> Result<(), ValidatePartitionError> {
    if assignment.len() != tdg.num_tasks() {
        return Err(ValidatePartitionError::LengthMismatch {
            num_tasks: tdg.num_tasks(),
            assignment_len: assignment.len(),
        });
    }
    for u in 0..tdg.num_tasks() as u32 {
        let pu = assignment[u as usize];
        for &v in tdg.successors(TaskId(u)) {
            if assignment[v as usize] < pu {
                return Err(ValidatePartitionError::NotMonotone { from: u, to: v });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TdgBuilder;

    fn diamond() -> Tdg {
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.build().expect("diamond DAG")
    }

    /// Figure 5(a): chain 0 -> 1 -> 2 with P0 = {0, 2}, P1 = {1}.
    fn figure5a() -> (Tdg, Partition) {
        let mut b = TdgBuilder::new(3);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(1), TaskId(2));
        (b.build().expect("chain DAG"), Partition::new(vec![0, 1, 0]))
    }

    #[test]
    fn figure5a_is_not_convex() {
        let (tdg, p) = figure5a();
        let err = check_convex(&tdg, &p).expect_err("figure 5(a) violates convexity");
        assert_eq!(
            err,
            ValidatePartitionError::NotConvex {
                pid: 0,
                via_task: 1
            }
        );
    }

    #[test]
    fn figure5a_is_also_cyclic() {
        // Non-convexity along a chain also produces a quotient cycle.
        let (tdg, p) = figure5a();
        assert!(matches!(
            check_acyclic(&tdg, &p).expect_err("quotient P0<->P1 is cyclic"),
            ValidatePartitionError::QuotientCycle { .. }
        ));
    }

    #[test]
    fn valid_partition_passes_everything() {
        let tdg = diamond();
        let p = Partition::new(vec![0, 1, 1, 2]);
        check_all(&tdg, &p).expect("figure 2(b) partition is fully valid");
    }

    #[test]
    fn monotone_certificate_accepts_and_rejects() {
        let tdg = diamond();
        // Monotone (sparse ids allowed): 2 -> {5, 5} -> 9.
        check_edge_monotone(&tdg, &[2, 5, 5, 9]).expect("monotone along all edges");
        // Constant assignments are trivially monotone.
        check_edge_monotone(&tdg, &[7, 7, 7, 7]).expect("constant is monotone");
        // Decreasing edge 0 -> 1.
        assert_eq!(
            check_edge_monotone(&tdg, &[3, 1, 3, 3]).expect_err("0 -> 1 decreases"),
            ValidatePartitionError::NotMonotone { from: 0, to: 1 }
        );
        // Wrong coverage.
        assert!(matches!(
            check_edge_monotone(&tdg, &[0, 1]).expect_err("short assignment"),
            ValidatePartitionError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn monotone_certificate_implies_full_validity() {
        // The theorem the certificate rests on, spot-checked: a monotone
        // raw assignment compacts to a partition that passes check_all.
        let tdg = diamond();
        let raw = vec![2u32, 5, 5, 9];
        check_edge_monotone(&tdg, &raw).expect("monotone");
        check_all(&tdg, &Partition::new(raw)).expect("monotone implies valid");
    }

    #[test]
    fn singletons_always_valid() {
        let tdg = diamond();
        check_all(&tdg, &Partition::singletons(4)).expect("singletons are valid");
    }

    #[test]
    fn one_partition_always_valid() {
        let tdg = diamond();
        check_all(&tdg, &Partition::new(vec![0; 4])).expect("one partition is valid");
    }

    #[test]
    fn size_bound_violation_detected() {
        let p = Partition::new(vec![0, 0, 0, 1]);
        check_size_bound(&p, 3).expect("3 <= 3 is fine");
        let err = check_size_bound(&p, 2).expect_err("partition 0 has 3 > 2 tasks");
        assert_eq!(
            err,
            ValidatePartitionError::PartitionTooLarge {
                pid: 0,
                size: 3,
                max_size: 2
            }
        );
    }

    #[test]
    fn well_formed_rejects_length_mismatch() {
        let tdg = diamond();
        let p = Partition::new(vec![0, 0]);
        assert!(matches!(
            check_well_formed(&tdg, &p),
            Err(ValidatePartitionError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn convexity_allows_disjoint_antichain_partition() {
        // Tasks 1 and 2 of the diamond are incomparable; clustering them is
        // convex (no path between them at all).
        let tdg = diamond();
        check_convex(&tdg, &Partition::new(vec![0, 1, 1, 2])).expect("antichain cluster is convex");
    }

    #[test]
    fn non_convex_via_long_foreign_path() {
        // 0 -> 1 -> 2 -> 3, P0 = {0, 3}: the foreign path 1 -> 2 connects
        // two members.
        let mut b = TdgBuilder::new(4);
        for i in 0..3u32 {
            b.add_edge(TaskId(i), TaskId(i + 1));
        }
        let tdg = b.build().expect("chain DAG");
        let err = check_convex(&tdg, &Partition::new(vec![0, 1, 2, 0]))
            .expect_err("P0 = {0,3} is not convex");
        assert!(matches!(
            err,
            ValidatePartitionError::NotConvex { pid: 0, .. }
        ));
    }

    #[test]
    fn convex_but_checks_run_on_empty_graph() {
        let tdg = TdgBuilder::new(0).build().expect("empty DAG");
        let p = Partition::new(vec![]);
        check_all(&tdg, &p).expect("empty partition of empty graph is valid");
    }
}
