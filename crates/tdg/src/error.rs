//! Error types for TDG construction and partition validation.

use std::error::Error;
use std::fmt;

/// Error returned by [`TdgBuilder::build`](crate::TdgBuilder::build).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildTdgError {
    /// An edge endpoint is `>= num_tasks`.
    TaskOutOfRange {
        /// The offending task id.
        task: u32,
        /// Number of tasks declared when the builder was created.
        num_tasks: u32,
    },
    /// An edge connects a task to itself.
    SelfLoop {
        /// The task with the self-loop.
        task: u32,
    },
    /// The edge set contains a directed cycle, so the graph is not a DAG.
    Cycle {
        /// A task known to participate in (or be downstream of) a cycle.
        witness: u32,
    },
    /// More than `u32::MAX` tasks were requested.
    TooManyTasks {
        /// Requested task count.
        requested: usize,
    },
}

impl fmt::Display for BuildTdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BuildTdgError::TaskOutOfRange { task, num_tasks } => {
                write!(
                    f,
                    "task id {task} out of range (graph has {num_tasks} tasks)"
                )
            }
            BuildTdgError::SelfLoop { task } => write!(f, "self-loop on task {task}"),
            BuildTdgError::Cycle { witness } => {
                write!(
                    f,
                    "dependency cycle detected (task {witness} never becomes ready)"
                )
            }
            BuildTdgError::TooManyTasks { requested } => {
                write!(
                    f,
                    "requested {requested} tasks, which exceeds the u32 task-id space"
                )
            }
        }
    }
}

impl Error for BuildTdgError {}

/// Error returned by the validators in [`validate`](crate::validate).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidatePartitionError {
    /// The partition assignment vector length differs from the task count.
    LengthMismatch {
        /// Tasks in the TDG.
        num_tasks: usize,
        /// Entries in the partition assignment.
        assignment_len: usize,
    },
    /// A task was assigned a partition id `>= num_partitions`.
    PartitionOutOfRange {
        /// The offending task.
        task: u32,
        /// Its (invalid) partition id.
        pid: u32,
        /// Declared number of partitions.
        num_partitions: u32,
    },
    /// A partition id in `0..num_partitions` has no member tasks.
    EmptyPartition {
        /// The empty partition id.
        pid: u32,
    },
    /// The quotient graph induced by the partition contains a cycle, i.e. the
    /// partitioned TDG cannot be scheduled (Figure 2(a) in the paper).
    QuotientCycle {
        /// A partition participating in (or downstream of) the cycle.
        witness_pid: u32,
    },
    /// A partition is not convex: a path leaves the partition and re-enters
    /// it (Figure 5(a) in the paper).
    NotConvex {
        /// The non-convex partition.
        pid: u32,
        /// A task outside `pid` that lies on a path between two members.
        via_task: u32,
    },
    /// A raw partition assignment decreases along a TDG edge, breaking the
    /// §3.2 ordering certificate (monotone ids imply an acyclic quotient
    /// and convex partitions; see `validate::check_edge_monotone`).
    NotMonotone {
        /// Source task of the offending edge.
        from: u32,
        /// Destination task of the offending edge.
        to: u32,
    },
    /// A partition holds more tasks than the configured maximum size `Ps`.
    PartitionTooLarge {
        /// The oversized partition.
        pid: u32,
        /// Its member count.
        size: usize,
        /// The configured maximum.
        max_size: usize,
    },
}

impl fmt::Display for ValidatePartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ValidatePartitionError::LengthMismatch { num_tasks, assignment_len } => write!(
                f,
                "partition assignment has {assignment_len} entries but the TDG has {num_tasks} tasks"
            ),
            ValidatePartitionError::PartitionOutOfRange { task, pid, num_partitions } => write!(
                f,
                "task {task} assigned to partition {pid}, but only {num_partitions} partitions exist"
            ),
            ValidatePartitionError::EmptyPartition { pid } => {
                write!(f, "partition {pid} has no member tasks")
            }
            ValidatePartitionError::QuotientCycle { witness_pid } => write!(
                f,
                "partitioned TDG contains a cyclic dependency (through partition {witness_pid})"
            ),
            ValidatePartitionError::NotConvex { pid, via_task } => write!(
                f,
                "partition {pid} is not convex: a path between two members passes through outside task {via_task}"
            ),
            ValidatePartitionError::NotMonotone { from, to } => write!(
                f,
                "partition id decreases along edge {from} -> {to}, violating the monotone-id ordering"
            ),
            ValidatePartitionError::PartitionTooLarge { pid, size, max_size } => write!(
                f,
                "partition {pid} has {size} tasks, exceeding the maximum partition size {max_size}"
            ),
        }
    }
}

impl Error for ValidatePartitionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = BuildTdgError::SelfLoop { task: 7 };
        assert_eq!(e.to_string(), "self-loop on task 7");
        let e = BuildTdgError::Cycle { witness: 3 };
        assert!(e.to_string().contains("cycle"));
        let e = ValidatePartitionError::QuotientCycle { witness_pid: 2 };
        assert!(e.to_string().contains("partition 2"));
        let e = ValidatePartitionError::NotConvex {
            pid: 1,
            via_task: 9,
        };
        assert!(e.to_string().contains("convex"));
    }

    #[test]
    fn errors_are_error_trait_objects() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<BuildTdgError>();
        assert_err::<ValidatePartitionError>();
    }
}
