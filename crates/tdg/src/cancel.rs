//! Cooperative cancellation for long-running graph operations.
//!
//! A [`CancelToken`] is a shared generation counter: every call to
//! [`CancelToken::cancel`] bumps the generation, and an observer created
//! *before* the bump reports cancelled afterwards. Workers poll at unit
//! boundaries (a partition dispatch, a wavefront level, a repair pass), so
//! cancellation is prompt — bounded by one dispatch unit — but costs a
//! single relaxed-ish atomic load per poll.
//!
//! The generation scheme (rather than a latching `AtomicBool`) lets one
//! token be reused across runs: each run snapshots the generation at start
//! via [`CancelToken::observe`] and only reacts to cancellations issued
//! *during* that run, so a cancel aimed at run *k* can never leak into run
//! *k + 1*.

use gpasta_check::sync::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cloneable cancellation handle backed by a shared atomic generation
/// counter. Cloning is cheap (an `Arc` bump) and every clone addresses the
/// same counter.
///
/// # Example
///
/// ```
/// use gpasta_tdg::CancelToken;
///
/// let token = CancelToken::new();
/// let obs = token.observe();
/// assert!(!obs.is_cancelled());
/// token.cancel();
/// assert!(obs.is_cancelled());
/// // A new run starts a fresh observation: the old cancel does not leak.
/// assert!(!token.observe().is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    generation: Arc<AtomicU64>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation: every observer created before this call
    /// reports cancelled from now on.
    ///
    /// The `Release` bump pairs with the `Acquire` polls in
    /// [`CancelToken::generation`]: an observer that sees the new
    /// generation also sees everything the canceller wrote before calling
    /// `cancel` (e.g. a stop reason).
    pub fn cancel(&self) {
        self.generation.fetch_add(1, Ordering::Release); // hb: cancel-gen
    }

    /// The current generation (number of `cancel` calls so far).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire) // hb: cancel-gen
    }

    /// Snapshot the current generation; the returned observer reports
    /// cancelled exactly when [`CancelToken::cancel`] fires after this
    /// call.
    pub fn observe(&self) -> CancelObserver {
        CancelObserver {
            token: self.clone(),
            seen: self.generation(),
        }
    }
}

/// A run-scoped view of a [`CancelToken`]: compares the token's live
/// generation against the generation captured at [`CancelToken::observe`]
/// time.
#[derive(Debug, Clone)]
pub struct CancelObserver {
    token: CancelToken,
    seen: u64,
}

impl CancelObserver {
    /// Whether the token was cancelled since this observer was created.
    /// One atomic load; safe to poll per dispatch unit.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.token.generation() != self.seen
    }

    /// An observer that can never report cancelled (no token attached to
    /// the run). Lets bounded code paths hold a concrete observer instead
    /// of an `Option`.
    pub fn never() -> Self {
        let token = CancelToken::new();
        let seen = token.generation();
        CancelObserver { token, seen }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uncancelled() {
        let t = CancelToken::new();
        assert!(!t.observe().is_cancelled());
        assert_eq!(t.generation(), 0);
    }

    #[test]
    fn cancel_flips_existing_observers_only() {
        let t = CancelToken::new();
        let before = t.observe();
        t.cancel();
        assert!(before.is_cancelled());
        let after = t.observe();
        assert!(!after.is_cancelled(), "new runs ignore old cancels");
        t.cancel();
        assert!(after.is_cancelled());
    }

    #[test]
    fn clones_share_the_counter() {
        let t = CancelToken::new();
        let obs = t.observe();
        let clone = t.clone();
        clone.cancel();
        assert!(obs.is_cancelled());
        assert_eq!(t.generation(), 1);
    }

    #[test]
    fn never_observer_stays_false() {
        let obs = CancelObserver::never();
        assert!(!obs.is_cancelled());
    }

    #[test]
    fn generation_wraps_at_u64_max_without_sticking() {
        // Regression: `is_cancelled` must compare generations for
        // *inequality*, not order — after 2^64 cancels the counter wraps
        // and any `>`-based comparison would make observers permanently
        // uncancellable (or permanently cancelled).
        let t = CancelToken {
            generation: Arc::new(AtomicU64::new(u64::MAX)),
        };
        let obs = t.observe();
        assert_eq!(t.generation(), u64::MAX);
        assert!(!obs.is_cancelled());

        t.cancel(); // wraps MAX -> 0
        assert_eq!(t.generation(), 0);
        assert!(obs.is_cancelled(), "wraparound cancel must still register");

        // A fresh run snapshots the wrapped generation and is clean again:
        // the cancel aimed at the old run does not leak through the wrap.
        let next = t.observe();
        assert!(!next.is_cancelled());
        t.cancel();
        assert!(next.is_cancelled());
    }

    #[test]
    fn cancellation_is_visible_across_threads() {
        let t = CancelToken::new();
        let obs = t.observe();
        std::thread::scope(|s| {
            let t2 = t.clone();
            s.spawn(move || t2.cancel());
        });
        assert!(obs.is_cancelled());
    }
}
