//! The partitioned TDG (quotient graph) that the scheduler runs.
//!
//! After partitioning, the scheduler no longer dispatches individual tasks;
//! it dispatches *partitions*, each of which runs its member tasks
//! sequentially in topological order (§1 of the paper). The quotient graph
//! has one node per partition and a deduplicated edge `P -> Q` whenever some
//! task in `P` precedes some task in `Q`.

use crate::error::ValidatePartitionError;
use crate::graph::{TaskId, Tdg};
use crate::partition::{Partition, PartitionId};
use serde::{Deserialize, Serialize};

/// A quotient TDG: the coarse graph over partitions, plus the sequential
/// member order of every partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuotientTdg {
    graph: Tdg,
    /// Member tasks of every partition in *original-TDG topological
    /// order*, flattened: partition `p` owns
    /// `exec_flat[exec_off[p]..exec_off[p+1]]`.
    exec_flat: Vec<u32>,
    exec_off: Vec<u32>,
}

/// Reusable buffers for repeated [`QuotientTdg`] construction — the
/// [`crate::TdgArena`] lifecycle applied to the quotient. Incremental
/// flows rebuild the quotient every iteration; the arena owns the edge
/// staging, CSR, Kahn scratch, and execution-order buffers so
/// steady-state rebuilds touch the allocator only while a new high-water
/// mark is being established.
///
/// ```text
/// QuotientTdg::build_in(&tdg, &part, &mut arena) -> QuotientTdg
///        ^                                            |
///        +------------- arena.recycle(q) <------------+
/// ```
///
/// Skipping `recycle` is safe — the next build simply allocates fresh
/// output buffers. Arena-built quotients are bit-identical to
/// [`QuotientTdg::build`] output (which delegates here).
#[derive(Debug, Default)]
pub struct QuotientArena {
    /// Cross-partition edge staging.
    cross: Vec<(u32, u32)>,
    /// Counting-sort / scatter cursors (reused across all passes).
    cursor: Vec<u32>,
    /// Pre-dedup forward offsets.
    raw_off: Vec<u32>,
    /// Kahn residual in-degrees.
    indeg: Vec<u32>,
    /// Kahn ready stack.
    stack: Vec<u32>,
    /// Global topological order of the original TDG.
    topo: Vec<u32>,
    /// Recycled output buffers, if a quotient has been returned.
    fwd_off: Vec<u32>,
    fwd_adj: Vec<u32>,
    rev_off: Vec<u32>,
    rev_adj: Vec<u32>,
    weights: Vec<f32>,
    exec_flat: Vec<u32>,
    exec_off: Vec<u32>,
}

impl QuotientArena {
    /// An empty arena; buffers grow to the workload's high-water mark and
    /// are reused from then on.
    pub fn new() -> Self {
        QuotientArena::default()
    }

    /// Take a finished quotient's buffers back for the next build.
    pub fn recycle(&mut self, quotient: QuotientTdg) {
        let QuotientTdg {
            graph,
            exec_flat,
            exec_off,
        } = quotient;
        let (fwd_off, fwd_adj, rev_off, rev_adj, weights) = graph.into_buffers();
        self.fwd_off = fwd_off;
        self.fwd_adj = fwd_adj;
        self.rev_off = rev_off;
        self.rev_adj = rev_adj;
        if weights.capacity() > self.weights.capacity() {
            self.weights = weights;
        }
        self.exec_flat = exec_flat;
        self.exec_off = exec_off;
    }
}

impl QuotientTdg {
    /// Build the quotient of `tdg` under `partition`.
    ///
    /// Member execution order within each partition follows the levelised
    /// topological order of the original TDG, which is always consistent for
    /// convex partitions.
    ///
    /// # Errors
    ///
    /// Returns [`ValidatePartitionError::LengthMismatch`] if the partition
    /// does not cover the TDG, and [`ValidatePartitionError::QuotientCycle`]
    /// if the induced quotient has a cycle (an invalid partitioning like
    /// Figure 2(a)).
    pub fn build(tdg: &Tdg, partition: &Partition) -> Result<Self, ValidatePartitionError> {
        Self::build_in(tdg, partition, &mut QuotientArena::new())
    }

    /// [`build`](Self::build) on recycled buffers: identical validation,
    /// bit-identical output, but every scratch and output allocation comes
    /// from (and can return to, via [`QuotientArena::recycle`]) `arena`.
    ///
    /// # Errors
    ///
    /// Exactly as [`build`](Self::build).
    pub fn build_in(
        tdg: &Tdg,
        partition: &Partition,
        arena: &mut QuotientArena,
    ) -> Result<Self, ValidatePartitionError> {
        if partition.num_tasks() != tdg.num_tasks() {
            return Err(ValidatePartitionError::LengthMismatch {
                num_tasks: tdg.num_tasks(),
                assignment_len: partition.num_tasks(),
            });
        }
        let n = tdg.num_tasks();
        let np = partition.num_partitions();
        let assignment = partition.assignment();

        // Forward CSR over cross-partition edges via counting sort by
        // source partition, then per-bucket sort + dedup (buckets are
        // small, so this beats one global edge sort on large TDGs).
        let cross = &mut arena.cross;
        cross.clear();
        for u in 0..n as u32 {
            let pu = assignment[u as usize];
            for &v in tdg.successors(TaskId(u)) {
                let pv = assignment[v as usize];
                if pu != pv {
                    cross.push((pu, pv));
                }
            }
        }
        let raw_off = &mut arena.raw_off;
        raw_off.clear();
        raw_off.resize(np + 1, 0);
        for &(pu, _) in cross.iter() {
            raw_off[pu as usize + 1] += 1;
        }
        for p in 0..np {
            raw_off[p + 1] += raw_off[p];
        }
        let mut fwd_adj = std::mem::take(&mut arena.fwd_adj);
        fwd_adj.clear();
        fwd_adj.resize(cross.len(), 0);
        {
            let cursor = &mut arena.cursor;
            cursor.clear();
            cursor.extend_from_slice(raw_off);
            for &(pu, pv) in cross.iter() {
                let c = &mut cursor[pu as usize];
                fwd_adj[*c as usize] = pv;
                *c += 1;
            }
        }
        // Per-bucket sort + in-place dedup, compacting the arrays.
        let mut fwd_off = std::mem::take(&mut arena.fwd_off);
        fwd_off.clear();
        fwd_off.resize(np + 1, 0);
        let mut write = 0usize;
        for p in 0..np {
            let (lo, hi) = (raw_off[p] as usize, raw_off[p + 1] as usize);
            fwd_adj[lo..hi].sort_unstable();
            let mut prev = u32::MAX;
            for i in lo..hi {
                let v = fwd_adj[i];
                if v != prev {
                    fwd_adj[write] = v;
                    write += 1;
                    prev = v;
                }
            }
            fwd_off[p + 1] = write as u32;
        }
        fwd_adj.truncate(write);

        // Reverse CSR from the deduplicated forward CSR.
        let mut rev_off = std::mem::take(&mut arena.rev_off);
        rev_off.clear();
        rev_off.resize(np + 1, 0);
        for &v in &fwd_adj {
            rev_off[v as usize + 1] += 1;
        }
        for p in 0..np {
            rev_off[p + 1] += rev_off[p];
        }
        let mut rev_adj = std::mem::take(&mut arena.rev_adj);
        rev_adj.clear();
        rev_adj.resize(fwd_adj.len(), 0);
        {
            let cursor = &mut arena.cursor;
            cursor.clear();
            cursor.extend_from_slice(&rev_off);
            for p in 0..np as u32 {
                let (lo, hi) = (
                    fwd_off[p as usize] as usize,
                    fwd_off[p as usize + 1] as usize,
                );
                for &v in &fwd_adj[lo..hi] {
                    rev_adj[cursor[v as usize] as usize] = p;
                    cursor[v as usize] += 1;
                }
            }
        }

        // Acyclicity check (Kahn) on the quotient.
        {
            let indeg = &mut arena.indeg;
            indeg.clear();
            indeg.extend((0..np).map(|p| rev_off[p + 1] - rev_off[p]));
            let stack = &mut arena.stack;
            stack.clear();
            stack.extend((0..np as u32).filter(|&p| indeg[p as usize] == 0));
            let mut visited = 0usize;
            while let Some(p) = stack.pop() {
                visited += 1;
                let (lo, hi) = (
                    fwd_off[p as usize] as usize,
                    fwd_off[p as usize + 1] as usize,
                );
                for &v in &fwd_adj[lo..hi] {
                    indeg[v as usize] -= 1;
                    if indeg[v as usize] == 0 {
                        stack.push(v);
                    }
                }
            }
            if visited != np {
                let witness = indeg.iter().position(|&d| d > 0).unwrap_or(0) as u32;
                // Reclaim the taken buffers before bailing.
                arena.fwd_off = fwd_off;
                arena.fwd_adj = fwd_adj;
                arena.rev_off = rev_off;
                arena.rev_adj = rev_adj;
                return Err(ValidatePartitionError::QuotientCycle {
                    witness_pid: witness,
                });
            }
        }

        // Partition weights: sum of member task weights.
        let mut weights = std::mem::take(&mut arena.weights);
        weights.clear();
        weights.resize(np, 0.0);
        for (t, &p) in assignment.iter().enumerate() {
            weights[p as usize] += tdg.weight(TaskId(t as u32));
        }

        let graph = Tdg::from_csr(fwd_off, fwd_adj, rev_off, rev_adj, weights);

        // Member execution order: one sort-free Kahn pass over the
        // original TDG yields a global topological order (deterministic
        // for a given graph); counting-sorting it by partition preserves
        // the relative order within each partition, which is all a worker
        // needs. Flattened storage avoids one Vec per partition.
        let topo = &mut arena.topo;
        topo.clear();
        let indeg = &mut arena.indeg;
        indeg.clear();
        indeg.extend((0..n as u32).map(|t| tdg.predecessors(TaskId(t)).len() as u32));
        let stack = &mut arena.stack;
        stack.clear();
        stack.extend((0..n as u32).filter(|&t| indeg[t as usize] == 0));
        while let Some(t) = stack.pop() {
            topo.push(t);
            for &s in tdg.successors(TaskId(t)) {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    stack.push(s);
                }
            }
        }
        let mut exec_off = std::mem::take(&mut arena.exec_off);
        exec_off.clear();
        exec_off.resize(np + 1, 0);
        for &p in assignment {
            exec_off[p as usize + 1] += 1;
        }
        for p in 0..np {
            exec_off[p + 1] += exec_off[p];
        }
        let mut exec_flat = std::mem::take(&mut arena.exec_flat);
        exec_flat.clear();
        exec_flat.resize(n, 0);
        {
            let cursor = &mut arena.cursor;
            cursor.clear();
            cursor.extend_from_slice(&exec_off);
            for &t in topo.iter() {
                let c = &mut cursor[assignment[t as usize] as usize];
                exec_flat[*c as usize] = t;
                *c += 1;
            }
        }

        Ok(QuotientTdg {
            graph,
            exec_flat,
            exec_off,
        })
    }

    /// The coarse DAG over partitions. Node ids are [`PartitionId`] values
    /// reinterpreted as task ids of this graph.
    #[inline]
    pub fn graph(&self) -> &Tdg {
        &self.graph
    }

    /// Number of partitions.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.graph.num_tasks()
    }

    /// Total member tasks across all partitions (the original TDG's task
    /// count).
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.exec_flat.len()
    }

    /// The member tasks of partition `p` in required execution order.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn execution_order(&self, p: PartitionId) -> &[u32] {
        &self.exec_flat[self.exec_off[p.index()] as usize..self.exec_off[p.index() + 1] as usize]
    }

    /// Iterate over every partition's execution order.
    pub fn execution_orders(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.num_partitions()).map(move |p| self.execution_order(PartitionId(p as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TdgBuilder;

    fn diamond() -> Tdg {
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.build().expect("diamond DAG")
    }

    #[test]
    fn figure2b_valid_quotient() {
        // P0={0}, P1={1,2}, P2={3}: valid (Figure 2(b)).
        let q = QuotientTdg::build(&diamond(), &Partition::new(vec![0, 1, 1, 2]))
            .expect("figure 2(b) partition is valid");
        assert_eq!(q.num_partitions(), 3);
        assert_eq!(q.graph().num_deps(), 2);
        // Tasks 1 and 2 are incomparable, so any order of the pair is a
        // valid execution order.
        let mut members = q.execution_order(PartitionId(1)).to_vec();
        members.sort_unstable();
        assert_eq!(members, vec![1, 2]);
    }

    #[test]
    fn figure2a_cyclic_quotient_rejected() {
        // P0={0,3}, P1={1,2}: P0 -> P1 (0->1) and P1 -> P0 (1->3) — cyclic
        // (Figure 2(a)).
        let err = QuotientTdg::build(&diamond(), &Partition::new(vec![0, 1, 1, 0]))
            .expect_err("figure 2(a) partition is cyclic");
        assert!(matches!(err, ValidatePartitionError::QuotientCycle { .. }));
    }

    #[test]
    fn singleton_quotient_is_isomorphic() {
        let tdg = diamond();
        let q = QuotientTdg::build(&tdg, &Partition::singletons(4)).expect("identity is valid");
        assert_eq!(q.num_partitions(), 4);
        assert_eq!(q.graph().num_deps(), tdg.num_deps());
    }

    #[test]
    fn whole_graph_in_one_partition() {
        let q = QuotientTdg::build(&diamond(), &Partition::new(vec![0, 0, 0, 0]))
            .expect("one big partition is trivially valid");
        assert_eq!(q.num_partitions(), 1);
        assert_eq!(q.graph().num_deps(), 0);
        // Execution order must be topological: 0 first, 3 last.
        let order = q.execution_order(PartitionId(0));
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = QuotientTdg::build(&diamond(), &Partition::new(vec![0, 0]))
            .expect_err("short assignment must be rejected");
        assert_eq!(
            err,
            ValidatePartitionError::LengthMismatch {
                num_tasks: 4,
                assignment_len: 2
            }
        );
    }

    #[test]
    fn parallel_cross_edges_dedup() {
        // Two tasks in P0 both feeding two tasks in P1 -> one quotient edge.
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(0), TaskId(3));
        b.add_edge(TaskId(1), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        let tdg = b.build().expect("bipartite DAG");
        let q = QuotientTdg::build(&tdg, &Partition::new(vec![0, 0, 1, 1]))
            .expect("bipartite split is valid");
        assert_eq!(q.graph().num_deps(), 1);
    }

    #[test]
    fn quotient_weights_sum_members() {
        let mut b = TdgBuilder::new(3);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(1), TaskId(2));
        b.set_weight(TaskId(0), 1.0);
        b.set_weight(TaskId(1), 2.0);
        b.set_weight(TaskId(2), 4.0);
        let tdg = b.build().expect("chain DAG");
        let q = QuotientTdg::build(&tdg, &Partition::new(vec![0, 0, 1])).expect("prefix partition");
        assert_eq!(q.graph().weight(TaskId(0)), 3.0);
        assert_eq!(q.graph().weight(TaskId(1)), 4.0);
    }

    #[test]
    fn arena_build_is_bit_identical_and_reuses_capacity() {
        let tdg = diamond();
        let part = Partition::new(vec![0, 1, 1, 2]);
        let fresh = QuotientTdg::build(&tdg, &part).expect("valid");
        let mut arena = QuotientArena::new();
        let first = QuotientTdg::build_in(&tdg, &part, &mut arena).expect("valid");
        assert_eq!(fresh, first, "arena path must be bit-identical");
        arena.recycle(first);
        let caps = |a: &QuotientArena| {
            (
                a.cross.capacity(),
                a.cursor.capacity(),
                a.topo.capacity(),
                a.fwd_off.capacity(),
                a.fwd_adj.capacity(),
                a.rev_off.capacity(),
                a.rev_adj.capacity(),
                a.exec_flat.capacity(),
                a.exec_off.capacity(),
            )
        };
        let before = caps(&arena);
        let second = QuotientTdg::build_in(&tdg, &part, &mut arena).expect("valid");
        assert_eq!(fresh, second, "recycled rebuild must be bit-identical");
        arena.recycle(second);
        assert_eq!(
            before,
            caps(&arena),
            "no buffer grew on a same-size rebuild"
        );
    }

    #[test]
    fn arena_survives_a_rejected_build() {
        let tdg = diamond();
        let mut arena = QuotientArena::new();
        let err = QuotientTdg::build_in(&tdg, &Partition::new(vec![0, 1, 1, 0]), &mut arena)
            .expect_err("cyclic quotient");
        assert!(matches!(err, ValidatePartitionError::QuotientCycle { .. }));
        let q = QuotientTdg::build_in(&tdg, &Partition::new(vec![0, 1, 1, 2]), &mut arena)
            .expect("arena is reusable after a rejection");
        assert_eq!(q.num_partitions(), 3);
    }

    #[test]
    fn execution_order_is_topological_within_partition() {
        // Chain 0->1->2->3 all in one partition: order must be 0,1,2,3.
        let mut b = TdgBuilder::new(4);
        for i in 0..3u32 {
            b.add_edge(TaskId(i), TaskId(i + 1));
        }
        let tdg = b.build().expect("chain DAG");
        let q = QuotientTdg::build(&tdg, &Partition::new(vec![0; 4])).expect("valid");
        assert_eq!(q.execution_order(PartitionId(0)), &[0, 1, 2, 3]);
    }
}
