//! In-place patching of a quotient graph under partition-assignment moves.
//!
//! [`QuotientTdg::build`](crate::QuotientTdg::build) costs `O(V + E)` per
//! call. When an incremental repair moves only the tasks of a dirty cone,
//! rebuilding the full quotient wastes that work: [`PatchableQuotient`]
//! maintains the cross-partition edge *multiset* and the per-partition
//! member counts, and [`PatchableQuotient::apply`] updates both in time
//! proportional to the moved tasks' adjacency — not `|V|`.
//!
//! The structure tracks raw (pre-compaction, possibly sparse) partition
//! ids, because incremental repair works in the raw id space where fresh
//! partitions are allocated above the cached `max_pid` (§3.2's ordering
//! argument). [`PatchableQuotient::is_edge_monotone`] turns that ordering
//! into an `O(E_q)` acyclicity certificate: if every cross edge goes from a
//! smaller raw id to a larger one, no quotient cycle can exist.

use crate::graph::{TaskId, Tdg};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A minimal FxHash-style hasher for the small integer keys used here.
/// The default SipHash is DoS-resistant but ~5x slower per lookup, which
/// dominates [`PatchableQuotient::apply`] on large move logs; partition
/// ids are not attacker-controlled, so the cheap multiply-xor hash is the
/// right trade.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Pack a cross-partition edge into one map key.
#[inline]
fn edge_key(pu: u32, pv: u32) -> u64 {
    (u64::from(pu) << 32) | u64::from(pv)
}

#[inline]
fn unpack_edge(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// One task reassignment applied by a partition repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskMove {
    /// The moved task.
    pub task: u32,
    /// Its raw partition id before the repair.
    pub old_pid: u32,
    /// Its raw partition id after the repair.
    pub new_pid: u32,
}

/// A quotient graph maintained incrementally as a cross-partition edge
/// multiset plus per-partition member counts.
///
/// Unlike [`QuotientTdg`](crate::QuotientTdg), this structure is mutable
/// and keyed by *raw* partition ids; it answers structural questions
/// (partition count, cross-edge set, acyclicity certificate) without ever
/// rebuilding from scratch.
#[derive(Debug, Clone, Default)]
pub struct PatchableQuotient {
    /// Multiplicity of each cross-partition edge, keyed by
    /// [`edge_key`]`(pu, pv)` with `pu != pv`.
    edge_mult: FxMap<u64, u32>,
    /// Member count of each non-empty raw partition id.
    sizes: FxMap<u32, u32>,
}

impl PatchableQuotient {
    /// Build from a TDG and a raw assignment (one id per task).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not cover `tdg`.
    pub fn build(tdg: &Tdg, assignment: &[u32]) -> Self {
        assert_eq!(
            assignment.len(),
            tdg.num_tasks(),
            "assignment/TDG task count mismatch"
        );
        let mut q = PatchableQuotient::default();
        for &pid in assignment {
            *q.sizes.entry(pid).or_insert(0) += 1;
        }
        for (u, v) in tdg.edges() {
            let (pu, pv) = (assignment[u.index()], assignment[v.index()]);
            if pu != pv {
                *q.edge_mult.entry(edge_key(pu, pv)).or_insert(0) += 1;
            }
        }
        q
    }

    /// Patch the quotient after a repair moved `moves` tasks.
    ///
    /// `assignment` is the **post-move** assignment; each move records the
    /// task's previous id, so the patch can reconstruct both endpoints of
    /// every affected edge before and after. Each affected TDG edge is
    /// handled exactly once, even when both of its endpoints moved.
    ///
    /// # Panics
    ///
    /// Panics if a move is inconsistent with `assignment` (its `new_pid`
    /// must be the task's current id), or if removing an edge that was
    /// never added (a sign the caller's move log is incomplete).
    pub fn apply(&mut self, tdg: &Tdg, assignment: &[u32], moves: &[TaskMove]) {
        assert_eq!(
            assignment.len(),
            tdg.num_tasks(),
            "assignment/TDG task count mismatch"
        );
        // Previous id of every moved task; also serves as the moved set.
        let old_of: HashMap<u32, u32> = moves.iter().map(|m| (m.task, m.old_pid)).collect();
        let before = |t: u32| -> u32 {
            old_of
                .get(&t)
                .copied()
                .unwrap_or_else(|| assignment[t as usize])
        };
        for m in moves {
            assert_eq!(
                assignment[m.task as usize], m.new_pid,
                "move log disagrees with the post-move assignment for task {}",
                m.task
            );
            self.retag(m.old_pid, m.new_pid);
            for &v in tdg.successors(TaskId(m.task)) {
                // Out-edges of a moved task are always handled here.
                self.remove_edge(m.old_pid, before(v));
                self.add_edge(m.new_pid, assignment[v as usize]);
            }
            for &u in tdg.predecessors(TaskId(m.task)) {
                // In-edges are handled here only when the source did NOT
                // move; moved-to-moved edges were covered by the source's
                // successor loop above (or will be, order-independently:
                // both passes use the same before/after views).
                if old_of.contains_key(&u) {
                    continue;
                }
                self.remove_edge(assignment[u as usize], m.old_pid);
                self.add_edge(assignment[u as usize], m.new_pid);
            }
        }
    }

    fn retag(&mut self, old_pid: u32, new_pid: u32) {
        let cnt = self
            .sizes
            .get_mut(&old_pid)
            .expect("moved task's old partition must exist");
        *cnt -= 1;
        if *cnt == 0 {
            self.sizes.remove(&old_pid);
        }
        *self.sizes.entry(new_pid).or_insert(0) += 1;
    }

    fn remove_edge(&mut self, pu: u32, pv: u32) {
        if pu == pv {
            return;
        }
        let key = edge_key(pu, pv);
        let cnt = self
            .edge_mult
            .get_mut(&key)
            .expect("removing a cross edge that was never added");
        *cnt -= 1;
        if *cnt == 0 {
            self.edge_mult.remove(&key);
        }
    }

    fn add_edge(&mut self, pu: u32, pv: u32) {
        if pu != pv {
            *self.edge_mult.entry(edge_key(pu, pv)).or_insert(0) += 1;
        }
    }

    /// Number of non-empty partitions.
    pub fn num_partitions(&self) -> usize {
        self.sizes.len()
    }

    /// Number of distinct cross-partition edges (the quotient's edge count
    /// after dedup).
    pub fn num_cross_edges(&self) -> usize {
        self.edge_mult.len()
    }

    /// Member count of raw partition `pid` (0 if empty/unknown).
    pub fn size_of(&self, pid: u32) -> u32 {
        self.sizes.get(&pid).copied().unwrap_or(0)
    }

    /// The deduplicated cross-partition edges, sorted for deterministic
    /// consumption.
    pub fn cross_edges(&self) -> Vec<(u32, u32)> {
        let mut edges: Vec<(u32, u32)> = self.edge_mult.keys().map(|&k| unpack_edge(k)).collect();
        edges.sort_unstable();
        edges
    }

    /// The `O(E_q)` acyclicity certificate: every cross edge goes from a
    /// smaller raw id to a larger one. Holds for any assignment produced by
    /// G-PASTA's `atomicMax` rule or the incremental repair wavefront; a
    /// `true` answer proves the quotient is a DAG.
    pub fn is_edge_monotone(&self) -> bool {
        self.edge_mult.keys().all(|&k| {
            let (pu, pv) = unpack_edge(k);
            pu < pv
        })
    }

    /// Whether this patched state equals a from-scratch rebuild over
    /// `(tdg, assignment)` — the differential-test oracle.
    pub fn matches(&self, tdg: &Tdg, assignment: &[u32]) -> bool {
        let fresh = PatchableQuotient::build(tdg, assignment);
        self.edge_mult == fresh.edge_mult && self.sizes == fresh.sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TdgBuilder;

    fn diamond() -> Tdg {
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.build().expect("diamond DAG")
    }

    #[test]
    fn build_counts_cross_edges_and_sizes() {
        let tdg = diamond();
        let q = PatchableQuotient::build(&tdg, &[0, 1, 1, 2]);
        assert_eq!(q.num_partitions(), 3);
        // 0->1, 0->2 collapse onto (0,1); 1->3, 2->3 onto (1,2).
        assert_eq!(q.cross_edges(), vec![(0, 1), (1, 2)]);
        assert_eq!(q.size_of(1), 2);
        assert!(q.is_edge_monotone());
    }

    #[test]
    fn single_move_matches_rebuild() {
        let tdg = diamond();
        let mut assignment = vec![0u32, 1, 1, 2];
        let mut q = PatchableQuotient::build(&tdg, &assignment);
        // Move task 3 into a fresh partition 5.
        assignment[3] = 5;
        q.apply(
            &tdg,
            &assignment,
            &[TaskMove {
                task: 3,
                old_pid: 2,
                new_pid: 5,
            }],
        );
        assert!(q.matches(&tdg, &assignment));
        assert_eq!(q.size_of(2), 0);
        assert_eq!(q.size_of(5), 1);
        assert_eq!(q.cross_edges(), vec![(0, 1), (1, 5)]);
    }

    #[test]
    fn moving_both_endpoints_of_an_edge_is_handled_once() {
        let tdg = diamond();
        let mut assignment = vec![0u32, 1, 1, 2];
        let mut q = PatchableQuotient::build(&tdg, &assignment);
        // Move 1 and 3 together: the 1 -> 3 edge has both endpoints moved.
        assignment[1] = 4;
        assignment[3] = 6;
        q.apply(
            &tdg,
            &assignment,
            &[
                TaskMove {
                    task: 1,
                    old_pid: 1,
                    new_pid: 4,
                },
                TaskMove {
                    task: 3,
                    old_pid: 2,
                    new_pid: 6,
                },
            ],
        );
        assert!(q.matches(&tdg, &assignment));
    }

    #[test]
    fn move_order_does_not_matter() {
        let tdg = diamond();
        let initial = vec![0u32, 1, 1, 2];
        let target = vec![0u32, 4, 3, 6];
        let moves = [
            TaskMove {
                task: 1,
                old_pid: 1,
                new_pid: 4,
            },
            TaskMove {
                task: 2,
                old_pid: 1,
                new_pid: 3,
            },
            TaskMove {
                task: 3,
                old_pid: 2,
                new_pid: 6,
            },
        ];
        let mut a = PatchableQuotient::build(&tdg, &initial);
        a.apply(&tdg, &target, &moves);
        let mut b = PatchableQuotient::build(&tdg, &initial);
        let reversed: Vec<TaskMove> = moves.iter().rev().copied().collect();
        b.apply(&tdg, &target, &reversed);
        assert!(a.matches(&tdg, &target));
        assert!(b.matches(&tdg, &target));
    }

    #[test]
    fn merging_partitions_drops_the_cross_edge() {
        let mut b = TdgBuilder::new(2);
        b.add_edge(TaskId(0), TaskId(1));
        let tdg = b.build().expect("chain");
        let mut assignment = vec![0u32, 1];
        let mut q = PatchableQuotient::build(&tdg, &assignment);
        assert_eq!(q.num_cross_edges(), 1);
        assignment[1] = 0;
        q.apply(
            &tdg,
            &assignment,
            &[TaskMove {
                task: 1,
                old_pid: 1,
                new_pid: 0,
            }],
        );
        assert_eq!(q.num_cross_edges(), 0);
        assert_eq!(q.num_partitions(), 1);
        assert!(q.matches(&tdg, &assignment));
    }

    #[test]
    fn non_monotone_edge_is_detected() {
        let mut b = TdgBuilder::new(2);
        b.add_edge(TaskId(0), TaskId(1));
        let tdg = b.build().expect("chain");
        let q = PatchableQuotient::build(&tdg, &[5, 2]);
        assert!(!q.is_edge_monotone());
    }

    #[test]
    fn empty_graph() {
        let tdg = TdgBuilder::new(0).build().expect("empty");
        let mut q = PatchableQuotient::build(&tdg, &[]);
        q.apply(&tdg, &[], &[]);
        assert_eq!(q.num_partitions(), 0);
        assert_eq!(q.num_cross_edges(), 0);
        assert!(q.is_edge_monotone());
        assert!(q.matches(&tdg, &[]));
    }

    #[test]
    #[should_panic(expected = "task count mismatch")]
    fn bad_coverage_panics() {
        let _ = PatchableQuotient::build(&diamond(), &[0, 1]);
    }
}
