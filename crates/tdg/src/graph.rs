//! The immutable CSR task-dependency graph and its builder.

use crate::csr::CsrTdg;
use crate::error::BuildTdgError;
use crate::level::Levels;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a task (a node of the [`Tdg`]).
///
/// Task ids are dense: a graph with `n` tasks uses ids `0..n`. The id space
/// is `u32` because the paper's largest TDG (leon2, 4.3 M tasks) fits
/// comfortably and the GPU kernels pack ids into 64-bit sort keys
/// (Algorithm 2, line 3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u32> for TaskId {
    fn from(v: u32) -> Self {
        TaskId(v)
    }
}

/// An immutable task dependency graph in compressed-sparse-row form.
///
/// Both forward (successor) and reverse (predecessor) adjacency are stored,
/// because the partitioners traverse forward (frontier expansion, Algorithm 1
/// step 2) while dependency release counts come from fan-in degrees, and the
/// STA engine propagates backward as well.
///
/// Construction via [`TdgBuilder`] validates that the graph is a DAG; the
/// invariant holds for the lifetime of the value.
#[derive(Debug, Clone)]
pub struct Tdg {
    num_edges: usize,
    fwd_off: Vec<u32>,
    fwd_adj: Vec<u32>,
    rev_off: Vec<u32>,
    rev_adj: Vec<u32>,
    /// Estimated execution cost of each task in nanoseconds. Used by cost-
    /// aware baselines (Sarkar) and by statistics; the schedulers measure
    /// real time instead.
    weights: Vec<f32>,
    /// Lazily built level-ordered view (see [`Tdg::csr`]). Excluded from
    /// equality and serialization: it is derived state, and two equal
    /// graphs must compare equal whether or not either has built it.
    csr: OnceLock<CsrTdg>,
}

impl PartialEq for Tdg {
    fn eq(&self, other: &Self) -> bool {
        self.num_edges == other.num_edges
            && self.fwd_off == other.fwd_off
            && self.fwd_adj == other.fwd_adj
            && self.rev_off == other.rev_off
            && self.rev_adj == other.rev_adj
            && self.weights == other.weights
    }
}

// Manual serde impls: the cached CSR view is derived state and must stay
// off the wire (same JSON shape as the former field derive).
impl Serialize for Tdg {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(Vec::from([
            (String::from("num_edges"), self.num_edges.to_value()),
            (String::from("fwd_off"), self.fwd_off.to_value()),
            (String::from("fwd_adj"), self.fwd_adj.to_value()),
            (String::from("rev_off"), self.rev_off.to_value()),
            (String::from("rev_adj"), self.rev_adj.to_value()),
            (String::from("weights"), self.weights.to_value()),
        ]))
    }
}

impl Deserialize for Tdg {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::FromValueError> {
        Ok(Tdg {
            num_edges: Deserialize::from_value(v.expect_field("num_edges")?)?,
            fwd_off: Deserialize::from_value(v.expect_field("fwd_off")?)?,
            fwd_adj: Deserialize::from_value(v.expect_field("fwd_adj")?)?,
            rev_off: Deserialize::from_value(v.expect_field("rev_off")?)?,
            rev_adj: Deserialize::from_value(v.expect_field("rev_adj")?)?,
            weights: Deserialize::from_value(v.expect_field("weights")?)?,
            csr: OnceLock::new(),
        })
    }
}

/// The five owned CSR buffers of a [`Tdg`] — `(fwd_off, fwd_adj,
/// rev_off, rev_adj, weights)`, the argument order of `from_csr`.
pub(crate) type CsrBuffers = (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>, Vec<f32>);

impl Tdg {
    /// Assemble a `Tdg` from pre-built CSR arrays. The caller guarantees
    /// the arrays are consistent (matching offsets, deduplicated sorted
    /// adjacency, acyclic edge set); used by the quotient builder's fast
    /// path, which establishes all three by construction.
    pub(crate) fn from_csr(
        fwd_off: Vec<u32>,
        fwd_adj: Vec<u32>,
        rev_off: Vec<u32>,
        rev_adj: Vec<u32>,
        weights: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(fwd_off.len(), rev_off.len());
        debug_assert_eq!(fwd_adj.len(), rev_adj.len());
        debug_assert_eq!(weights.len() + 1, fwd_off.len());
        Tdg {
            num_edges: fwd_adj.len(),
            fwd_off,
            fwd_adj,
            rev_off,
            rev_adj,
            weights,
            csr: OnceLock::new(),
        }
    }

    /// Disassemble into the five owned CSR buffers, for recycling through
    /// a [`TdgArena`](crate::TdgArena). The cached level-ordered view, if
    /// any, is dropped — it is derived state.
    pub(crate) fn into_buffers(self) -> CsrBuffers {
        (
            self.fwd_off,
            self.fwd_adj,
            self.rev_off,
            self.rev_adj,
            self.weights,
        )
    }

    /// The level-ordered flat CSR view of this graph, built on first use
    /// and cached for the graph's lifetime. All wavefront partitioners
    /// run on this view, so one levelisation is shared across every
    /// partition call on the same graph.
    pub fn csr(&self) -> &CsrTdg {
        self.csr.get_or_init(|| CsrTdg::build(self))
    }

    /// Number of tasks (nodes).
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.fwd_off.len() - 1
    }

    /// Number of dependencies (edges).
    #[inline]
    pub fn num_deps(&self) -> usize {
        self.num_edges
    }

    /// Successors (fan-out dependents) of `t`.
    #[inline]
    pub fn successors(&self, t: TaskId) -> &[u32] {
        let i = t.index();
        &self.fwd_adj[self.fwd_off[i] as usize..self.fwd_off[i + 1] as usize]
    }

    /// Predecessors (fan-in dependencies) of `t`.
    #[inline]
    pub fn predecessors(&self, t: TaskId) -> &[u32] {
        let i = t.index();
        &self.rev_adj[self.rev_off[i] as usize..self.rev_off[i + 1] as usize]
    }

    /// Fan-in degree of `t` — the initial value of the paper's `dep_cnt`.
    #[inline]
    pub fn in_degree(&self, t: TaskId) -> u32 {
        let i = t.index();
        self.rev_off[i + 1] - self.rev_off[i]
    }

    /// Fan-out degree of `t`.
    #[inline]
    pub fn out_degree(&self, t: TaskId) -> u32 {
        let i = t.index();
        self.fwd_off[i + 1] - self.fwd_off[i]
    }

    /// Estimated execution cost of `t` in nanoseconds.
    #[inline]
    pub fn weight(&self, t: TaskId) -> f32 {
        self.weights[t.index()]
    }

    /// All estimated task costs, indexed by task id.
    #[inline]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Tasks with no predecessors, in ascending id order.
    ///
    /// These seed the BFS frontier of every partitioner (`H` in Figure 4).
    pub fn sources(&self) -> Vec<TaskId> {
        (0..self.num_tasks() as u32)
            .filter(|&v| self.in_degree(TaskId(v)) == 0)
            .map(TaskId)
            .collect()
    }

    /// Tasks with no successors, in ascending id order.
    pub fn sinks(&self) -> Vec<TaskId> {
        (0..self.num_tasks() as u32)
            .filter(|&v| self.out_degree(TaskId(v)) == 0)
            .map(TaskId)
            .collect()
    }

    /// Fan-in degrees of every task, indexed by task id.
    ///
    /// This is the `dep_cnt` array that both Algorithm 1 and the scheduler
    /// initialise before traversal.
    pub fn in_degrees(&self) -> Vec<u32> {
        (0..self.num_tasks())
            .map(|i| self.rev_off[i + 1] - self.rev_off[i])
            .collect()
    }

    /// BFS levelisation of the graph. Level 0 contains the sources.
    pub fn levels(&self) -> Levels {
        Levels::new(self)
    }

    /// A 64-bit structural fingerprint of the graph (FNV-1a over the task
    /// count and the forward CSR arrays).
    ///
    /// Two graphs with the same task ids and edge set share a fingerprint;
    /// weights are deliberately excluded, so re-weighting a TDG (as
    /// incremental timing updates do) does not invalidate caches keyed on
    /// the structure. This is the epoch key used by
    /// `gpasta-core`'s incremental partition cache.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u32| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.num_tasks() as u32);
        for &off in &self.fwd_off {
            mix(off);
        }
        for &v in &self.fwd_adj {
            mix(v);
        }
        h
    }

    /// Iterate over all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (TaskId, TaskId)> + '_ {
        (0..self.num_tasks() as u32).flat_map(move |u| {
            self.successors(TaskId(u))
                .iter()
                .map(move |&v| (TaskId(u), TaskId(v)))
        })
    }
}

/// Incremental builder for a [`Tdg`].
///
/// Duplicate edges are merged; [`build`](TdgBuilder::build) verifies the
/// graph is acyclic.
///
/// # Example
///
/// ```
/// use gpasta_tdg::{TdgBuilder, TaskId};
/// # fn main() -> Result<(), gpasta_tdg::BuildTdgError> {
/// let mut b = TdgBuilder::new(3);
/// b.add_edge(TaskId(0), TaskId(1));
/// b.add_edge(TaskId(1), TaskId(2));
/// b.add_edge(TaskId(0), TaskId(1)); // duplicate, merged away
/// let tdg = b.build()?;
/// assert_eq!(tdg.num_deps(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TdgBuilder {
    num_tasks: usize,
    edges: Vec<(u32, u32)>,
    weights: Vec<f32>,
}

/// Default estimated task cost (ns) when none is provided: in the middle of
/// the paper's observed 0.5–50 µs backward-propagation range.
pub(crate) const DEFAULT_WEIGHT_NS: f32 = 1_000.0;

impl TdgBuilder {
    /// Create a builder for a graph with `num_tasks` tasks and no edges yet.
    pub fn new(num_tasks: usize) -> Self {
        TdgBuilder {
            num_tasks,
            edges: Vec::new(),
            weights: vec![DEFAULT_WEIGHT_NS; num_tasks],
        }
    }

    /// Create a builder and pre-allocate room for `num_edges` edges.
    pub fn with_capacity(num_tasks: usize, num_edges: usize) -> Self {
        TdgBuilder {
            num_tasks,
            edges: Vec::with_capacity(num_edges),
            weights: vec![DEFAULT_WEIGHT_NS; num_tasks],
        }
    }

    /// Number of tasks the built graph will have.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Number of edges added so far (duplicates included).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add a dependency edge `from -> to` (`to` waits for `from`).
    ///
    /// Range and self-loop violations are reported by
    /// [`build`](TdgBuilder::build), keeping this hot path branch-light.
    #[inline]
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> &mut Self {
        self.edges.push((from.0, to.0));
        self
    }

    /// Set the estimated execution cost of `t` in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn set_weight(&mut self, t: TaskId, weight_ns: f32) -> &mut Self {
        self.weights[t.index()] = weight_ns;
        self
    }

    /// Finalise into an immutable [`Tdg`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildTdgError::TaskOutOfRange`] or
    /// [`BuildTdgError::SelfLoop`] for malformed edges, and
    /// [`BuildTdgError::Cycle`] if the edge set is not acyclic.
    pub fn build(mut self) -> Result<Tdg, BuildTdgError> {
        if self.num_tasks > u32::MAX as usize {
            return Err(BuildTdgError::TooManyTasks {
                requested: self.num_tasks,
            });
        }
        let n = self.num_tasks as u32;
        for &(u, v) in &self.edges {
            if u >= n {
                return Err(BuildTdgError::TaskOutOfRange {
                    task: u,
                    num_tasks: n,
                });
            }
            if v >= n {
                return Err(BuildTdgError::TaskOutOfRange {
                    task: v,
                    num_tasks: n,
                });
            }
            if u == v {
                return Err(BuildTdgError::SelfLoop { task: u });
            }
        }

        // Sort + dedup so adjacency lists are ordered and duplicate edges
        // collapse (parallel edges would double-count dep_cnt releases).
        // Two stable counting sorts replace the comparison sort: O(E + V),
        // and the resulting order is identical to `sort_unstable + dedup`.
        let (mut tmp, mut counts) = (Vec::new(), Vec::new());
        crate::recycle::sort_and_dedup_edges(
            self.num_tasks,
            &mut self.edges,
            &mut tmp,
            &mut counts,
        );

        let num_edges = self.edges.len();
        let n = self.num_tasks;

        // Forward CSR via counting sort over `from`.
        let mut fwd_off = vec![0u32; n + 1];
        for &(u, _) in &self.edges {
            fwd_off[u as usize + 1] += 1;
        }
        for i in 0..n {
            fwd_off[i + 1] += fwd_off[i];
        }
        let mut fwd_adj = vec![0u32; num_edges];
        {
            let mut cursor = fwd_off.clone();
            for &(u, v) in &self.edges {
                let c = &mut cursor[u as usize];
                fwd_adj[*c as usize] = v;
                *c += 1;
            }
        }

        // Reverse CSR via counting sort over `to`.
        let mut rev_off = vec![0u32; n + 1];
        for &(_, v) in &self.edges {
            rev_off[v as usize + 1] += 1;
        }
        for i in 0..n {
            rev_off[i + 1] += rev_off[i];
        }
        let mut rev_adj = vec![0u32; num_edges];
        {
            let mut cursor = rev_off.clone();
            for &(u, v) in &self.edges {
                let c = &mut cursor[v as usize];
                rev_adj[*c as usize] = u;
                *c += 1;
            }
        }

        let tdg = Tdg {
            num_edges,
            fwd_off,
            fwd_adj,
            rev_off,
            rev_adj,
            weights: self.weights,
            csr: OnceLock::new(),
        };

        // Kahn's algorithm: if not all tasks become ready, a cycle exists.
        let mut indeg = tdg.in_degrees();
        let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut visited = 0usize;
        while let Some(u) = queue.pop() {
            visited += 1;
            for &v in tdg.successors(TaskId(u)) {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
        if visited != n {
            let witness = indeg
                .iter()
                .position(|&d| d > 0)
                .expect("unvisited task must have positive residual in-degree")
                as u32;
            return Err(BuildTdgError::Cycle { witness });
        }

        Ok(tdg)
    }
}

impl Extend<(TaskId, TaskId)> for TdgBuilder {
    fn extend<I: IntoIterator<Item = (TaskId, TaskId)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Tdg {
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.build().expect("diamond is a DAG")
    }

    #[test]
    fn diamond_shape() {
        let g = diamond();
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.num_deps(), 4);
        assert_eq!(g.successors(TaskId(0)), &[1, 2]);
        assert_eq!(g.predecessors(TaskId(3)), &[1, 2]);
        assert_eq!(g.in_degree(TaskId(0)), 0);
        assert_eq!(g.in_degree(TaskId(3)), 2);
        assert_eq!(g.out_degree(TaskId(0)), 2);
        assert_eq!(g.sources(), vec![TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(3)]);
    }

    #[test]
    fn empty_graph() {
        let g = TdgBuilder::new(0).build().expect("empty graph is a DAG");
        assert_eq!(g.num_tasks(), 0);
        assert_eq!(g.num_deps(), 0);
        assert!(g.sources().is_empty());
    }

    #[test]
    fn edgeless_graph_is_all_sources_and_sinks() {
        let g = TdgBuilder::new(3).build().expect("edgeless graph is a DAG");
        assert_eq!(g.sources().len(), 3);
        assert_eq!(g.sinks().len(), 3);
        assert_eq!(g.in_degrees(), vec![0, 0, 0]);
    }

    #[test]
    fn duplicate_edges_merge() {
        let mut b = TdgBuilder::new(2);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(1));
        let g = b.build().expect("duplicates collapse into a DAG");
        assert_eq!(g.num_deps(), 1);
        assert_eq!(g.in_degree(TaskId(1)), 1);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let mut b = TdgBuilder::new(2);
        b.add_edge(TaskId(0), TaskId(5));
        assert_eq!(
            b.build()
                .expect_err("edge to task 5 exceeds the task range"),
            BuildTdgError::TaskOutOfRange {
                task: 5,
                num_tasks: 2
            }
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TdgBuilder::new(2);
        b.add_edge(TaskId(1), TaskId(1));
        assert_eq!(
            b.build().expect_err("self-loop must be rejected"),
            BuildTdgError::SelfLoop { task: 1 }
        );
    }

    #[test]
    fn two_cycle_rejected() {
        let mut b = TdgBuilder::new(2);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(1), TaskId(0));
        assert!(matches!(
            b.build().expect_err("2-cycle must be rejected"),
            BuildTdgError::Cycle { .. }
        ));
    }

    #[test]
    fn long_cycle_rejected_but_dag_prefix_ok() {
        // 0 -> 1 -> 2 -> 3 -> 1 has a cycle {1,2,3}.
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(1), TaskId(2));
        b.add_edge(TaskId(2), TaskId(3));
        b.add_edge(TaskId(3), TaskId(1));
        assert!(matches!(
            b.build().expect_err("3-cycle must be rejected"),
            BuildTdgError::Cycle { .. }
        ));
    }

    #[test]
    fn weights_default_and_override() {
        let mut b = TdgBuilder::new(2);
        b.add_edge(TaskId(0), TaskId(1));
        b.set_weight(TaskId(1), 42.5);
        let g = b.build().expect("chain is a DAG");
        assert_eq!(g.weight(TaskId(0)), DEFAULT_WEIGHT_NS);
        assert_eq!(g.weight(TaskId(1)), 42.5);
    }

    #[test]
    fn edges_iterator_round_trips() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (TaskId(0), TaskId(1)),
                (TaskId(0), TaskId(2)),
                (TaskId(1), TaskId(3)),
                (TaskId(2), TaskId(3)),
            ]
        );
    }

    #[test]
    fn extend_trait_adds_edges() {
        let mut b = TdgBuilder::new(3);
        b.extend([(TaskId(0), TaskId(1)), (TaskId(1), TaskId(2))]);
        let g = b.build().expect("chain is a DAG");
        assert_eq!(g.num_deps(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let g = diamond();
        let json = serde_json::to_string(&g).expect("serializes");
        let back: Tdg = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(g, back);
    }

    #[test]
    fn fingerprint_tracks_structure_not_weights() {
        let g1 = diamond();
        let g2 = diamond();
        assert_eq!(g1.fingerprint(), g2.fingerprint());

        // Same shape, different weights: structure-only key is unchanged.
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.set_weight(TaskId(2), 9.0);
        let reweighted = b.build().expect("diamond is a DAG");
        assert_eq!(g1.fingerprint(), reweighted.fingerprint());

        // One edge fewer: different key.
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        let smaller = b.build().expect("DAG");
        assert_ne!(g1.fingerprint(), smaller.fingerprint());

        // Same edge count, different endpoints: different key.
        let empty3 = TdgBuilder::new(3).build().expect("DAG");
        let empty4 = TdgBuilder::new(4).build().expect("DAG");
        assert_ne!(empty3.fingerprint(), empty4.fingerprint());
    }

    #[test]
    fn task_id_display_and_conversions() {
        let t = TaskId::from(9u32);
        assert_eq!(t.to_string(), "t9");
        assert_eq!(t.index(), 9);
    }
}
