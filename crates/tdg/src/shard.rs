//! Sharding: grouping quotient-graph partitions into K *shards*, the unit
//! of multi-process distribution.
//!
//! A [`crate::QuotientTdg`] is already the paper's unit of dispatch inside
//! one process; a [`ShardPlan`] lifts that one level — each shard owns a
//! contiguous run of partitions in level order and is executed by one OS
//! worker process, with only boundary timing values crossing shard edges.
//!
//! # Invariants
//!
//! 1. **Contiguity by topo rank**: partitions are laid out in the quotient
//!    graph's level-major order (ascending id within a level); every shard
//!    owns one contiguous run of that order. Because every quotient edge
//!    goes to a strictly later level, the shard id is monotone
//!    non-decreasing along the order, so every shard edge points from a
//!    lower to a higher shard id — the shard graph is acyclic *and* its
//!    ids are already a topological order.
//! 2. **Coverage**: every partition belongs to exactly one shard;
//!    [`ShardPlan::members`] concatenated over shards is a permutation of
//!    the partition ids.
//! 3. **Determinism**: the plan is a pure function of the quotient and the
//!    options — two processes that build the same quotient compute the
//!    same plan, which is what lets a worker rediscover its own task set
//!    from `(design, shards, shard)` alone.
//!
//! The size constraint (`max_tasks_per_shard`) caps how many member tasks
//! a shard may accumulate, and the edge-cut-aware refinement slides shard
//! boundaries by whole partitions when that strictly reduces the number
//! of quotient edges crossing shards (boundary traffic) without starving
//! or overfilling a shard.

use crate::graph::Tdg;
use crate::partition::PartitionId;
use crate::quotient::QuotientTdg;

/// Tuning knobs for [`ShardPlan::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPlanOptions {
    /// Hard cap on member *tasks* per shard; `0` disables the cap. The
    /// greedy pass cuts a shard early rather than exceed it (the final
    /// shard may still exceed the cap when the trailing partitions leave
    /// it no choice — a plan always exists).
    pub max_tasks_per_shard: usize,
    /// Boundary-refinement sweeps over all shard cuts; `0` keeps the raw
    /// greedy plan.
    pub refine_passes: usize,
}

impl Default for ShardPlanOptions {
    fn default() -> Self {
        ShardPlanOptions {
            max_tasks_per_shard: 0,
            refine_passes: 2,
        }
    }
}

/// [`ShardPlan::build`] rejected its inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardPlanError {
    /// A shard count of zero was requested for a non-empty quotient.
    NoShards,
}

impl std::fmt::Display for ShardPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardPlanError::NoShards => {
                write!(f, "cannot shard a non-empty quotient into zero shards")
            }
        }
    }
}

impl std::error::Error for ShardPlanError {}

/// A grouping of quotient partitions into contiguous, acyclic shards.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Per-partition shard assignment.
    shard_of: Vec<u32>,
    /// Partition ids grouped by shard, each group in quotient level order:
    /// shard `s` owns `members_flat[members_off[s]..members_off[s+1]]`.
    members_flat: Vec<u32>,
    members_off: Vec<u32>,
    /// Member-task totals per shard.
    tasks_of: Vec<u64>,
    /// The coarse DAG over shards (deduplicated shard-crossing quotient
    /// edges). Shard ids are already topologically ordered.
    graph: Tdg,
    /// Quotient edges crossing shard boundaries (the boundary traffic the
    /// refinement minimises).
    edge_cut: usize,
}

impl ShardPlan {
    /// Group `quotient`'s partitions into (at most) `shards` shards.
    ///
    /// The shard count is clamped to the partition count — asking for more
    /// shards than partitions yields singleton shards, not empty ones. An
    /// empty quotient produces an empty plan for any requested count.
    ///
    /// # Errors
    ///
    /// [`ShardPlanError::NoShards`] when `shards == 0` and the quotient is
    /// non-empty.
    pub fn build(
        quotient: &QuotientTdg,
        shards: usize,
        opts: &ShardPlanOptions,
    ) -> Result<Self, ShardPlanError> {
        let np = quotient.num_partitions();
        if np == 0 {
            return Ok(ShardPlan {
                shard_of: Vec::new(),
                members_flat: Vec::new(),
                members_off: vec![0],
                tasks_of: Vec::new(),
                graph: Tdg::from_csr(vec![0], Vec::new(), vec![0], Vec::new(), Vec::new()),
                edge_cut: 0,
            });
        }
        if shards == 0 {
            return Err(ShardPlanError::NoShards);
        }
        let k = shards.min(np);

        // Level-major order of partitions: every quotient edge points to a
        // strictly later level, so any monotone grouping of this order is
        // acyclic at shard granularity.
        let levels = quotient.graph().levels();
        let order: Vec<u32> = levels.order().to_vec();
        let weight = |p: u32| quotient.execution_order(PartitionId(p)).len() as u64;

        // Greedy contiguous chunking balanced by member-task weight: each
        // cut targets an equal share of the *remaining* weight, so early
        // heavy partitions do not starve the trailing shards.
        let total: u64 = order.iter().map(|&p| weight(p)).sum();
        let max = opts.max_tasks_per_shard as u64;
        let mut cuts: Vec<usize> = Vec::with_capacity(k + 1);
        cuts.push(0);
        let mut i = 0usize;
        let mut spent = 0u64;
        for s in 0..k {
            let shards_left = k - s;
            // Equal share of the *remaining* weight, so early heavy
            // partitions do not starve the trailing shards.
            let target = (total - spent).div_ceil(shards_left as u64);
            // Leave at least one partition for every shard still to come.
            let last_allowed = np - (shards_left - 1);
            let mut acc = 0u64;
            while i < last_allowed {
                let w = weight(order[i]);
                if acc > 0 && (acc >= target || (max > 0 && acc + w > max)) {
                    break;
                }
                acc += w;
                spent += w;
                i += 1;
            }
            cuts.push(i);
        }
        // The final shard takes whatever the cap left over — a plan
        // always exists even when the cap is infeasible.
        cuts[k] = np;

        let mut shard_of = vec![0u32; np];
        for s in 0..k {
            for &p in &order[cuts[s]..cuts[s + 1]] {
                shard_of[p as usize] = s as u32;
            }
        }

        // Edge-cut-aware boundary refinement: slide whole partitions
        // across adjacent cuts when that strictly reduces the number of
        // shard-crossing quotient edges. Moves preserve contiguity (only
        // the partition at a boundary moves) and hence acyclicity.
        let g = quotient.graph();
        let cut_delta = |p: u32, from: u32, to: u32, shard_of: &[u32]| -> i64 {
            let mut delta = 0i64;
            let t = crate::graph::TaskId(p);
            for &n in g.successors(t).iter().chain(g.predecessors(t)) {
                let sn = shard_of[n as usize];
                delta += i64::from(sn != to) - i64::from(sn != from);
            }
            delta
        };
        let tasks_of_cut = |cuts: &[usize], s: usize| -> u64 {
            order[cuts[s]..cuts[s + 1]].iter().map(|&p| weight(p)).sum()
        };
        for _ in 0..opts.refine_passes {
            let mut improved = false;
            for s in 0..k.saturating_sub(1) {
                // Tail of shard `s` into `s + 1`.
                if cuts[s + 1] - cuts[s] > 1 {
                    let p = order[cuts[s + 1] - 1];
                    let fits = max == 0 || tasks_of_cut(&cuts, s + 1) + weight(p) <= max;
                    if fits && cut_delta(p, s as u32, s as u32 + 1, &shard_of) < 0 {
                        shard_of[p as usize] = s as u32 + 1;
                        cuts[s + 1] -= 1;
                        improved = true;
                        continue;
                    }
                }
                // Head of shard `s + 1` into `s`.
                if cuts[s + 2] - cuts[s + 1] > 1 {
                    let p = order[cuts[s + 1]];
                    let fits = max == 0 || tasks_of_cut(&cuts, s) + weight(p) <= max;
                    if fits && cut_delta(p, s as u32 + 1, s as u32, &shard_of) < 0 {
                        shard_of[p as usize] = s as u32;
                        cuts[s + 1] += 1;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }

        // Materialise member lists, per-shard task totals, the shard
        // graph, and the final edge cut.
        let mut members_off = vec![0u32; k + 1];
        for s in 0..k {
            members_off[s + 1] = cuts[s + 1] as u32;
        }
        let members_flat = order;
        let mut tasks_of = vec![0u64; k];
        for s in 0..k {
            tasks_of[s] = members_flat[cuts[s]..cuts[s + 1]]
                .iter()
                .map(|&p| weight(p))
                .sum();
        }

        let mut cross: Vec<(u32, u32)> = Vec::new();
        let mut edge_cut = 0usize;
        for p in 0..np as u32 {
            let sp = shard_of[p as usize];
            for &q in g.successors(crate::graph::TaskId(p)) {
                let sq = shard_of[q as usize];
                if sp != sq {
                    edge_cut += 1;
                    cross.push((sp, sq));
                }
            }
        }
        cross.sort_unstable();
        cross.dedup();
        let mut fwd_off = vec![0u32; k + 1];
        let mut rev_off = vec![0u32; k + 1];
        for &(a, b) in &cross {
            fwd_off[a as usize + 1] += 1;
            rev_off[b as usize + 1] += 1;
        }
        for s in 0..k {
            fwd_off[s + 1] += fwd_off[s];
            rev_off[s + 1] += rev_off[s];
        }
        let mut fwd_adj = vec![0u32; cross.len()];
        let mut rev_adj = vec![0u32; cross.len()];
        {
            let mut fc = fwd_off.clone();
            let mut rc = rev_off.clone();
            // `cross` is sorted by (a, b), so per-source adjacency comes
            // out sorted; the reverse side needs a per-target pass in
            // source order, which the same iteration provides.
            for &(a, b) in &cross {
                fwd_adj[fc[a as usize] as usize] = b;
                fc[a as usize] += 1;
                rev_adj[rc[b as usize] as usize] = a;
                rc[b as usize] += 1;
            }
        }
        let mut weights = vec![0.0f32; k];
        for p in 0..np as u32 {
            weights[shard_of[p as usize] as usize] += g.weight(crate::graph::TaskId(p));
        }
        let graph = Tdg::from_csr(fwd_off, fwd_adj, rev_off, rev_adj, weights);

        Ok(ShardPlan {
            shard_of,
            members_flat,
            members_off,
            tasks_of,
            graph,
            edge_cut,
        })
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.members_off.len() - 1
    }

    /// The shard owning partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn shard_of(&self, p: PartitionId) -> u32 {
        self.shard_of[p.index()]
    }

    /// Per-partition shard assignment, indexed by partition id.
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.shard_of
    }

    /// Member partitions of shard `s`, in quotient level order (a valid
    /// partition execution order for the shard).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[inline]
    pub fn members(&self, s: u32) -> &[u32] {
        &self.members_flat
            [self.members_off[s as usize] as usize..self.members_off[s as usize + 1] as usize]
    }

    /// Total member tasks of shard `s`.
    #[inline]
    pub fn tasks_of(&self, s: u32) -> u64 {
        self.tasks_of[s as usize]
    }

    /// The coarse DAG over shards. Shard ids are already a topological
    /// order: every edge goes from a lower to a higher id.
    #[inline]
    pub fn graph(&self) -> &Tdg {
        &self.graph
    }

    /// Quotient edges crossing shard boundaries.
    #[inline]
    pub fn edge_cut(&self) -> usize {
        self.edge_cut
    }

    /// A structural fingerprint covering the assignment and the shard
    /// graph — two processes must agree on this before exchanging
    /// boundary values keyed to the plan.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u32| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.num_shards() as u32);
        for &s in &self.shard_of {
            mix(s);
        }
        h ^ self.graph.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{TaskId, TdgBuilder};
    use crate::partition::Partition;

    /// A layered DAG: `width` chains of length `depth`, plus cross links,
    /// partitioned one-partition-per-(level, chain-pair).
    fn layered_quotient(width: u32, depth: u32) -> QuotientTdg {
        let n = width * depth;
        let mut b = TdgBuilder::new(n as usize);
        let id = |l: u32, c: u32| TaskId(l * width + c);
        for l in 0..depth - 1 {
            for c in 0..width {
                b.add_edge(id(l, c), id(l + 1, c));
                b.add_edge(id(l, c), id(l + 1, (c + 1) % width));
            }
        }
        let tdg = b.build().expect("layered DAG");
        let assignment: Vec<u32> = (0..n).map(|t| t / 2).collect();
        QuotientTdg::build(&tdg, &Partition::compact(assignment)).expect("valid quotient")
    }

    fn check_invariants(plan: &ShardPlan, quotient: &QuotientTdg) {
        let np = quotient.num_partitions();
        // Coverage: members are a permutation of partition ids.
        let mut seen = vec![false; np];
        for s in 0..plan.num_shards() as u32 {
            for &p in plan.members(s) {
                assert_eq!(plan.shard_of(PartitionId(p)), s);
                assert!(!seen[p as usize], "partition {p} in two shards");
                seen[p as usize] = true;
            }
            assert!(!plan.members(s).is_empty(), "shard {s} is empty");
        }
        assert!(seen.iter().all(|&x| x), "every partition is owned");
        // Acyclicity via monotone ids: every shard edge points forward.
        for s in 0..plan.graph().num_tasks() as u32 {
            for &t in plan.graph().successors(TaskId(s)) {
                assert!(s < t, "shard edge {s} -> {t} must point forward");
            }
        }
        // Contiguity: shard ids are monotone along the level-major order.
        let levels = quotient.graph().levels();
        let mut prev = 0u32;
        for &p in levels.order() {
            let s = plan.shard_of(PartitionId(p));
            assert!(s >= prev, "shard ids must be monotone in level order");
            prev = s;
        }
    }

    #[test]
    fn plans_cover_and_stay_acyclic() {
        let q = layered_quotient(4, 6);
        for k in [1, 2, 3, 5, usize::MAX >> 1] {
            let plan = ShardPlan::build(&q, k, &ShardPlanOptions::default()).expect("plan");
            assert!(plan.num_shards() <= q.num_partitions());
            assert!(plan.num_shards() >= 1);
            check_invariants(&plan, &q);
        }
    }

    #[test]
    fn zero_shards_rejected_nonempty() {
        let q = layered_quotient(2, 2);
        assert_eq!(
            ShardPlan::build(&q, 0, &ShardPlanOptions::default()),
            Err(ShardPlanError::NoShards)
        );
    }

    #[test]
    fn empty_quotient_is_an_empty_plan() {
        let tdg = TdgBuilder::new(0).build().expect("empty");
        let q = QuotientTdg::build(&tdg, &Partition::new(Vec::new())).expect("empty quotient");
        let plan = ShardPlan::build(&q, 4, &ShardPlanOptions::default()).expect("plan");
        assert_eq!(plan.num_shards(), 0);
        assert_eq!(plan.edge_cut(), 0);
    }

    #[test]
    fn plans_are_deterministic() {
        let q = layered_quotient(6, 8);
        let a = ShardPlan::build(&q, 3, &ShardPlanOptions::default()).expect("plan");
        let b = ShardPlan::build(&q, 3, &ShardPlanOptions::default()).expect("plan");
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn task_totals_sum_to_the_quotient() {
        let q = layered_quotient(4, 6);
        let plan = ShardPlan::build(&q, 3, &ShardPlanOptions::default()).expect("plan");
        let total: u64 = (0..plan.num_shards() as u32)
            .map(|s| plan.tasks_of(s))
            .sum();
        assert_eq!(total, q.num_tasks() as u64);
    }

    #[test]
    fn size_cap_is_respected_where_possible() {
        let q = layered_quotient(4, 8);
        let per = q.num_tasks() / q.num_partitions(); // uniform members
        let cap = 3 * per;
        let opts = ShardPlanOptions {
            max_tasks_per_shard: cap,
            refine_passes: 2,
        };
        let plan = ShardPlan::build(&q, 8, &opts).expect("plan");
        check_invariants(&plan, &q);
        for s in 0..plan.num_shards() as u32 {
            assert!(
                plan.tasks_of(s) <= cap as u64,
                "shard {s} holds {} tasks over the cap {cap}",
                plan.tasks_of(s)
            );
        }
    }

    #[test]
    fn refinement_never_increases_the_cut() {
        let q = layered_quotient(6, 10);
        let raw = ShardPlan::build(
            &q,
            4,
            &ShardPlanOptions {
                refine_passes: 0,
                ..Default::default()
            },
        )
        .expect("raw plan");
        let refined = ShardPlan::build(&q, 4, &ShardPlanOptions::default()).expect("refined plan");
        check_invariants(&refined, &q);
        assert!(
            refined.edge_cut() <= raw.edge_cut(),
            "refined cut {} vs raw {}",
            refined.edge_cut(),
            raw.edge_cut()
        );
    }

    #[test]
    fn more_shards_than_partitions_clamps_to_singletons() {
        let q = layered_quotient(2, 3);
        let plan = ShardPlan::build(&q, 100, &ShardPlanOptions::default()).expect("plan");
        assert_eq!(plan.num_shards(), q.num_partitions());
        for s in 0..plan.num_shards() as u32 {
            assert_eq!(plan.members(s).len(), 1);
        }
    }
}
