//! Recycled [`Tdg`] construction: build the same validated graph the
//! [`TdgBuilder`](crate::TdgBuilder) produces, without the per-build
//! allocations and without the comparison sort.
//!
//! `Timer::update_timing` builds a fresh TDG every incremental iteration —
//! the 59 %-of-update "task graph construction" slice of the paper's
//! Figure 1(a). [`TdgArena`] owns every buffer that construction needs
//! (edge staging, CSR arrays, cycle-check scratch) and takes finished
//! graphs back via [`TdgArena::recycle`], so steady-state rebuilds touch
//! the allocator only while a new high-water mark is being established.
//! This is the `FlowArena` lifecycle (gpasta-sched) applied to the STA
//! graph itself; DESIGN.md §13 documents the contract.
//!
//! Edge ordering uses two stable counting sorts (by target, then by
//! source) instead of `sort_unstable` — O(E) instead of O(E log E), and
//! it yields exactly the `(from, to)`-sorted, deduplicated adjacency the
//! legacy builder produces, so arena-built graphs are bit-identical to
//! builder-built ones.

use crate::error::BuildTdgError;
use crate::graph::{TaskId, Tdg};

/// Reusable buffers for repeated [`Tdg`] construction.
///
/// # Lifecycle
///
/// ```text
/// arena.builder(n) -> add_edge*/set_weight* -> build() -> Tdg
///        ^                                                  |
///        +---------------- arena.recycle(tdg) <-------------+
/// ```
///
/// `build` moves the arena's CSR buffers into the returned [`Tdg`];
/// `recycle` takes them back. Skipping `recycle` is safe — the next
/// `build` simply allocates fresh output buffers.
#[derive(Debug, Default)]
pub struct TdgArena {
    /// Edge staging area (also the final sorted buffer).
    edges: Vec<(u32, u32)>,
    /// Scratch for the first counting-sort pass.
    tmp: Vec<(u32, u32)>,
    /// Counting-sort bucket cursors.
    counts: Vec<u32>,
    /// Cycle-check residual in-degrees.
    indeg: Vec<u32>,
    /// Cycle-check ready queue.
    queue: Vec<u32>,
    /// Recycled CSR output buffers, if a graph has been returned.
    fwd_off: Vec<u32>,
    fwd_adj: Vec<u32>,
    rev_off: Vec<u32>,
    rev_adj: Vec<u32>,
    weights: Vec<f32>,
}

impl TdgArena {
    /// An empty arena; buffers grow to the workload's high-water mark and
    /// are reused from then on.
    pub fn new() -> Self {
        TdgArena::default()
    }

    /// Start building a graph with `num_tasks` tasks, reusing every buffer.
    pub fn builder(&mut self, num_tasks: usize) -> ArenaTdgBuilder<'_> {
        self.edges.clear();
        self.weights.clear();
        self.weights
            .resize(num_tasks, crate::graph::DEFAULT_WEIGHT_NS);
        ArenaTdgBuilder {
            arena: self,
            num_tasks,
        }
    }

    /// Take a finished graph's buffers back for the next build.
    pub fn recycle(&mut self, tdg: Tdg) {
        let (fwd_off, fwd_adj, rev_off, rev_adj, weights) = tdg.into_buffers();
        self.fwd_off = fwd_off;
        self.fwd_adj = fwd_adj;
        self.rev_off = rev_off;
        self.rev_adj = rev_adj;
        // `weights` was moved into the Tdg at build time; reclaim the
        // larger of the two capacities.
        if weights.capacity() > self.weights.capacity() {
            self.weights = weights;
        }
    }
}

/// An in-progress arena build; see [`TdgArena::builder`].
#[derive(Debug)]
pub struct ArenaTdgBuilder<'a> {
    arena: &'a mut TdgArena,
    num_tasks: usize,
}

impl ArenaTdgBuilder<'_> {
    /// Number of tasks the built graph will have.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Number of edges added so far (duplicates included).
    pub fn num_edges(&self) -> usize {
        self.arena.edges.len()
    }

    /// Add a dependency edge `from -> to` (`to` waits for `from`).
    #[inline]
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> &mut Self {
        self.arena.edges.push((from.0, to.0));
        self
    }

    /// Set the estimated execution cost of `t` in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn set_weight(&mut self, t: TaskId, weight_ns: f32) -> &mut Self {
        self.arena.weights[t.index()] = weight_ns;
        self
    }

    /// Finalise into an immutable [`Tdg`], performing the same validation
    /// as [`TdgBuilder::build`](crate::TdgBuilder::build) and producing a
    /// bit-identical graph.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTdgError::TaskOutOfRange`],
    /// [`BuildTdgError::SelfLoop`], or [`BuildTdgError::Cycle`] exactly as
    /// the plain builder does.
    pub fn build(self) -> Result<Tdg, BuildTdgError> {
        let ArenaTdgBuilder { arena, num_tasks } = self;
        if num_tasks > u32::MAX as usize {
            return Err(BuildTdgError::TooManyTasks {
                requested: num_tasks,
            });
        }
        let n32 = num_tasks as u32;
        for &(u, v) in &arena.edges {
            if u >= n32 {
                return Err(BuildTdgError::TaskOutOfRange {
                    task: u,
                    num_tasks: n32,
                });
            }
            if v >= n32 {
                return Err(BuildTdgError::TaskOutOfRange {
                    task: v,
                    num_tasks: n32,
                });
            }
            if u == v {
                return Err(BuildTdgError::SelfLoop { task: u });
            }
        }
        finish_build(arena, num_tasks, true)
    }

    /// [`build`](Self::build) for callers whose edges are valid and
    /// acyclic *by construction* — `Timer::update_timing` derives its
    /// edges from an already-validated timing DAG, so re-proving range,
    /// self-loop freedom, and acyclicity on every incremental iteration
    /// is pure per-update overhead. The O(E) validation pass and the
    /// Kahn drain run only under `debug_assertions`; the produced graph
    /// is bit-identical to what `build` returns on the same input.
    ///
    /// # Panics
    ///
    /// Debug builds panic where [`build`](Self::build) would have
    /// returned an error. Release builds trust the caller: an invalid
    /// edge set panics on an out-of-bounds index inside construction
    /// instead of reporting a typed error.
    pub fn build_trusted(self) -> Tdg {
        let ArenaTdgBuilder { arena, num_tasks } = self;
        #[cfg(debug_assertions)]
        {
            let n32 = num_tasks as u32;
            for &(u, v) in &arena.edges {
                debug_assert!(u < n32 && v < n32, "edge ({u}, {v}) out of range {n32}");
                debug_assert!(u != v, "self loop on task {u}");
            }
        }
        match finish_build(arena, num_tasks, cfg!(debug_assertions)) {
            Ok(tdg) => tdg,
            Err(e) => panic!("build_trusted on an invalid edge set: {e}"),
        }
    }
}

/// Shared tail of [`ArenaTdgBuilder::build`] and
/// [`ArenaTdgBuilder::build_trusted`]: sort + dedup, CSR construction,
/// and (when `check_cycles`) the Kahn drain.
fn finish_build(
    arena: &mut TdgArena,
    num_tasks: usize,
    check_cycles: bool,
) -> Result<Tdg, BuildTdgError> {
    sort_and_dedup_edges(
        num_tasks,
        &mut arena.edges,
        &mut arena.tmp,
        &mut arena.counts,
    );
    {
        let num_edges = arena.edges.len();

        // Forward CSR: edges are sorted by (from, to), so one linear scan
        // fills offsets and adjacency in order.
        let fwd_off = &mut arena.fwd_off;
        let fwd_adj = &mut arena.fwd_adj;
        fwd_off.clear();
        fwd_off.resize(num_tasks + 1, 0);
        fwd_adj.clear();
        fwd_adj.reserve(num_edges);
        for &(u, v) in &arena.edges {
            fwd_off[u as usize + 1] += 1;
            fwd_adj.push(v);
        }
        for i in 0..num_tasks {
            fwd_off[i + 1] += fwd_off[i];
        }

        // Reverse CSR via counting sort over `to`; iterating the
        // (from, to)-sorted edges keeps each predecessor list ascending.
        let rev_off = &mut arena.rev_off;
        let rev_adj = &mut arena.rev_adj;
        rev_off.clear();
        rev_off.resize(num_tasks + 1, 0);
        rev_adj.clear();
        rev_adj.resize(num_edges, 0);
        for &(_, v) in &arena.edges {
            rev_off[v as usize + 1] += 1;
        }
        for i in 0..num_tasks {
            rev_off[i + 1] += rev_off[i];
        }
        arena.counts.clear();
        arena.counts.extend_from_slice(&rev_off[..num_tasks]);
        for &(u, v) in &arena.edges {
            let c = &mut arena.counts[v as usize];
            rev_adj[*c as usize] = u;
            *c += 1;
        }

        let tdg = Tdg::from_csr(
            std::mem::take(fwd_off),
            std::mem::take(fwd_adj),
            std::mem::take(rev_off),
            std::mem::take(rev_adj),
            std::mem::take(&mut arena.weights),
        );

        // Kahn's algorithm on recycled scratch: all tasks must drain.
        // Trusted builds skip this in release (DAG by construction).
        if check_cycles {
            arena.indeg.clear();
            arena
                .indeg
                .extend((0..num_tasks).map(|i| tdg.in_degree(TaskId(i as u32))));
            arena.queue.clear();
            arena
                .queue
                .extend((0..num_tasks as u32).filter(|&v| arena.indeg[v as usize] == 0));
            let mut visited = 0usize;
            while let Some(u) = arena.queue.pop() {
                visited += 1;
                for &v in tdg.successors(TaskId(u)) {
                    arena.indeg[v as usize] -= 1;
                    if arena.indeg[v as usize] == 0 {
                        arena.queue.push(v);
                    }
                }
            }
            if visited != num_tasks {
                let witness = arena
                    .indeg
                    .iter()
                    .position(|&d| d > 0)
                    .expect("unvisited task must have positive residual in-degree")
                    as u32;
                // Reclaim the rejected graph's buffers before bailing.
                arena.recycle(tdg);
                return Err(BuildTdgError::Cycle { witness });
            }
        }

        Ok(tdg)
    }
}

/// Sort `edges` by `(from, to)` and remove duplicates, using two stable
/// counting-sort passes (by `to`, then by `from`) — O(E + V), allocation-
/// free once the scratch buffers reach capacity. Produces exactly the
/// order `edges.sort_unstable(); edges.dedup()` would.
pub(crate) fn sort_and_dedup_edges(
    num_tasks: usize,
    edges: &mut Vec<(u32, u32)>,
    tmp: &mut Vec<(u32, u32)>,
    counts: &mut Vec<u32>,
) {
    if edges.len() <= 1 {
        return;
    }
    // Pass 1: stable counting sort by target into `tmp`.
    counts.clear();
    counts.resize(num_tasks + 1, 0);
    for &(_, v) in edges.iter() {
        counts[v as usize + 1] += 1;
    }
    for i in 0..num_tasks {
        counts[i + 1] += counts[i];
    }
    tmp.clear();
    tmp.resize(edges.len(), (0, 0));
    for &(u, v) in edges.iter() {
        let c = &mut counts[v as usize];
        tmp[*c as usize] = (u, v);
        *c += 1;
    }
    // Pass 2: stable counting sort by source back into `edges`; stability
    // preserves the target order within each source bucket.
    counts.clear();
    counts.resize(num_tasks + 1, 0);
    for &(u, _) in tmp.iter() {
        counts[u as usize + 1] += 1;
    }
    for i in 0..num_tasks {
        counts[i + 1] += counts[i];
    }
    for &(u, v) in tmp.iter() {
        let c = &mut counts[u as usize];
        edges[*c as usize] = (u, v);
        *c += 1;
    }
    edges.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TdgBuilder;

    fn random_edges(seed: u64, n: u32, m: usize) -> Vec<(u32, u32)> {
        // Deterministic LCG; only forward edges (u < v) so the graph is a DAG.
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        (0..m)
            .map(|_| {
                let a = next() % n;
                let b = next() % n;
                if a < b {
                    (a, b)
                } else if b < a {
                    (b, a)
                } else {
                    (a, (a + 1) % n.max(2))
                }
            })
            .filter(|&(u, v)| u != v)
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect()
    }

    #[test]
    fn counting_sort_matches_comparison_sort() {
        for seed in 0..8u64 {
            let mut a = random_edges(seed, 50, 300);
            let mut b = a.clone();
            a.sort_unstable();
            a.dedup();
            let (mut tmp, mut counts) = (Vec::new(), Vec::new());
            sort_and_dedup_edges(50, &mut b, &mut tmp, &mut counts);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn arena_build_is_bit_identical_to_builder() {
        for seed in 0..4u64 {
            let edges = random_edges(seed, 64, 400);
            let mut legacy = TdgBuilder::new(64);
            for &(u, v) in &edges {
                legacy.add_edge(TaskId(u), TaskId(v));
            }
            legacy.set_weight(TaskId(7), 99.0);
            let legacy = legacy.build().expect("DAG");

            let mut arena = TdgArena::new();
            let mut b = arena.builder(64);
            for &(u, v) in &edges {
                b.add_edge(TaskId(u), TaskId(v));
            }
            b.set_weight(TaskId(7), 99.0);
            let fresh = b.build().expect("DAG");
            assert_eq!(legacy, fresh, "seed {seed}");
        }
    }

    #[test]
    fn steady_state_rebuild_reuses_capacity() {
        let edges = random_edges(1, 64, 400);
        let mut arena = TdgArena::new();
        let build = |arena: &mut TdgArena, edges: &[(u32, u32)]| {
            let mut b = arena.builder(64);
            for &(u, v) in edges {
                b.add_edge(TaskId(u), TaskId(v));
            }
            b.build().expect("DAG")
        };
        let g1 = build(&mut arena, &edges);
        arena.recycle(g1);
        let caps = |a: &TdgArena| {
            (
                a.edges.capacity(),
                a.tmp.capacity(),
                a.fwd_off.capacity(),
                a.fwd_adj.capacity(),
                a.rev_off.capacity(),
                a.rev_adj.capacity(),
                a.weights.capacity(),
            )
        };
        let before = caps(&arena);
        let g2 = build(&mut arena, &edges);
        arena.recycle(g2);
        assert_eq!(
            before,
            caps(&arena),
            "no buffer grew on a same-size rebuild"
        );
    }

    #[test]
    fn validation_matches_builder() {
        let mut arena = TdgArena::new();
        let mut b = arena.builder(2);
        b.add_edge(TaskId(0), TaskId(5));
        assert_eq!(
            b.build().expect_err("out of range"),
            BuildTdgError::TaskOutOfRange {
                task: 5,
                num_tasks: 2
            }
        );

        let mut b = arena.builder(2);
        b.add_edge(TaskId(1), TaskId(1));
        assert_eq!(
            b.build().expect_err("self loop"),
            BuildTdgError::SelfLoop { task: 1 }
        );

        let mut b = arena.builder(2);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(1), TaskId(0));
        assert!(matches!(
            b.build().expect_err("cycle"),
            BuildTdgError::Cycle { .. }
        ));

        // The arena is reusable after every rejection.
        let mut b = arena.builder(2);
        b.add_edge(TaskId(0), TaskId(1));
        assert_eq!(b.build().expect("DAG").num_deps(), 1);
    }

    #[test]
    fn empty_and_edgeless_builds() {
        let mut arena = TdgArena::new();
        let g = arena.builder(0).build().expect("empty");
        assert_eq!(g.num_tasks(), 0);
        arena.recycle(g);
        let g = arena.builder(3).build().expect("edgeless");
        assert_eq!(g.num_tasks(), 3);
        assert_eq!(g.num_deps(), 0);
    }
}
