//! Plain-text TDG interchange: edge lists.
//!
//! The format is one `from to [weight_ns]` triple per line; `#` starts a
//! comment; blank lines are skipped; the task count is one more than the
//! largest id mentioned (or the count given by an optional
//! `# tasks: <n>` header, which also allows trailing isolated tasks).

use crate::error::BuildTdgError;
use crate::graph::{TaskId, Tdg, TdgBuilder};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced by [`parse_edge_list`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseEdgeListError {
    /// A malformed line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// No edges and no `# tasks:` header — nothing to build.
    Empty,
    /// The edges did not form a DAG.
    Graph(BuildTdgError),
}

impl fmt::Display for ParseEdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseEdgeListError::Syntax { line, message } => {
                write!(f, "edge-list syntax error at line {line}: {message}")
            }
            ParseEdgeListError::Empty => f.write_str("edge list is empty"),
            ParseEdgeListError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl Error for ParseEdgeListError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseEdgeListError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildTdgError> for ParseEdgeListError {
    fn from(e: BuildTdgError) -> Self {
        ParseEdgeListError::Graph(e)
    }
}

/// Render `tdg` as an edge list (with a `# tasks:` header so isolated
/// tasks survive the round trip, and per-task `# weight:` lines for
/// non-default weights).
pub fn write_edge_list(tdg: &Tdg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# tasks: {}", tdg.num_tasks());
    for t in 0..tdg.num_tasks() as u32 {
        let w = tdg.weight(TaskId(t));
        if w != 1_000.0 {
            let _ = writeln!(out, "# weight: {t} {w}");
        }
    }
    for (u, v) in tdg.edges() {
        let _ = writeln!(out, "{} {}", u.0, v.0);
    }
    out
}

/// Parse an edge list into a [`Tdg`].
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] for malformed lines, empty input, or a
/// cyclic edge set.
pub fn parse_edge_list(text: &str) -> Result<Tdg, ParseEdgeListError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut weights: Vec<(u32, f32)> = Vec::new();
    let mut declared_tasks: Option<usize> = None;
    let mut max_id = 0u32;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = raw.trim();
        // Headers ride in comments; other comments are skipped.
        if let Some(rest) = trimmed.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(n) = rest.strip_prefix("tasks:") {
                declared_tasks =
                    Some(n.trim().parse().map_err(|_| ParseEdgeListError::Syntax {
                        line: line_no,
                        message: "malformed `# tasks:` header".into(),
                    })?);
            } else if let Some(w) = rest.strip_prefix("weight:") {
                let mut it = w.split_whitespace();
                let t: u32 = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                    ParseEdgeListError::Syntax {
                        line: line_no,
                        message: "malformed `# weight:` header".into(),
                    }
                })?;
                let v: f32 = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                    ParseEdgeListError::Syntax {
                        line: line_no,
                        message: "malformed `# weight:` header".into(),
                    }
                })?;
                weights.push((t, v));
                max_id = max_id.max(t);
            }
            continue;
        }
        let line = trimmed;
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let mut next_id = |what: &str| -> Result<u32, ParseEdgeListError> {
            it.next()
                .ok_or_else(|| ParseEdgeListError::Syntax {
                    line: line_no,
                    message: format!("missing {what}"),
                })?
                .parse()
                .map_err(|_| ParseEdgeListError::Syntax {
                    line: line_no,
                    message: format!("{what} is not a task id"),
                })
        };
        let from = next_id("`from`")?;
        let to = next_id("`to`")?;
        max_id = max_id.max(from).max(to);
        edges.push((from, to));
    }

    if edges.is_empty() && declared_tasks.is_none() {
        return Err(ParseEdgeListError::Empty);
    }
    let implied = if edges.is_empty() && weights.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let num_tasks = declared_tasks.unwrap_or(implied).max(implied);

    let mut b = TdgBuilder::with_capacity(num_tasks, edges.len());
    for (u, v) in edges {
        b.add_edge(TaskId(u), TaskId(v));
    }
    for (t, w) in weights {
        b.set_weight(TaskId(t), w);
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Tdg {
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.set_weight(TaskId(2), 42.0);
        b.build().expect("diamond DAG")
    }

    #[test]
    fn round_trips_graph_and_weights() {
        let g = diamond();
        let text = write_edge_list(&g);
        let back = parse_edge_list(&text).expect("own output parses");
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# a comment\n\n0 1  # trailing comment is NOT supported inside the pair\n";
        // Trailing comments after the pair are extra tokens — ignored by
        // whitespace splitting only if they parse; here `#` fails.
        // Keep the format strict: the above should parse `0 1` and stop.
        let g = parse_edge_list("# c\n\n0 1\n").expect("parses");
        assert_eq!(g.num_tasks(), 2);
        let _ = text;
    }

    #[test]
    fn tasks_header_allows_isolated_tasks() {
        let g = parse_edge_list("# tasks: 5\n0 1\n").expect("parses");
        assert_eq!(g.num_tasks(), 5);
        assert_eq!(g.num_deps(), 1);
    }

    #[test]
    fn header_smaller_than_edges_is_widened() {
        let g = parse_edge_list("# tasks: 2\n0 4\n").expect("parses");
        assert_eq!(g.num_tasks(), 5);
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            parse_edge_list("# nothing\n"),
            Err(ParseEdgeListError::Empty)
        );
    }

    #[test]
    fn cyclic_input_rejected() {
        assert!(matches!(
            parse_edge_list("0 1\n1 0\n"),
            Err(ParseEdgeListError::Graph(BuildTdgError::Cycle { .. }))
        ));
    }

    #[test]
    fn malformed_lines_report_position() {
        match parse_edge_list("0 1\nbogus line\n") {
            Err(ParseEdgeListError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
        match parse_edge_list("7\n") {
            Err(ParseEdgeListError::Syntax { line, message }) => {
                assert_eq!(line, 1);
                assert!(message.contains("to"));
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn error_display_and_source() {
        let e = parse_edge_list("0 1\n1 0\n").expect_err("cycle");
        assert!(e.to_string().contains("invalid graph"));
        assert!(Error::source(&e).is_some());
    }
}
