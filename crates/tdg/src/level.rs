//! BFS levelisation of a TDG.
//!
//! Every partitioner in the paper traverses the TDG level by level: GDCA
//! clusters *within* a level, G-PASTA clusters *between adjacent* levels.
//! [`Levels`] computes the levelised topological order once and exposes the
//! per-level slices.

use crate::graph::{TaskId, Tdg};
use serde::{Deserialize, Serialize};

/// The BFS levelisation of a [`Tdg`].
///
/// Level `l` of a task is `0` for sources and `1 + max(level of
/// predecessors)` otherwise, i.e. the earliest wave in which the task can
/// run under unit task cost. This equals the order in which the paper's
/// `handle` array fills up (Figure 4).
///
/// # Example
///
/// ```
/// use gpasta_tdg::{TdgBuilder, TaskId};
/// # fn main() -> Result<(), gpasta_tdg::BuildTdgError> {
/// let mut b = TdgBuilder::new(4);
/// b.add_edge(TaskId(0), TaskId(1));
/// b.add_edge(TaskId(0), TaskId(2));
/// b.add_edge(TaskId(1), TaskId(3));
/// b.add_edge(TaskId(2), TaskId(3));
/// let levels = b.build()?.levels();
/// assert_eq!(levels.depth(), 3);
/// assert_eq!(levels.level_of(TaskId(3)), 2);
/// assert_eq!(levels.tasks_at(1), &[1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Levels {
    /// Level of each task, indexed by task id.
    level_of: Vec<u32>,
    /// Task ids sorted by (level, id); together with `offsets` this is a CSR
    /// over levels — and it is exactly the final contents of the paper's
    /// `handle` array `H`.
    order: Vec<u32>,
    /// `offsets[l]..offsets[l+1]` indexes `order` for level `l`.
    offsets: Vec<u32>,
}

impl Levels {
    /// Compute the levelisation of `tdg`.
    pub(crate) fn new(tdg: &Tdg) -> Self {
        let n = tdg.num_tasks();
        let mut level_of = vec![0u32; n];
        let mut indeg = tdg.in_degrees();
        let mut frontier: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        frontier.sort_unstable();

        let mut order = Vec::with_capacity(n);
        let mut offsets = vec![0u32];
        let mut next = Vec::new();
        let mut level = 0u32;
        while !frontier.is_empty() {
            for &u in &frontier {
                level_of[u as usize] = level;
                order.push(u);
            }
            offsets.push(order.len() as u32);
            for &u in &frontier {
                for &v in tdg.successors(TaskId(u)) {
                    indeg[v as usize] -= 1;
                    if indeg[v as usize] == 0 {
                        next.push(v);
                    }
                }
            }
            next.sort_unstable();
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
            level += 1;
        }
        debug_assert_eq!(order.len(), n, "Tdg invariant guarantees acyclicity");

        Levels {
            level_of,
            order,
            offsets,
        }
    }

    /// Number of levels (the depth of the TDG). Zero for an empty graph.
    #[inline]
    pub fn depth(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The level of task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[inline]
    pub fn level_of(&self, t: TaskId) -> u32 {
        self.level_of[t.index()]
    }

    /// Levels of every task, indexed by task id.
    #[inline]
    pub fn levels_by_task(&self) -> &[u32] {
        &self.level_of
    }

    /// Task ids at level `l`, in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `l >= depth()`.
    #[inline]
    pub fn tasks_at(&self, l: usize) -> &[u32] {
        &self.order[self.offsets[l] as usize..self.offsets[l + 1] as usize]
    }

    /// Number of tasks at level `l` — the *width* of the level.
    #[inline]
    pub fn width(&self, l: usize) -> usize {
        (self.offsets[l + 1] - self.offsets[l]) as usize
    }

    /// The widest level's width: the TDG's peak structural parallelism.
    pub fn max_width(&self) -> usize {
        (0..self.depth()).map(|l| self.width(l)).max().unwrap_or(0)
    }

    /// The complete levelised topological order (all levels concatenated).
    ///
    /// This equals the final contents of the paper's `handle` array after
    /// the BFS finishes.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Iterate over levels as slices of task ids.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.depth()).map(move |l| self.tasks_at(l))
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::{TaskId, TdgBuilder};

    /// The running example of the paper's Figure 4:
    /// sources 0, 2, 4; 0->1, 2->3, 4->5; 1->6, 3->6, 5->6.
    fn figure4() -> crate::Tdg {
        let mut b = TdgBuilder::new(7);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(2), TaskId(3));
        b.add_edge(TaskId(4), TaskId(5));
        b.add_edge(TaskId(1), TaskId(6));
        b.add_edge(TaskId(3), TaskId(6));
        b.add_edge(TaskId(5), TaskId(6));
        b.build().expect("figure 4 graph is a DAG")
    }

    #[test]
    fn figure4_levels() {
        let levels = figure4().levels();
        assert_eq!(levels.depth(), 3);
        assert_eq!(levels.tasks_at(0), &[0, 2, 4]);
        assert_eq!(levels.tasks_at(1), &[1, 3, 5]);
        assert_eq!(levels.tasks_at(2), &[6]);
        assert_eq!(levels.width(0), 3);
        assert_eq!(levels.max_width(), 3);
        assert_eq!(levels.order(), &[0, 2, 4, 1, 3, 5, 6]);
    }

    #[test]
    fn level_is_longest_path_from_sources() {
        // 0 -> 1 -> 3, 0 -> 3: task 3 is at level 2 (longest path), not 1.
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(0), TaskId(3));
        b.add_edge(TaskId(0), TaskId(2));
        let levels = b.build().expect("DAG").levels();
        assert_eq!(levels.level_of(TaskId(3)), 2);
        assert_eq!(levels.level_of(TaskId(2)), 1);
    }

    #[test]
    fn empty_graph_has_no_levels() {
        let levels = TdgBuilder::new(0).build().expect("empty DAG").levels();
        assert_eq!(levels.depth(), 0);
        assert_eq!(levels.max_width(), 0);
        assert!(levels.order().is_empty());
    }

    #[test]
    fn edgeless_graph_is_one_wide_level() {
        let levels = TdgBuilder::new(5).build().expect("edgeless DAG").levels();
        assert_eq!(levels.depth(), 1);
        assert_eq!(levels.width(0), 5);
        assert_eq!(levels.tasks_at(0), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn chain_is_one_task_per_level() {
        let mut b = TdgBuilder::new(4);
        for i in 0..3u32 {
            b.add_edge(TaskId(i), TaskId(i + 1));
        }
        let levels = b.build().expect("chain DAG").levels();
        assert_eq!(levels.depth(), 4);
        for l in 0..4 {
            assert_eq!(levels.width(l), 1);
            assert_eq!(levels.tasks_at(l), &[l as u32]);
        }
    }

    #[test]
    fn iter_yields_every_level() {
        let levels = figure4().levels();
        let collected: Vec<Vec<u32>> = levels.iter().map(|s| s.to_vec()).collect();
        assert_eq!(collected, vec![vec![0, 2, 4], vec![1, 3, 5], vec![6]]);
    }

    #[test]
    fn order_is_topological() {
        let g = figure4();
        let levels = g.levels();
        let pos: std::collections::HashMap<u32, usize> = levels
            .order()
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        for (u, v) in g.edges() {
            assert!(pos[&u.0] < pos[&v.0], "edge {u}->{v} violates topo order");
        }
    }
}
