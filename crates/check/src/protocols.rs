//! Bounded model-check harnesses for the four lock-free scheduler
//! protocols, each stated as a small instance (2–3 threads, 2–4 units)
//! and explored to exhaustion by [`crate::model`].
//!
//! | harness | protocol (production site) | property |
//! |---|---|---|
//! | [`poison_publication`] | Release-before-decrement poison publication (`gpasta-sched::executor::run_stealing_recovering`) | poisoned set = exact forward closure of the failed unit; a poisoned unit never runs its payload |
//! | [`watchdog_claim`] | pending→stalled CAS claim (`gpasta-sched::bounded`) | a unit is claimed by at most one of worker/watchdog, and the winner's claim publishes its payload |
//! | [`cancel_generation`] | generation-counted `CancelToken` (`gpasta-tdg::cancel`), at the `u64` wrap boundary | cancellation latches per observer; a cancel consumed by run *k* never re-delivers to run *k+1* |
//! | [`slack_min`] | NaN-preserving `AtomicF32` slack-min (`gpasta-sta::atomic_f32`) | concurrent min-reduction is order-insensitive and NaN-preserving |
//!
//! The `hb:` tags on ordering sites here mirror the tags on the
//! production sites (see DESIGN.md §11), so the lint's pairing check ties
//! each production edge to the harness that covers it.
//!
//! # Mutation gate
//!
//! [`Mutation`] seeds two deliberate ordering downgrades (available only
//! under `cfg(test)`): the poison path's dependency-decrement `AcqRel` →
//! `Relaxed` (severing the release half of the handoff edge) and the
//! watchdog's claim-CAS success ordering `AcqRel` → `Relaxed` (severing
//! the claim's publication). Tests assert the explorer produces a
//! replayable counterexample for each — proof the checker has teeth.

use crate::model::sync::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, TrackedCell};
use crate::model::{check, count, explore, run_threads, Bounds, Report};
use crate::sync::Ordering;

/// Pinned bounds for the poison-publication harness (CI uses exactly
/// these; tests assert exhaustion under them).
pub const POISON_BOUNDS: Bounds = Bounds {
    max_schedules: 400_000,
    max_steps: 2_000,
    preemption_bound: None,
};

/// Pinned bounds for the watchdog-claim harness.
pub const WATCHDOG_BOUNDS: Bounds = Bounds {
    max_schedules: 400_000,
    max_steps: 2_000,
    preemption_bound: None,
};

/// Pinned bounds for the cancel-generation harness.
pub const CANCEL_BOUNDS: Bounds = Bounds {
    max_schedules: 400_000,
    max_steps: 2_000,
    preemption_bound: None,
};

/// Pinned bounds for the slack-min harness.
pub const SLACK_BOUNDS: Bounds = Bounds {
    max_schedules: 400_000,
    max_steps: 2_000,
    preemption_bound: None,
};

/// Seeded ordering weakenings for the mutation gate. The weakened
/// variants exist only under `cfg(test)`, so no non-test caller can
/// request them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The shipped protocol orderings.
    None,
    /// Downgrade the dependency-decrement `fetch_sub` in poison
    /// publication from `AcqRel` to `Relaxed`. This severs the release
    /// half of the `hb: dep-handoff` edge: the worker that performs the
    /// *last* decrement no longer observes the failed parent's
    /// `Release`-published poison flag, so a poisoned unit can run.
    #[cfg(test)]
    PoisonDecrementRelaxed,
    /// Downgrade the watchdog's pending→stalled claim-CAS *success*
    /// ordering from `AcqRel` to `Relaxed`. The claim still wins
    /// exclusively (CAS atomicity is ordering-independent) but no longer
    /// publishes the evidence written before it, so an observer that
    /// `Acquire`-loads the STALLED state races on the evidence cell.
    #[cfg(test)]
    WatchdogClaimRelaxed,
}

// ---------------------------------------------------------------------------
// 1. Poison publication
// ---------------------------------------------------------------------------

/// Bounded instance: units `0 → 2 ← 1`, `1 → 3`; unit 0 fails its payload.
/// The forward closure of 0 is exactly `{2}`: unit 2 must be poisoned and
/// skipped, units 1 and 3 must run normally.
struct PoisonInstance {
    poisoned: [AtomicBool; 4],
    dep2: AtomicU32,
    dep3: AtomicU32,
    result: [TrackedCell<u32>; 4],
    /// Which worker performed the final handoff to unit 2.
    unit2_runner: TrackedCell<u32>,
    dep_sub_ord: Ordering,
}

fn poison_succ(unit: usize) -> &'static [usize] {
    match unit {
        0 => &[2],
        1 => &[2, 3],
        _ => &[],
    }
}

impl PoisonInstance {
    /// Mirror of the executor's per-unit step: check poison, run payload,
    /// publish poison on failure, hand off dependents.
    fn exec(&self, unit: usize, worker: u32) {
        // hb: poison-publish
        let is_poisoned = self.poisoned[unit].load(Ordering::Acquire);
        if unit == 2 {
            self.unit2_runner.write(worker);
        }
        // Unit 0's payload fails; everything else succeeds when clean.
        let ok = !is_poisoned && unit != 0;
        if ok {
            if unit == 2 {
                // A unit's payload consumes its parents' outputs.
                let _ = self.result[1].read();
            }
            self.result[unit].write(100 + unit as u32);
        } else {
            for &s in poison_succ(unit) {
                // hb: poison-publish
                self.poisoned[s].store(true, Ordering::Release);
            }
        }
        for &s in poison_succ(unit) {
            let dep = if s == 2 { &self.dep2 } else { &self.dep3 };
            // The release half of `hb: dep-handoff` is what the
            // `PoisonDecrementRelaxed` mutation severs.
            if dep.fetch_sub(1, self.dep_sub_ord) == 1 {
                self.exec(s, worker);
            }
        }
    }
}

/// One execution of the poison-publication instance (call under
/// [`explore`]/[`crate::model::replay`]).
pub fn poison_once(mutation: Mutation) {
    let dep_sub_ord = match mutation {
        // hb: dep-handoff
        Mutation::None => Ordering::AcqRel,
        #[cfg(test)]
        Mutation::PoisonDecrementRelaxed => Ordering::Relaxed,
        #[cfg(test)]
        Mutation::WatchdogClaimRelaxed => Ordering::AcqRel,
    };
    let inst = PoisonInstance {
        poisoned: [
            AtomicBool::named("poisoned0", false),
            AtomicBool::named("poisoned1", false),
            AtomicBool::named("poisoned2", false),
            AtomicBool::named("poisoned3", false),
        ],
        dep2: AtomicU32::named("dep2", 2),
        dep3: AtomicU32::named("dep3", 1),
        result: [
            TrackedCell::named("result0", 0),
            TrackedCell::named("result1", 0),
            TrackedCell::named("result2", 0),
            TrackedCell::named("result3", 0),
        ],
        unit2_runner: TrackedCell::named("unit2_runner", u32::MAX),
        dep_sub_ord,
    };
    let r = &inst;
    run_threads(vec![
        Box::new(move || r.exec(0, 1)),
        Box::new(move || r.exec(1, 2)),
    ]);
    // Post-join (happens-after every worker op): the poison set must be
    // the exact forward closure of the failed unit.
    check(
        inst.poisoned[2].load(Ordering::Relaxed),
        "failed parent must poison its forward closure",
    );
    check(
        !inst.poisoned[1].load(Ordering::Relaxed) && !inst.poisoned[3].load(Ordering::Relaxed),
        "poison must not leak outside the forward closure",
    );
    check(
        inst.result[2].read() == 0,
        "poisoned unit must never run its payload",
    );
    check(
        inst.result[1].read() == 101 && inst.result[3].read() == 103,
        "unpoisoned units must run",
    );
    check(
        inst.dep2.load(Ordering::Relaxed) == 0 && inst.dep3.load(Ordering::Relaxed) == 0,
        "every dependency handoff must fire",
    );
    match inst.unit2_runner.read() {
        1 => count("unit2-handed-to-failing-worker"),
        2 => count("unit2-handed-to-clean-worker"),
        _ => count("unit2-never-reached"),
    }
}

/// Explore the poison-publication instance. With [`Mutation::None`] this
/// must be exhausted with zero violations; with the decrement mutation it
/// must produce a counterexample.
pub fn poison_publication(bounds: &Bounds, mutation: Mutation) -> Report {
    explore(bounds, || poison_once(mutation))
}

// ---------------------------------------------------------------------------
// 2. Watchdog stall claim
// ---------------------------------------------------------------------------

const PENDING: u8 = 0;
const DONE: u8 = 1;
const STALLED: u8 = 2;

/// One execution of the watchdog-claim instance: a worker runs the unit
/// and claims DONE, a watchdog that saw the in-flight beacon claims
/// STALLED, and an observer consumes whichever claim it sees.
pub fn watchdog_once(mutation: Mutation) {
    let (claim_ok, claim_err) = match mutation {
        // hb: unit-claim
        Mutation::None => (Ordering::AcqRel, Ordering::Acquire),
        #[cfg(test)]
        Mutation::WatchdogClaimRelaxed => (Ordering::Relaxed, Ordering::Relaxed),
        #[cfg(test)]
        Mutation::PoisonDecrementRelaxed => (Ordering::AcqRel, Ordering::Acquire),
    };
    let inflight = AtomicU32::named("inflight", 0);
    let state = AtomicU8::named("unit_state", PENDING);
    let result = TrackedCell::named("result", 0u32);
    let evidence = TrackedCell::named("evidence", 0u32);
    let observed = TrackedCell::named("observed", u8::MAX);
    let (fl, st, res, ev, obs) = (&inflight, &state, &result, &evidence, &observed);
    run_threads(vec![
        // Worker: announce, run, claim DONE.
        Box::new(move || {
            // hb: inflight-publish
            fl.store(1, Ordering::Release);
            res.write(42);
            // hb: unit-claim
            let _ = st.compare_exchange(PENDING, DONE, Ordering::AcqRel, Ordering::Acquire);
        }),
        // Watchdog: if the unit is visibly in flight, record evidence and
        // claim STALLED. The claim's success ordering is the mutation
        // point: it must publish the evidence.
        Box::new(move || {
            // hb: inflight-publish
            let beacon = fl.load(Ordering::Acquire);
            if beacon == 1 {
                ev.write(7);
                let _ = st.compare_exchange(PENDING, STALLED, claim_ok, claim_err);
            }
        }),
        // Observer: consume whichever claim is visible.
        Box::new(move || {
            // hb: unit-claim
            let s = st.load(Ordering::Acquire);
            obs.write(s);
            match s {
                DONE => check(
                    res.read() == 42,
                    "DONE claim must publish the unit's result",
                ),
                STALLED => {
                    check(
                        ev.read() == 7,
                        "STALLED claim must publish the watchdog's evidence",
                    );
                }
                _ => {}
            }
        }),
    ]);
    // CAS atomicity: the unit has exactly one owner, and the worker always
    // claims, so PENDING cannot survive.
    let final_state = state.load(Ordering::Relaxed);
    check(
        final_state != PENDING,
        "exactly one of worker/watchdog must claim the unit",
    );
    match final_state {
        DONE => count("worker-won"),
        _ => count("watchdog-won"),
    }
    match observed.read() {
        PENDING => count("observer-saw-pending"),
        DONE => count("observer-saw-done"),
        STALLED => count("observer-saw-stalled"),
        _ => count("observer-unreached"),
    }
}

/// Explore the watchdog-claim instance.
pub fn watchdog_claim(bounds: &Bounds, mutation: Mutation) -> Report {
    explore(bounds, || watchdog_once(mutation))
}

// ---------------------------------------------------------------------------
// 3. Cancel generations at the wrap boundary
// ---------------------------------------------------------------------------

/// One execution of the cancel-generation instance. The counter starts at
/// `u64::MAX` so the single concurrent cancel exercises the wraparound to
/// 0; observers compare generations by inequality, which survives the
/// wrap (an ABA collision would need 2^64 in-flight cancels).
pub fn cancel_once() {
    let generation = AtomicU64::named("generation", u64::MAX);
    let reason = TrackedCell::named("reason", 0u32);
    let run_k_saw = TrackedCell::named("run_k_saw", false);
    let (gen, why, saw) = (&generation, &reason, &run_k_saw);
    run_threads(vec![
        // Canceller: publish the reason, then bump the generation.
        Box::new(move || {
            why.write(9);
            // hb: cancel-gen
            gen.fetch_add(1, Ordering::Release);
        }),
        // Runner: run k observes at the wrap boundary, polls twice, then
        // run k+1 starts a fresh observation.
        Box::new(move || {
            // hb: cancel-gen
            let seen = gen.load(Ordering::Acquire);
            // hb: cancel-gen
            let c1 = gen.load(Ordering::Acquire) != seen;
            // hb: cancel-gen
            let c2 = gen.load(Ordering::Acquire) != seen;
            check(!c1 || c2, "cancellation must latch per observer");
            if c2 {
                // Delivered cancels may consume the canceller's payload.
                check(
                    why.read() == 9,
                    "a delivered cancel must publish its reason",
                );
            }
            saw.write(c2);
            // hb: cancel-gen
            let seen_next = gen.load(Ordering::Acquire);
            // hb: cancel-gen
            let c3 = gen.load(Ordering::Acquire) != seen_next;
            check(
                !(c2 && c3),
                "a cancel consumed by run k must not re-deliver to run k+1",
            );
        }),
    ]);
    check(
        generation.load(Ordering::Relaxed) == 0,
        "generation must wrap MAX -> 0",
    );
    // An observer created after the cancel settles starts clean.
    let seen = generation.load(Ordering::Relaxed);
    check(
        generation.load(Ordering::Relaxed) == seen,
        "post-run observer must start uncancelled",
    );
    if run_k_saw.read() {
        count("run-k-saw-cancel");
    } else {
        count("run-k-missed-cancel");
    }
}

/// Explore the cancel-generation instance.
pub fn cancel_generation(bounds: &Bounds) -> Report {
    explore(bounds, cancel_once)
}

// ---------------------------------------------------------------------------
// 4. NaN-preserving slack-min
// ---------------------------------------------------------------------------

fn nan_min(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else {
        a.min(b)
    }
}

/// Mirror of `gpasta_sta::AtomicF32::fetch_min_nan_preserving`: a CAS
/// loop over the bit representation. The reduction transfers only the
/// value itself (no payload), so `Relaxed` is correct — the harness
/// proves order-insensitivity rather than publication.
fn model_fetch_min(bits: &AtomicU32, value: f32) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let new = nan_min(f32::from_bits(cur), value).to_bits();
        if new == cur {
            return;
        }
        match bits.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// One execution of the slack-min instance: two threads fold `inputs`
/// into an accumulator seeded with `init`; every interleaving must end at
/// `expected` (bitwise, so NaN compares like any value).
pub fn slack_min_once(init: f32, inputs: [f32; 2], expected: f32) {
    let acc = AtomicU32::named("slack_bits", init.to_bits());
    let a = &acc;
    run_threads(vec![
        Box::new(move || model_fetch_min(a, inputs[0])),
        Box::new(move || model_fetch_min(a, inputs[1])),
    ]);
    let got = acc.load(Ordering::Relaxed);
    check(
        got == expected.to_bits(),
        "slack-min must be order-insensitive and NaN-preserving",
    );
}

/// Explore the slack-min instance for one input set.
pub fn slack_min(bounds: &Bounds, init: f32, inputs: [f32; 2], expected: f32) -> Report {
    explore(bounds, || slack_min_once(init, inputs, expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::replay;

    #[test]
    fn poison_protocol_exhaustive_no_violation() {
        let report = poison_publication(&POISON_BOUNDS, Mutation::None);
        assert!(
            report.violation.is_none(),
            "unexpected violation:\n{}",
            report.violation.unwrap()
        );
        assert!(report.exhausted, "must drain the DFS frontier");
        // Both workers must receive the final unit-2 handoff in some
        // schedule — otherwise the instance never exercised the
        // cross-thread half of the dep-handoff edge.
        assert!(
            report
                .counters
                .contains_key("unit2-handed-to-failing-worker"),
            "handoff coverage: {:?}",
            report.counters
        );
        assert!(
            report.counters.contains_key("unit2-handed-to-clean-worker"),
            "handoff coverage: {:?}",
            report.counters
        );
    }

    #[test]
    fn poison_decrement_mutation_caught_with_replayable_trace() {
        let report = poison_publication(&POISON_BOUNDS, Mutation::PoisonDecrementRelaxed);
        let v = report
            .violation
            .expect("Relaxed dep-decrement must yield a counterexample");
        assert!(!v.trace.is_empty(), "counterexample carries a trace");
        let replayed = replay(&v.decisions, || {
            poison_once(Mutation::PoisonDecrementRelaxed)
        });
        let rv = replayed.violation.expect("replay reproduces the violation");
        assert_eq!(rv.message, v.message, "replay is deterministic");
    }

    #[test]
    fn watchdog_protocol_exhaustive_no_violation() {
        let report = watchdog_claim(&WATCHDOG_BOUNDS, Mutation::None);
        assert!(
            report.violation.is_none(),
            "unexpected violation:\n{}",
            report.violation.unwrap()
        );
        assert!(report.exhausted, "must drain the DFS frontier");
        // Exploration must reach both claim outcomes and an observer that
        // actually saw the stalled claim.
        assert!(
            report.counters.contains_key("worker-won"),
            "{:?}",
            report.counters
        );
        assert!(
            report.counters.contains_key("watchdog-won"),
            "{:?}",
            report.counters
        );
        assert!(
            report.counters.contains_key("observer-saw-stalled"),
            "{:?}",
            report.counters
        );
    }

    #[test]
    fn watchdog_claim_mutation_caught_with_replayable_trace() {
        let report = watchdog_claim(&WATCHDOG_BOUNDS, Mutation::WatchdogClaimRelaxed);
        let v = report
            .violation
            .expect("Relaxed claim-CAS success ordering must yield a counterexample");
        assert!(
            v.message.contains("evidence") || v.message.contains("data race"),
            "counterexample should implicate the unpublished evidence: {}",
            v.message
        );
        let replayed = replay(&v.decisions, || {
            watchdog_once(Mutation::WatchdogClaimRelaxed)
        });
        let rv = replayed.violation.expect("replay reproduces the violation");
        assert_eq!(rv.message, v.message, "replay is deterministic");
    }

    #[test]
    fn cancel_generation_wrap_exhaustive_no_violation() {
        let report = cancel_generation(&CANCEL_BOUNDS);
        assert!(
            report.violation.is_none(),
            "unexpected violation:\n{}",
            report.violation.unwrap()
        );
        assert!(report.exhausted, "must drain the DFS frontier");
        // Both delivery outcomes must be reached: run k seeing the cancel
        // and run k missing it (cancel lands in a later run's window).
        assert!(
            report.counters.contains_key("run-k-saw-cancel"),
            "{:?}",
            report.counters
        );
        assert!(
            report.counters.contains_key("run-k-missed-cancel"),
            "{:?}",
            report.counters
        );
    }

    #[test]
    fn slack_min_plain_values_order_insensitive() {
        let report = slack_min(&SLACK_BOUNDS, 5.0, [3.5, 7.0], 3.5);
        assert!(
            report.violation.is_none(),
            "unexpected violation:\n{}",
            report.violation.unwrap()
        );
        assert!(report.exhausted);
    }

    #[test]
    fn slack_min_nan_preserving_in_every_interleaving() {
        let report = slack_min(&SLACK_BOUNDS, 5.0, [3.5, f32::NAN], f32::NAN);
        assert!(
            report.violation.is_none(),
            "unexpected violation:\n{}",
            report.violation.unwrap()
        );
        assert!(report.exhausted);
    }
}
