//! The G-PASTA synchronisation shim.
//!
//! Workspace crates import atomics, fences, and mutexes from here instead
//! of `std::sync::atomic` / `parking_lot` directly (enforced by
//! `gpasta-check-lint`). In a normal build this module is nothing but
//! re-exports — zero cost, identical codegen. Under `--cfg
//! gpasta_model_check` (e.g. `RUSTFLAGS="--cfg gpasta_model_check" cargo
//! test -p gpasta-check`) the same names resolve to the model checker's
//! instrumented types, so protocol code can be explored without edits.
//!
//! The surface is deliberately the *intersection* the workspace uses:
//! `AtomicBool`/`AtomicU8`/`AtomicU32`/`AtomicU64`/`AtomicUsize`,
//! `Ordering`, `fence`, and a `parking_lot`-flavoured `Mutex` (no
//! poisoning; `lock()` returns the guard directly).

#[cfg(not(gpasta_model_check))]
mod imp {
    pub use parking_lot::{Mutex, MutexGuard};
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

#[cfg(gpasta_model_check)]
mod imp {
    pub use crate::model::sync::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Mutex, MutexGuard,
    };
    pub use std::sync::atomic::Ordering;
}

pub use imp::*;
