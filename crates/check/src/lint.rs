//! Token-level source lint enforcing the workspace's atomic-ordering and
//! panic-path discipline (no `syn`, no external deps — a line scanner with
//! a small string/comment masking state machine).
//!
//! Rules (all errors; CI runs warnings-as-errors):
//!
//! 1. **`raw-atomic`** — `std::sync::atomic` / `core::sync::atomic` may be
//!    referenced only inside the `gpasta_check::sync` shim and the model
//!    checker itself. Everything else imports from `gpasta_check::sync`,
//!    so the whole workspace can be re-routed into the model checker.
//! 2. **`seqcst`** — `Ordering::SeqCst` is forbidden unless the site (or a
//!    comment within the 3 lines above) carries `// seqcst-ok: <reason>`.
//!    SeqCst is almost always either unnecessary or papering over an
//!    unarticulated protocol; the tag forces the articulation.
//! 3. **`hb-tag`** — every `Release` / `Acquire` / `AcqRel` ordering site
//!    must carry a `// hb: <tag>` pairing label (same line or up to 3
//!    lines above). Across the workspace each tag must have both halves:
//!    at least one release-side site (`Release`/`AcqRel`) and at least one
//!    acquire-side site (`Acquire`/`AcqRel`). A dangling half means a
//!    publish nobody observes or an observe nobody publishes — exactly the
//!    shape of bug the model checker hunts. DESIGN.md §11 documents the
//!    contract behind every tag.
//! 4. **`panic-path`** — `.unwrap()` / `.expect(` on non-test paths of
//!    library crates must appear in `lint-allowlist.txt` with an **exact**
//!    per-file count and a reason. More sites than allowed fails; fewer
//!    also fails (stale entry), keeping the allowlist exhaustive.
//!
//! Test code (`#[cfg(test)]` items, `tests/`, `benches/`), `vendor/`, and
//! doc comments are excluded. Strings and comments are masked before
//! matching, so a pattern inside a string literal or doc example never
//! fires.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Result of linting a tree.
#[derive(Debug)]
pub struct LintReport {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
}

/// A source line split into masked code and extracted comment text.
#[derive(Debug, Default, Clone)]
struct MaskedLine {
    /// Code with string/char-literal contents and comments blanked.
    code: String,
    /// Concatenated comment text on this line (line + block comments).
    comment: String,
    /// Inside a `#[cfg(test)]` item.
    in_test: bool,
}

/// Split source into per-line masked code + comment text, tracking string
/// literals, char literals, and (nested) block comments.
fn mask_source(source: &str) -> Vec<MaskedLine> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Normal,
        Str,
        RawStr(usize),
        BlockComment(usize),
        LineComment,
    }

    let mut lines: Vec<MaskedLine> = Vec::new();
    let mut cur = MaskedLine::default();
    let mut state = State::Normal;
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Normal => match c {
                '/' if bytes.get(i + 1) == Some(&'/') => {
                    state = State::LineComment;
                    cur.code.push(' ');
                    i += 2;
                }
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    state = State::BlockComment(1);
                    cur.code.push(' ');
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    cur.code.push('"');
                    i += 1;
                }
                'r' | 'b'
                    if {
                        // r"..." / r#"..."# / br"..." raw string heads.
                        let mut j = i;
                        if bytes[j] == 'b' && bytes.get(j + 1) == Some(&'r') {
                            j += 1;
                        }
                        bytes[j] == 'r' && {
                            let mut k = j + 1;
                            while bytes.get(k) == Some(&'#') {
                                k += 1;
                            }
                            bytes.get(k) == Some(&'"')
                        }
                    } =>
                {
                    let mut j = i;
                    if bytes[j] == 'b' {
                        cur.code.push('b');
                        j += 1;
                    }
                    cur.code.push('r');
                    j += 1;
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        cur.code.push('#');
                        j += 1;
                    }
                    cur.code.push('"');
                    state = State::RawStr(hashes);
                    i = j + 1;
                }
                'b' if bytes.get(i + 1) == Some(&'"') => {
                    cur.code.push('b');
                    cur.code.push('"');
                    state = State::Str;
                    i += 2;
                }
                '\'' => {
                    // Char literal vs lifetime: look ahead for a closing
                    // quote one (or one escaped) char away.
                    if bytes.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: skip to closing quote.
                        cur.code.push('\'');
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] != '\'' && bytes[j] != '\n' {
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'\'') {
                            cur.code.push('\'');
                            i = j + 1;
                        } else {
                            i += 1;
                        }
                    } else if bytes.get(i + 2) == Some(&'\'') {
                        cur.code.push('\'');
                        cur.code.push(' ');
                        cur.code.push('\'');
                        i += 3;
                    } else {
                        // Lifetime.
                        cur.code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    cur.code.push(c);
                    i += 1;
                }
            },
            State::Str => match c {
                '\\' => {
                    i += 2;
                }
                '"' => {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut k = i + 1;
                    let mut seen = 0;
                    while seen < hashes && bytes.get(k) == Some(&'#') {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        cur.code.push('"');
                        for _ in 0..hashes {
                            cur.code.push('#');
                        }
                        state = State::Normal;
                        i = k;
                        continue;
                    }
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        state = State::Normal;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Mark lines belonging to `#[cfg(test)]` items by brace counting from the
/// attribute to the end of the following item.
fn mark_test_regions(lines: &mut [MaskedLine]) {
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Find the item's opening brace, then its matching close.
            let mut depth = 0usize;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                lines[j].in_test = true;
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                        }
                        _ => {}
                    }
                }
                if opened && depth == 0 {
                    break;
                }
                // Attribute on a braceless item (e.g. `#[cfg(test)] use ..;`).
                if !opened && lines[j].code.contains(';') {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// An `hb:`-tagged ordering site, classified by which halves of the edge
/// it carries.
#[derive(Debug, Default, Clone)]
struct TagUse {
    release_sites: Vec<(String, usize)>,
    acquire_sites: Vec<(String, usize)>,
}

/// One allowlist entry: exact expected counts for a file.
#[derive(Debug, Clone)]
struct AllowEntry {
    unwraps: usize,
    expects: usize,
    line: usize,
    used: bool,
}

fn parse_allowlist(
    text: &str,
    diagnostics: &mut Vec<Diagnostic>,
    list_path: &str,
) -> BTreeMap<String, AllowEntry> {
    let mut map = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (spec, reason) = match line.split_once('#') {
            Some((s, r)) => (s.trim(), r.trim()),
            None => (line, ""),
        };
        if reason.is_empty() {
            diagnostics.push(Diagnostic {
                path: list_path.to_string(),
                line: line_no,
                rule: "panic-path",
                message: format!("allowlist entry needs a `# reason`: {line}"),
            });
            continue;
        }
        let mut parts = spec.split_whitespace();
        let Some(path) = parts.next() else { continue };
        let mut entry = AllowEntry {
            unwraps: 0,
            expects: 0,
            line: line_no,
            used: false,
        };
        let mut ok = true;
        for field in parts {
            match field.split_once('=') {
                Some(("unwrap", n)) => entry.unwraps = n.parse().unwrap_or(usize::MAX),
                Some(("expect", n)) => entry.expects = n.parse().unwrap_or(usize::MAX),
                _ => {
                    diagnostics.push(Diagnostic {
                        path: list_path.to_string(),
                        line: line_no,
                        rule: "panic-path",
                        message: format!("unknown allowlist field `{field}`"),
                    });
                    ok = false;
                }
            }
        }
        if ok {
            map.insert(path.to_string(), entry);
        }
    }
    map
}

fn count_occurrences(haystack: &str, needle: &str) -> usize {
    haystack.matches(needle).count()
}

/// Paths exempt from the `raw-atomic`, `seqcst`, and `hb-tag` rules: the
/// shim and the model checker are where raw atomics and ordering tokens
/// legitimately live.
fn is_shim_path(rel: &str) -> bool {
    rel == "crates/check/src/sync.rs" || rel.starts_with("crates/check/src/model/")
}

/// Library (non-test, non-bin, non-bench) paths subject to the
/// `panic-path` rule.
fn is_panic_path_scope(rel: &str) -> bool {
    let in_crates_lib = rel.starts_with("crates/")
        && rel.contains("/src/")
        && !rel.starts_with("crates/bench/")
        && !rel.contains("/src/bin/");
    let in_root_lib = rel.starts_with("src/") && !rel.starts_with("src/bin/");
    in_crates_lib || in_root_lib
}

/// Comments eligible to tag line `idx`, nearest first (same line, then up
/// to 3 lines above) — so when two tagged sites sit close together, each
/// ordering associates with its own tag, not its neighbour's.
fn comment_window(lines: &[MaskedLine], idx: usize) -> impl Iterator<Item = &str> {
    let lo = idx.saturating_sub(3);
    lines[lo..=idx].iter().rev().map(|l| l.comment.as_str())
}

fn extract_hb_tag(comment: &str) -> Option<String> {
    let pos = comment.find("hb:")?;
    let rest = &comment[pos + 3..];
    let tag: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
        .collect();
    if tag.is_empty() {
        None
    } else {
        Some(tag)
    }
}

/// Lint a single file's source. `rel` is the repo-relative path used in
/// diagnostics and allowlist keys. Returns per-file diagnostics and
/// appends this file's `hb:` tag uses to `tags`.
fn lint_source(
    rel: &str,
    source: &str,
    tags: &mut BTreeMap<String, TagUse>,
    panic_counts: &mut BTreeMap<String, (usize, usize)>,
) -> Vec<Diagnostic> {
    let mut lines = mask_source(source);
    mark_test_regions(&mut lines);
    let mut out = Vec::new();
    let shim = is_shim_path(rel);
    let mut unwraps = 0usize;
    let mut expects = 0usize;

    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let line_no = idx + 1;

        if !shim {
            if code.contains("std::sync::atomic") || code.contains("core::sync::atomic") {
                out.push(Diagnostic {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "raw-atomic",
                    message: "raw atomic import/path outside the gpasta_check::sync shim \
                              — import from gpasta_check::sync instead"
                        .to_string(),
                });
            }

            let has_seqcst = code.contains("SeqCst");
            let has_release =
                code.contains("Ordering::Release") || code.contains("Ordering::AcqRel");
            let has_acquire =
                code.contains("Ordering::Acquire") || code.contains("Ordering::AcqRel");

            if has_seqcst {
                let tagged = comment_window(&lines, idx).any(|c| c.contains("seqcst-ok:"));
                if !tagged {
                    out.push(Diagnostic {
                        path: rel.to_string(),
                        line: line_no,
                        rule: "seqcst",
                        message: "Ordering::SeqCst without a `// seqcst-ok: <reason>` tag \
                                  — state the protocol or weaken the ordering"
                            .to_string(),
                    });
                }
            } else if has_release || has_acquire {
                let tag = comment_window(&lines, idx).find_map(extract_hb_tag);
                match tag {
                    Some(tag) => {
                        let entry = tags.entry(tag).or_default();
                        if has_release {
                            entry.release_sites.push((rel.to_string(), line_no));
                        }
                        if has_acquire {
                            entry.acquire_sites.push((rel.to_string(), line_no));
                        }
                    }
                    None => {
                        out.push(Diagnostic {
                            path: rel.to_string(),
                            line: line_no,
                            rule: "hb-tag",
                            message: "Release/Acquire ordering without a `// hb: <tag>` \
                                      pairing label (same line or \u{2264}3 lines above)"
                                .to_string(),
                        });
                    }
                }
            }
        }

        if is_panic_path_scope(rel) {
            unwraps += count_occurrences(code, ".unwrap()");
            expects += count_occurrences(code, ".expect(");
        }
    }

    if is_panic_path_scope(rel) && (unwraps > 0 || expects > 0) {
        panic_counts.insert(rel.to_string(), (unwraps, expects));
    }
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | "vendor" | ".git" | "tests" | "benches" | "examples"
            ) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the workspace rooted at `root` (scans `crates/*/src` and `src/`,
/// honouring `lint-allowlist.txt` at the root).
pub fn run(root: &Path) -> Result<LintReport, String> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut diagnostics = Vec::new();
    let allowlist_path = root.join("lint-allowlist.txt");
    let mut allowlist = if allowlist_path.is_file() {
        let text = std::fs::read_to_string(&allowlist_path)
            .map_err(|e| format!("read {}: {e}", allowlist_path.display()))?;
        parse_allowlist(&text, &mut diagnostics, "lint-allowlist.txt")
    } else {
        BTreeMap::new()
    };

    let mut tags: BTreeMap<String, TagUse> = BTreeMap::new();
    let mut panic_counts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        diagnostics.extend(lint_source(&rel, &source, &mut tags, &mut panic_counts));
    }

    // Cross-check hb tags: each needs both halves somewhere in the tree.
    for (tag, uses) in &tags {
        if uses.release_sites.is_empty() {
            let (path, line) = uses.acquire_sites[0].clone();
            diagnostics.push(Diagnostic {
                path,
                line,
                rule: "hb-tag",
                message: format!(
                    "hb tag `{tag}` has acquire site(s) but no release half anywhere \
                     — observing a publish that never happens?"
                ),
            });
        }
        if uses.acquire_sites.is_empty() {
            let (path, line) = uses.release_sites[0].clone();
            diagnostics.push(Diagnostic {
                path,
                line,
                rule: "hb-tag",
                message: format!(
                    "hb tag `{tag}` has release site(s) but no acquire half anywhere \
                     — publishing something nobody observes?"
                ),
            });
        }
    }

    // Reconcile panic counts against the allowlist, both directions.
    for (rel, (unwraps, expects)) in &panic_counts {
        match allowlist.get_mut(rel) {
            Some(entry) => {
                entry.used = true;
                if *unwraps != entry.unwraps || *expects != entry.expects {
                    diagnostics.push(Diagnostic {
                        path: rel.clone(),
                        line: 0,
                        rule: "panic-path",
                        message: format!(
                            "unwrap/expect count drifted from allowlist: found \
                             unwrap={unwraps} expect={expects}, allowed unwrap={} expect={} \
                             — fix the sites or update lint-allowlist.txt with a reason",
                            entry.unwraps, entry.expects
                        ),
                    });
                }
            }
            None => {
                diagnostics.push(Diagnostic {
                    path: rel.clone(),
                    line: 0,
                    rule: "panic-path",
                    message: format!(
                        "unwrap={unwraps} expect={expects} on a non-test library path \
                         with no lint-allowlist.txt entry — convert to typed errors or \
                         allowlist with a reason"
                    ),
                });
            }
        }
    }
    for (rel, entry) in &allowlist {
        if !entry.used {
            diagnostics.push(Diagnostic {
                path: "lint-allowlist.txt".to_string(),
                line: entry.line,
                rule: "panic-path",
                message: format!("stale allowlist entry for `{rel}` (file clean or missing)"),
            });
        }
    }

    Ok(LintReport {
        files_scanned: files.len(),
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(rel: &str, src: &str) -> Vec<Diagnostic> {
        let mut tags = BTreeMap::new();
        let mut counts = BTreeMap::new();
        lint_source(rel, src, &mut tags, &mut counts)
    }

    #[test]
    fn raw_atomic_flagged_outside_shim() {
        let d = lint_one(
            "crates/sched/src/executor.rs",
            "use std::sync::atomic::AtomicU32;\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "raw-atomic");
    }

    #[test]
    fn raw_atomic_ok_in_shim_and_model() {
        assert!(lint_one(
            "crates/check/src/sync.rs",
            "pub use std::sync::atomic::AtomicU32;\n"
        )
        .is_empty());
        assert!(lint_one(
            "crates/check/src/model/sync.rs",
            "use std::sync::atomic::Ordering;\n"
        )
        .is_empty());
    }

    #[test]
    fn raw_atomic_in_comment_or_string_ignored() {
        let src = "// example: use std::sync::atomic::AtomicU32;\nlet s = \"std::sync::atomic\";\n";
        assert!(lint_one("crates/sched/src/lib.rs", src).is_empty());
    }

    #[test]
    fn seqcst_requires_tag() {
        let bad = "x.store(1, Ordering::SeqCst);\n";
        let d = lint_one("crates/sched/src/executor.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "seqcst");

        let good = "// seqcst-ok: total order with the flux capacitor\n\
                    x.store(1, Ordering::SeqCst);\n";
        assert!(lint_one("crates/sched/src/executor.rs", good).is_empty());
    }

    #[test]
    fn hb_tag_required_and_recorded() {
        let bad = "x.store(1, Ordering::Release);\n";
        let d = lint_one("crates/sched/src/executor.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "hb-tag");

        let mut tags = BTreeMap::new();
        let mut counts = BTreeMap::new();
        let good = "// hb: poison-publish\n\
                    x.store(1, Ordering::Release);\n\
                    let v = x.load(Ordering::Acquire); // hb: poison-publish\n";
        let d = lint_source("crates/sched/src/executor.rs", good, &mut tags, &mut counts);
        assert!(d.is_empty(), "{d:?}");
        let t = &tags["poison-publish"];
        assert_eq!(t.release_sites.len(), 1);
        assert_eq!(t.acquire_sites.len(), 1);
    }

    #[test]
    fn relaxed_needs_no_tag() {
        assert!(lint_one(
            "crates/sched/src/executor.rs",
            "x.fetch_add(1, Ordering::Relaxed);\n"
        )
        .is_empty());
    }

    #[test]
    fn cfg_test_region_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicU64;\n    \
                   fn f() { x.unwrap(); y.store(1, Ordering::SeqCst); }\n}\n";
        assert!(lint_one("crates/sched/src/executor.rs", src).is_empty());
    }

    #[test]
    fn unwrap_counted_on_library_paths() {
        let mut tags = BTreeMap::new();
        let mut counts = BTreeMap::new();
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); c.unwrap_or(0); }\n";
        let d = lint_source("crates/sta/src/verilog.rs", src, &mut tags, &mut counts);
        assert!(d.is_empty());
        assert_eq!(counts["crates/sta/src/verilog.rs"], (1, 1));
    }

    #[test]
    fn bins_and_bench_exempt_from_panic_rule() {
        let mut tags = BTreeMap::new();
        let mut counts = BTreeMap::new();
        let src = "fn main() { a.unwrap(); }\n";
        lint_source("crates/check/src/bin/lint.rs", src, &mut tags, &mut counts);
        lint_source("crates/bench/src/lib.rs", src, &mut tags, &mut counts);
        assert!(counts.is_empty());
    }

    #[test]
    fn allowlist_parses_and_requires_reason() {
        let mut diags = Vec::new();
        let map = parse_allowlist(
            "# comment\n\
             crates/sta/src/verilog.rs expect=2 # netlist invariant\n\
             crates/x/src/y.rs unwrap=1\n",
            &mut diags,
            "lint-allowlist.txt",
        );
        assert_eq!(map.len(), 1);
        assert_eq!(map["crates/sta/src/verilog.rs"].expects, 2);
        assert_eq!(diags.len(), 1, "entry without reason rejected");
    }

    #[test]
    fn raw_string_masking() {
        let src = "let s = r#\"std::sync::atomic SeqCst .unwrap()\"#;\n";
        assert!(lint_one("crates/sched/src/lib.rs", src).is_empty());
    }

    #[test]
    fn char_literal_and_lifetime_do_not_break_masking() {
        let src = "fn f<'a>(c: char) -> bool { c == '\"' }\n\
                   use std::sync::atomic::AtomicU8;\n";
        let d = lint_one("crates/sched/src/lib.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "raw-atomic");
    }
}
