//! An in-tree exhaustive interleaving explorer — a "mini-loom" for the
//! repo's hand-rolled lock-free protocols.
//!
//! # What it does
//!
//! [`explore`] runs a closure (the *harness body*) once per schedule,
//! enumerating by depth-first search every way the bounded instance can
//! execute:
//!
//! * **Thread interleavings.** Inside the body, [`run_threads`] executes a
//!   fixed set of virtual threads under a turn-taking scheduler: exactly one
//!   thread runs at a time and yields at every synchronisation operation
//!   (atomic access, mutex op, tracked-cell access). At each yield the
//!   scheduler's pick of the next runnable thread is a DFS decision point,
//!   optionally pruned by a *preemption bound* (iterative context bounding:
//!   schedules with more than `preemption_bound` switches away from a
//!   still-runnable thread are not explored).
//! * **Weak-memory value choices.** Atomic loads do not simply return the
//!   latest store. Each atomic location keeps its full modification order;
//!   each thread keeps a *view* (a per-location floor into that order) plus
//!   a happens-before vector clock. `Release` stores attach a message
//!   (view + clock) to the store; `Acquire` loads that read such a store
//!   merge the message. A load may read **any** store at or above the
//!   thread's floor — which store it reads is another DFS decision point.
//!   A `Relaxed` load the algorithm relies on for ordering therefore shows
//!   up concretely: some schedule reads the stale value and an assertion or
//!   race check fails, with a replayable trace.
//! * **Race detection on plain data.** [`sync::TrackedCell`] models
//!   non-atomic shared memory. Accesses are checked against the vector
//!   clocks: an unordered write/write or read/write pair is reported as a
//!   data race even if the explored schedule happened to execute them in a
//!   benign order.
//!
//! # Model simplifications (documented, deliberate)
//!
//! * Stores append to a single total modification order per location
//!   (no store-store reordering), as in loom.
//! * RMW operations always read the latest store (true of hardware RMWs;
//!   C11 additionally lets *failed* CAS loads read older values — we do
//!   not model that).
//! * `compare_exchange_weak` never fails spuriously.
//! * `SeqCst` is modelled as `AcqRel` plus merging through one global
//!   view — slightly stronger than C11's SC order. The workspace lint
//!   bans `SeqCst` anyway, so nothing in-tree depends on the difference.
//! * Fences merge through the same global view (over-synchronises;
//!   harnesses must not rely on fence-based protocols).
//!
//! Exploration is *exhaustive relative to the pinned bounds* in
//! [`Bounds`]: every schedule within the preemption bound and schedule cap
//! is visited, and [`Report::exhausted`] says whether the DFS frontier was
//! fully drained.
//!
//! # Replay
//!
//! Every violation carries the decision script that produced it;
//! [`replay`] re-executes exactly that schedule, so a counterexample is a
//! reproducible artifact, not a flaky observation.

pub mod sync;

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Sentinel panic payload used to unwind virtual threads on abort. Caught
/// and swallowed by the explorer; never escapes to the caller.
struct ModelAbort;

/// Exploration bounds. Exploration is exhaustive *relative to these*: the
/// report says whether the DFS drained within them.
#[derive(Debug, Clone)]
pub struct Bounds {
    /// Hard cap on explored schedules; hitting it clears
    /// [`Report::exhausted`].
    pub max_schedules: u64,
    /// Per-schedule step cap. Exceeding it is reported as a violation
    /// (`step bound exceeded`) — harness bodies must not contain unbounded
    /// spin loops.
    pub max_steps: u32,
    /// Iterative context bounding: maximum number of switches away from a
    /// still-runnable thread per schedule. `None` explores all
    /// interleavings.
    pub preemption_bound: Option<u32>,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_schedules: 1_000_000,
            max_steps: 10_000,
            preemption_bound: None,
        }
    }
}

/// A counterexample: the failed property plus the exact schedule that
/// produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What failed (assertion text, race description, or deadlock).
    pub message: String,
    /// The decision script; feed to [`replay`] to reproduce.
    pub decisions: Vec<u32>,
    /// Human-readable event log of the failing schedule.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {}", self.message)?;
        writeln!(f, "decisions: {:?}", self.decisions)?;
        writeln!(f, "trace:")?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Result of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: u64,
    /// Whether the DFS frontier was fully drained within the bounds (always
    /// `false` when a violation was found — exploration stops at the first
    /// counterexample).
    pub exhausted: bool,
    /// First counterexample found, if any.
    pub violation: Option<Violation>,
    /// Harness coverage counters (see [`count`]), aggregated over all
    /// schedules — lets tests assert that exploration actually reached both
    /// sides of a branch.
    pub counters: BTreeMap<&'static str, u64>,
}

/// One recorded DFS decision.
#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: u32,
    options: u32,
}

/// Virtual thread run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked,
    Finished,
}

/// A release message: the publishing thread's view + vector clock at the
/// store.
#[derive(Debug, Clone, Default)]
struct Msg {
    view: Vec<u32>,
    vc: Vec<u64>,
}

fn merge_view(dst: &mut Vec<u32>, src: &[u32]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (*d).max(s);
    }
}

fn merge_vc(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (*d).max(s);
    }
}

#[derive(Debug, Clone)]
struct StoreRec {
    value: u64,
    msg: Option<Msg>,
}

#[derive(Debug, Clone, Copy)]
struct Access {
    thread: usize,
    stamp: u64,
}

#[derive(Debug)]
enum Location {
    Atomic {
        name: &'static str,
        stores: Vec<StoreRec>,
    },
    Mutex {
        name: &'static str,
        locked_by: Option<usize>,
        last_msg: Option<Msg>,
    },
    Plain {
        name: &'static str,
        last_write: Option<Access>,
        reads: Vec<Access>,
    },
}

#[derive(Debug)]
struct ThreadState {
    view: Vec<u32>,
    vc: Vec<u64>,
    status: Status,
}

/// Shared exploration state: one instance per [`explore`] call, reset
/// between schedules.
struct Shared {
    // --- per-exploration ---
    script: Vec<u32>,
    counters: BTreeMap<&'static str, u64>,
    max_steps: u32,
    preemption_bound: Option<u32>,
    // --- per-schedule ---
    cursor: usize,
    decisions: Vec<Decision>,
    locations: Vec<Location>,
    threads: Vec<ThreadState>,
    active: Option<usize>,
    prev_active: Option<usize>,
    preemptions: u32,
    in_run: bool,
    steps: u32,
    trace: Vec<String>,
    violation: Option<String>,
    abort: bool,
    /// Global SC view: `SeqCst` operations (and fences) merge through this,
    /// modelling SC as AcqRel-plus-total-order (slightly stronger than C11).
    sc: Msg,
}

impl Shared {
    fn reset_schedule(&mut self, script: Vec<u32>) {
        self.script = script;
        self.cursor = 0;
        self.decisions.clear();
        self.locations.clear();
        self.threads.clear();
        self.threads.push(ThreadState {
            view: Vec::new(),
            vc: vec![0],
            status: Status::Runnable,
        });
        self.active = None;
        self.prev_active = None;
        self.preemptions = 0;
        self.in_run = false;
        self.steps = 0;
        self.trace.clear();
        self.violation = None;
        self.abort = false;
        self.sc = Msg::default();
    }

    /// Resolve one DFS decision point with `options` alternatives. Single-
    /// option points are not recorded (they cannot branch).
    fn choose(&mut self, options: usize) -> usize {
        debug_assert!(options >= 1);
        if options == 1 {
            return 0;
        }
        let mut idx = if self.cursor < self.script.len() {
            self.script[self.cursor] as usize
        } else {
            0
        };
        if idx >= options {
            // Only reachable via `replay` with a script that does not match
            // the body; surface it as a violation rather than a panic (a
            // panic here would unwind while holding the explorer lock).
            self.violate(format!(
                "replay script mismatch: decision {} chose {idx} of {options} options",
                self.cursor
            ));
            idx = 0;
        }
        self.cursor += 1;
        self.decisions.push(Decision {
            chosen: idx as u32,
            options: options as u32,
        });
        idx
    }

    fn violate(&mut self, message: String) {
        if self.violation.is_none() {
            self.trace.push(format!("!! {message}"));
            self.violation = Some(message);
        }
        self.abort = true;
    }
}

struct Exploration {
    shared: Mutex<Shared>,
    cv: Condvar,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Exploration>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn ctx() -> (Arc<Exploration>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("model sync primitive used outside explore()/replay()")
    })
}

struct CtxGuard;

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| *c.borrow_mut() = None);
    }
}

fn set_ctx(e: Arc<Exploration>, vtid: usize) -> CtxGuard {
    CTX.with(|c| *c.borrow_mut() = Some((e, vtid)));
    CtxGuard
}

impl Exploration {
    /// Take the global explorer lock, tolerating poisoning: a panicking
    /// virtual thread must surface as one recorded violation, not cascade
    /// a `PoisonError` into every later lock site and wedge the scope join.
    fn lock(&self) -> MutexGuard<'_, Shared> {
        self.shared.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Poison-tolerant condvar wait (see [`Self::lock`]).
    fn wait<'a>(&self, guard: MutexGuard<'a, Shared>) -> MutexGuard<'a, Shared> {
        self.cv.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Run one synchronisation operation for virtual thread `me`: wait for
    /// the turn token, apply `f` under the global lock, release the token.
    fn sync_op<R>(&self, me: usize, f: impl FnOnce(&mut Shared, usize) -> R) -> R {
        let mut shared = self.lock();
        while shared.in_run && shared.active != Some(me) && !shared.abort {
            shared = self.wait(shared);
        }
        if shared.abort {
            drop(shared);
            std::panic::panic_any(ModelAbort);
        }
        shared.steps += 1;
        if shared.steps > shared.max_steps {
            shared.violate("step bound exceeded — unbounded loop in the harness body?".to_string());
        }
        let r = f(&mut shared, me);
        let aborted = shared.abort;
        if shared.active == Some(me) {
            shared.active = None;
        }
        drop(shared);
        self.cv.notify_all();
        if aborted {
            std::panic::panic_any(ModelAbort);
        }
        r
    }

    /// [`Self::sync_op`] for destructors: still turn-gated (so unwinding
    /// from a genuine panic keeps the schedule deterministic) but never
    /// raises [`ModelAbort`] — a panic from a `Drop` impl that runs during
    /// unwinding is a double panic and an immediate process abort. On abort
    /// the operation is skipped; post-abort model state does not matter.
    fn sync_op_in_drop(&self, me: usize, f: impl FnOnce(&mut Shared, usize)) {
        let mut shared = self.lock();
        while shared.in_run && shared.active != Some(me) && !shared.abort {
            shared = self.wait(shared);
        }
        if !shared.abort {
            shared.steps += 1;
            if shared.steps > shared.max_steps {
                shared.violate(
                    "step bound exceeded — unbounded loop in the harness body?".to_string(),
                );
            } else {
                f(&mut shared, me);
            }
        }
        if shared.active == Some(me) {
            shared.active = None;
        }
        drop(shared);
        self.cv.notify_all();
    }

    /// Like [`sync_op`] but retried until `f` reports the thread unblocked
    /// (mutex acquisition).
    fn blocking_op(&self, me: usize, mut f: impl FnMut(&mut Shared, usize) -> bool) {
        loop {
            let acquired = self.sync_op(me, |shared, me| {
                if f(shared, me) {
                    true
                } else {
                    shared.threads[me].status = Status::Blocked;
                    false
                }
            });
            if acquired {
                return;
            }
            // Wait until the scheduler hands us the turn again (we are only
            // made Runnable by the corresponding unlock).
            let mut shared = self.lock();
            while !(shared.abort
                || (shared.active == Some(me) && shared.threads[me].status == Status::Runnable))
            {
                shared = self.wait(shared);
            }
            if shared.abort {
                drop(shared);
                std::panic::panic_any(ModelAbort);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Public harness API
// ---------------------------------------------------------------------------

/// Record a named coverage event; totals across all schedules end up in
/// [`Report::counters`]. Use it to prove exploration reached both sides of
/// a branch (e.g. "consumer admitted the unit" vs "consumer ran early").
pub fn count(name: &'static str) {
    let (e, me) = ctx();
    e.sync_op(me, |shared, _| {
        if shared.violation.is_none() {
            *shared.counters.entry(name).or_insert(0) += 1;
        }
    });
}

/// Model-checked assertion: on failure the current schedule is recorded as
/// a counterexample (message + decisions + trace) and exploration stops.
pub fn check(cond: bool, message: &str) {
    if cond {
        return;
    }
    let (e, me) = ctx();
    e.sync_op(me, |shared, _| {
        shared.violate(format!("assertion failed: {message}"));
    });
}

/// Run `bodies` as virtual threads to completion under the exploring
/// scheduler. Must be called from the harness body (virtual thread 0);
/// blocks until every virtual thread finished. Panics (model abort) if the
/// schedule hit a violation, unwinding the harness body.
pub fn run_threads(bodies: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let (e, me) = ctx();
    assert_eq!(me, 0, "run_threads must be called from the harness body");
    let n = bodies.len();
    let first;
    {
        let mut shared = e.lock();
        assert!(!shared.in_run, "nested run_threads is not supported");
        first = shared.threads.len();
        let (view, mut vc) = {
            let t0 = &shared.threads[0];
            (t0.view.clone(), t0.vc.clone())
        };
        vc.resize(first + n, 0);
        shared.threads[0].vc = vc.clone();
        for _ in 0..n {
            shared.threads.push(ThreadState {
                view: view.clone(),
                vc: vc.clone(),
                status: Status::Runnable,
            });
        }
        shared.in_run = true;
    }
    std::thread::scope(|scope| {
        for (i, body) in bodies.into_iter().enumerate() {
            let vtid = first + i;
            let e = Arc::clone(&e);
            scope.spawn(move || {
                let _guard = set_ctx(Arc::clone(&e), vtid);
                let result = catch_unwind(AssertUnwindSafe(body));
                // Exiting is itself a scheduled event: hold out for the turn
                // token so the Finished transition lands at a deterministic
                // point in the decision sequence. Without this the runnable
                // set at later decisions depends on OS timing and recorded
                // scripts do not replay.
                let mut shared = e.lock();
                while shared.active != Some(vtid) && !shared.abort {
                    shared = e.wait(shared);
                }
                if let Err(payload) = result {
                    if !payload.is::<ModelAbort>() {
                        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                            (*s).to_string()
                        } else if let Some(s) = payload.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "virtual thread panicked".to_string()
                        };
                        shared.violate(format!("thread t{vtid} panicked: {msg}"));
                    }
                }
                shared.threads[vtid].status = Status::Finished;
                if shared.active == Some(vtid) {
                    shared.active = None;
                }
                drop(shared);
                e.cv.notify_all();
            });
        }

        // Coordinator: pick the next thread at every quantum boundary.
        loop {
            let mut shared = e.lock();
            while shared.active.is_some() && !shared.abort {
                shared = e.wait(shared);
            }
            if shared.abort {
                e.cv.notify_all();
                break;
            }
            let runnable: Vec<usize> = (first..first + n)
                .filter(|&t| shared.threads[t].status == Status::Runnable)
                .collect();
            if runnable.is_empty() {
                let unfinished = (first..first + n)
                    .filter(|&t| shared.threads[t].status != Status::Finished)
                    .count();
                if unfinished > 0 {
                    shared.violate(format!("deadlock: {unfinished} thread(s) blocked forever"));
                    e.cv.notify_all();
                }
                break;
            }
            let options: Vec<usize> = match (shared.preemption_bound, shared.prev_active) {
                (Some(bound), Some(prev))
                    if shared.preemptions >= bound && runnable.contains(&prev) =>
                {
                    vec![prev]
                }
                _ => runnable.clone(),
            };
            let tid = options[shared.choose(options.len())];
            if shared.abort {
                e.cv.notify_all();
                break;
            }
            if let Some(prev) = shared.prev_active {
                if prev != tid && runnable.contains(&prev) {
                    shared.preemptions += 1;
                }
            }
            shared.prev_active = Some(tid);
            shared.active = Some(tid);
            drop(shared);
            e.cv.notify_all();
        }
    });
    // Join edge: merge every child's final knowledge into the body thread.
    let mut shared = e.lock();
    for i in first..first + n {
        let (view, vc) = {
            let t = &shared.threads[i];
            (t.view.clone(), t.vc.clone())
        };
        merge_view(&mut shared.threads[0].view, &view);
        merge_vc(&mut shared.threads[0].vc, &vc);
    }
    shared.in_run = false;
    let aborted = shared.abort;
    drop(shared);
    if aborted {
        std::panic::panic_any(ModelAbort);
    }
}

fn run_one_schedule(e: &Arc<Exploration>, script: Vec<u32>, body: &mut dyn FnMut()) {
    e.lock().reset_schedule(script);
    let _guard = set_ctx(Arc::clone(e), 0);
    let result = catch_unwind(AssertUnwindSafe(&mut *body));
    if let Err(payload) = result {
        if !payload.is::<ModelAbort>() {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "harness body panicked".to_string()
            };
            let mut shared = e.lock();
            shared.violate(format!("harness body panicked: {msg}"));
        }
    }
}

fn make_exploration(bounds: &Bounds) -> Arc<Exploration> {
    Arc::new(Exploration {
        shared: Mutex::new(Shared {
            script: Vec::new(),
            counters: BTreeMap::new(),
            max_steps: bounds.max_steps,
            preemption_bound: bounds.preemption_bound,
            cursor: 0,
            decisions: Vec::new(),
            locations: Vec::new(),
            threads: Vec::new(),
            active: None,
            prev_active: None,
            preemptions: 0,
            in_run: false,
            steps: 0,
            trace: Vec::new(),
            violation: None,
            abort: false,
            sc: Msg::default(),
        }),
        cv: Condvar::new(),
    })
}

fn harvest(e: &Arc<Exploration>) -> (Option<Violation>, Vec<Decision>) {
    let shared = e.lock();
    let violation = shared.violation.as_ref().map(|message| Violation {
        message: message.clone(),
        decisions: shared.decisions.iter().map(|d| d.chosen).collect(),
        trace: shared.trace.clone(),
    });
    (violation, shared.decisions.clone())
}

/// Explore every schedule of `body` within `bounds` by depth-first search.
///
/// `body` is re-executed once per schedule and must be deterministic given
/// the explorer's decisions (no wall-clock, no OS randomness). Exploration
/// stops at the first violation.
pub fn explore<F: FnMut()>(bounds: &Bounds, mut body: F) -> Report {
    let e = make_exploration(bounds);
    let mut script: Vec<u32> = Vec::new();
    let mut schedules = 0u64;
    let mut exhausted = false;
    let mut violation = None;
    loop {
        run_one_schedule(&e, script.clone(), &mut body);
        schedules += 1;
        let (v, decisions) = harvest(&e);
        if v.is_some() {
            violation = v;
            break;
        }
        // Advance the DFS frontier: bump the deepest unexhausted decision.
        match decisions.iter().rposition(|d| d.chosen + 1 < d.options) {
            Some(i) => {
                script = decisions[..i].iter().map(|d| d.chosen).collect();
                script.push(decisions[i].chosen + 1);
            }
            None => {
                exhausted = true;
                break;
            }
        }
        if schedules >= bounds.max_schedules {
            break;
        }
    }
    let counters = e.lock().counters.clone();
    Report {
        schedules,
        exhausted,
        violation,
        counters,
    }
}

/// Re-execute exactly one schedule of `body` from a recorded decision
/// script (see [`Violation::decisions`]); returns the violation it
/// reproduces, if any.
pub fn replay<F: FnMut()>(decisions: &[u32], mut body: F) -> Report {
    let bounds = Bounds::default();
    let e = make_exploration(&bounds);
    run_one_schedule(&e, decisions.to_vec(), &mut body);
    let (violation, _) = harvest(&e);
    let counters = e.lock().counters.clone();
    Report {
        schedules: 1,
        exhausted: false,
        violation,
        counters,
    }
}
