//! Model-checked counterparts of the `std::sync` primitives used by the
//! G-PASTA scheduler protocols.
//!
//! These types are API-compatible drop-ins for the subset of
//! `std::sync::atomic` / `parking_lot::Mutex` the workspace uses; the
//! `gpasta_check::sync` shim re-exports them under `--cfg
//! gpasta_model_check` and the plain `std` types otherwise.
//!
//! Every operation is a scheduling point for the explorer and applies the
//! view-based weak-memory semantics described in [`crate::model`]:
//! per-location modification order, per-thread view floors, release
//! messages on `Release` stores, message merges on `Acquire` loads, and
//! value nondeterminism for loads (a load may observe any store at or
//! above the thread's floor — which one is a DFS decision).

use std::sync::atomic::Ordering;

use super::{ctx, merge_vc, merge_view, Access, Location, Msg, Shared, Status, StoreRec};

fn has_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn has_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Per-thread view floor for `loc`, growing the view vector on demand.
fn floor(sh: &mut Shared, me: usize, loc: usize) -> usize {
    let view = &mut sh.threads[me].view;
    if view.len() <= loc {
        view.resize(loc + 1, 0);
    }
    view[loc] as usize
}

fn set_floor(sh: &mut Shared, me: usize, loc: usize, idx: usize) {
    let view = &mut sh.threads[me].view;
    if view.len() <= loc {
        view.resize(loc + 1, 0);
    }
    view[loc] = view[loc].max(idx as u32);
}

fn acquire_msg(sh: &mut Shared, me: usize, msg: &Option<Msg>) {
    if let Some(m) = msg {
        merge_view(&mut sh.threads[me].view, &m.view);
        merge_vc(&mut sh.threads[me].vc, &m.vc);
    }
}

fn own_msg(sh: &Shared, me: usize) -> Msg {
    Msg {
        view: sh.threads[me].view.clone(),
        vc: sh.threads[me].vc.clone(),
    }
}

fn seqcst_in(sh: &mut Shared, me: usize, ord: Ordering) {
    if ord == Ordering::SeqCst {
        let sc = sh.sc.clone();
        merge_view(&mut sh.threads[me].view, &sc.view);
        merge_vc(&mut sh.threads[me].vc, &sc.vc);
    }
}

fn seqcst_out(sh: &mut Shared, me: usize, ord: Ordering) {
    if ord == Ordering::SeqCst {
        let m = own_msg(sh, me);
        merge_view(&mut sh.sc.view, &m.view);
        merge_vc(&mut sh.sc.vc, &m.vc);
    }
}

fn bump(sh: &mut Shared, me: usize) {
    let vc = &mut sh.threads[me].vc;
    if vc.len() <= me {
        vc.resize(me + 1, 0);
    }
    vc[me] += 1;
}

fn with_atomic<R>(
    sh: &mut Shared,
    loc: usize,
    f: impl FnOnce(&mut Vec<StoreRec>, &'static str) -> R,
) -> R {
    match &mut sh.locations[loc] {
        Location::Atomic { stores, name } => f(stores, name),
        _ => unreachable!("location {loc} is not atomic"),
    }
}

fn atomic_new(name: &'static str, init: u64) -> usize {
    let (e, me) = ctx();
    e.sync_op(me, |sh, _| {
        let loc = sh.locations.len();
        sh.locations.push(Location::Atomic {
            name,
            stores: vec![StoreRec {
                value: init,
                msg: None,
            }],
        });
        loc
    })
}

fn atomic_load(loc: usize, ord: Ordering) -> u64 {
    let (e, me) = ctx();
    e.sync_op(me, |sh, me| {
        bump(sh, me);
        seqcst_in(sh, me, ord);
        let n = with_atomic(sh, loc, |stores, _| stores.len());
        let flo = floor(sh, me, loc);
        // Choice 0 reads the newest store; later choices read progressively
        // staler (but still view-admissible) stores.
        let pick = sh.choose(n - flo);
        let idx = n - 1 - pick;
        let (value, msg, name) = with_atomic(sh, loc, |stores, name| {
            (stores[idx].value, stores[idx].msg.clone(), name)
        });
        set_floor(sh, me, loc, idx);
        if has_acquire(ord) {
            acquire_msg(sh, me, &msg);
        }
        seqcst_out(sh, me, ord);
        sh.trace.push(format!(
            "[t{me}] {name}.load({ord:?}) = {value} (store #{idx})"
        ));
        value
    })
}

fn atomic_store(loc: usize, value: u64, ord: Ordering) {
    let (e, me) = ctx();
    e.sync_op(me, |sh, me| {
        bump(sh, me);
        seqcst_in(sh, me, ord);
        let msg = if has_release(ord) {
            Some(own_msg(sh, me))
        } else {
            None
        };
        let (idx, name) = with_atomic(sh, loc, |stores, name| {
            stores.push(StoreRec { value, msg });
            (stores.len() - 1, name)
        });
        set_floor(sh, me, loc, idx);
        seqcst_out(sh, me, ord);
        sh.trace.push(format!(
            "[t{me}] {name}.store({value}, {ord:?}) (store #{idx})"
        ));
    });
}

/// Read-modify-write: always operates on the modification-order tail
/// (hardware RMW atomicity), continuing the tail's release sequence.
fn atomic_rmw(loc: usize, op: &'static str, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
    let (e, me) = ctx();
    e.sync_op(me, |sh, me| {
        bump(sh, me);
        seqcst_in(sh, me, ord);
        let (old, tail_msg) = with_atomic(sh, loc, |stores, _| {
            let tail = stores.last().expect("atomic has an initial store");
            (tail.value, tail.msg.clone())
        });
        if has_acquire(ord) {
            acquire_msg(sh, me, &tail_msg);
        }
        let new = f(old);
        // Release-sequence continuation: a reader that acquires this store
        // synchronises with the head release store even if this RMW itself
        // is not a release.
        let msg = match (tail_msg, has_release(ord)) {
            (Some(mut m), true) => {
                let own = own_msg(sh, me);
                merge_view(&mut m.view, &own.view);
                merge_vc(&mut m.vc, &own.vc);
                Some(m)
            }
            (Some(m), false) => Some(m),
            (None, true) => Some(own_msg(sh, me)),
            (None, false) => None,
        };
        let (idx, name) = with_atomic(sh, loc, |stores, name| {
            stores.push(StoreRec { value: new, msg });
            (stores.len() - 1, name)
        });
        set_floor(sh, me, loc, idx);
        seqcst_out(sh, me, ord);
        sh.trace.push(format!(
            "[t{me}] {name}.{op}({ord:?}) {old} -> {new} (store #{idx})"
        ));
        old
    })
}

/// Compare-exchange against the modification-order tail. The failure load
/// reads the tail deterministically (stronger than C11, which also lets
/// failed CAS observe older values; hardware CAS fails only against the
/// live value).
fn atomic_cas(
    loc: usize,
    expected: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    let (e, me) = ctx();
    e.sync_op(me, |sh, me| {
        bump(sh, me);
        seqcst_in(sh, me, success);
        let (old, tail_msg, tail_idx) = with_atomic(sh, loc, |stores, _| {
            let tail = stores.last().expect("atomic has an initial store");
            (tail.value, tail.msg.clone(), stores.len() - 1)
        });
        if old == expected {
            if has_acquire(success) {
                acquire_msg(sh, me, &tail_msg);
            }
            let msg = match (tail_msg, has_release(success)) {
                (Some(mut m), true) => {
                    let own = own_msg(sh, me);
                    merge_view(&mut m.view, &own.view);
                    merge_vc(&mut m.vc, &own.vc);
                    Some(m)
                }
                (Some(m), false) => Some(m),
                (None, true) => Some(own_msg(sh, me)),
                (None, false) => None,
            };
            let (idx, name) = with_atomic(sh, loc, |stores, name| {
                stores.push(StoreRec { value: new, msg });
                (stores.len() - 1, name)
            });
            set_floor(sh, me, loc, idx);
            seqcst_out(sh, me, success);
            sh.trace.push(format!(
                "[t{me}] {name}.compare_exchange({expected} -> {new}, {success:?}) ok (store #{idx})"
            ));
            Ok(old)
        } else {
            set_floor(sh, me, loc, tail_idx);
            if has_acquire(failure) {
                acquire_msg(sh, me, &tail_msg);
            }
            let name = with_atomic(sh, loc, |_, name| name);
            sh.trace.push(format!(
                "[t{me}] {name}.compare_exchange({expected} -> {new}, {failure:?}) failed, saw {old}"
            ));
            Err(old)
        }
    })
}

fn atomic_into_inner(loc: usize) -> u64 {
    let (e, me) = ctx();
    e.sync_op(me, |sh, _| {
        with_atomic(sh, loc, |stores, _| {
            stores.last().expect("atomic has an initial store").value
        })
    })
}

/// An atomic fence, modelled conservatively as a merge through the global
/// SC view (over-synchronises — do not rely on fence-only protocols in
/// harnesses).
pub fn fence(ord: Ordering) {
    let (e, me) = ctx();
    e.sync_op(me, |sh, me| {
        bump(sh, me);
        if has_acquire(ord) {
            seqcst_in(sh, me, Ordering::SeqCst);
        }
        if has_release(ord) {
            seqcst_out(sh, me, Ordering::SeqCst);
        }
        sh.trace.push(format!("[t{me}] fence({ord:?})"));
    });
}

macro_rules! model_atomic {
    ($name:ident, $ty:ty) => {
        /// Model-checked stand-in for the same-named `std::sync::atomic`
        /// type; see the module docs for the memory-model semantics.
        #[derive(Debug)]
        pub struct $name {
            loc: usize,
        }

        impl $name {
            pub fn new(v: $ty) -> Self {
                Self::named(stringify!($name), v)
            }

            /// Like `new`, with a display name for schedule traces.
            pub fn named(name: &'static str, v: $ty) -> Self {
                $name {
                    loc: atomic_new(name, v as u64),
                }
            }

            pub fn load(&self, ord: Ordering) -> $ty {
                atomic_load(self.loc, ord) as $ty
            }

            pub fn store(&self, v: $ty, ord: Ordering) {
                atomic_store(self.loc, v as u64, ord);
            }

            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                atomic_rmw(self.loc, "swap", ord, |_| v as u64) as $ty
            }

            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                atomic_rmw(self.loc, "fetch_add", ord, |old| {
                    (old as $ty).wrapping_add(v) as u64
                }) as $ty
            }

            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                atomic_rmw(self.loc, "fetch_sub", ord, |old| {
                    (old as $ty).wrapping_sub(v) as u64
                }) as $ty
            }

            pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
                atomic_rmw(self.loc, "fetch_and", ord, |old| ((old as $ty) & v) as u64) as $ty
            }

            pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                atomic_rmw(self.loc, "fetch_or", ord, |old| ((old as $ty) | v) as u64) as $ty
            }

            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                atomic_rmw(self.loc, "fetch_max", ord, |old| (old as $ty).max(v) as u64) as $ty
            }

            pub fn fetch_min(&self, v: $ty, ord: Ordering) -> $ty {
                atomic_rmw(self.loc, "fetch_min", ord, |old| (old as $ty).min(v) as u64) as $ty
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                atomic_cas(self.loc, current as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            /// Never fails spuriously in the model.
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            pub fn fetch_update(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                mut f: impl FnMut($ty) -> Option<$ty>,
            ) -> Result<$ty, $ty> {
                let mut prev = self.load(fetch_order);
                while let Some(next) = f(prev) {
                    match self.compare_exchange_weak(prev, next, set_order, fetch_order) {
                        Ok(x) => return Ok(x),
                        Err(next_prev) => prev = next_prev,
                    }
                }
                Err(prev)
            }

            pub fn into_inner(self) -> $ty {
                atomic_into_inner(self.loc) as $ty
            }
        }
    };
}

model_atomic!(AtomicU8, u8);
model_atomic!(AtomicU32, u32);
model_atomic!(AtomicU64, u64);
model_atomic!(AtomicUsize, usize);

/// Model-checked stand-in for `std::sync::atomic::AtomicBool`.
#[derive(Debug)]
pub struct AtomicBool {
    loc: usize,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        Self::named("AtomicBool", v)
    }

    /// Like `new`, with a display name for schedule traces.
    pub fn named(name: &'static str, v: bool) -> Self {
        AtomicBool {
            loc: atomic_new(name, u64::from(v)),
        }
    }

    pub fn load(&self, ord: Ordering) -> bool {
        atomic_load(self.loc, ord) != 0
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        atomic_store(self.loc, u64::from(v), ord);
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        atomic_rmw(self.loc, "swap", ord, |_| u64::from(v)) != 0
    }

    pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
        atomic_rmw(self.loc, "fetch_or", ord, |old| old | u64::from(v)) != 0
    }

    pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
        atomic_rmw(self.loc, "fetch_and", ord, |old| old & u64::from(v)) != 0
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        atomic_cas(
            self.loc,
            u64::from(current),
            u64::from(new),
            success,
            failure,
        )
        .map(|v| v != 0)
        .map_err(|v| v != 0)
    }

    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.compare_exchange(current, new, success, failure)
    }

    pub fn into_inner(self) -> bool {
        atomic_into_inner(self.loc) != 0
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-checked mutex with the `parking_lot` locking API (no poisoning,
/// `lock()` returns the guard directly). Lock acquisition is an acquire
/// edge from the previous unlock; contended lock attempts block the
/// virtual thread (the explorer reports a deadlock if no thread can run).
#[derive(Debug)]
pub struct Mutex<T> {
    loc: usize,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self::named("Mutex", value)
    }

    /// Like `new`, with a display name for schedule traces.
    pub fn named(name: &'static str, value: T) -> Self {
        let (e, me) = ctx();
        let loc = e.sync_op(me, |sh, _| {
            let loc = sh.locations.len();
            sh.locations.push(Location::Mutex {
                name,
                locked_by: None,
                last_msg: None,
            });
            loc
        });
        Mutex {
            loc,
            inner: parking_lot::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (e, me) = ctx();
        let loc = self.loc;
        e.blocking_op(me, |sh, me| {
            let (owner, msg, name) = match &sh.locations[loc] {
                Location::Mutex {
                    locked_by,
                    last_msg,
                    name,
                } => (*locked_by, last_msg.clone(), *name),
                _ => unreachable!("location {loc} is not a mutex"),
            };
            if owner == Some(me) {
                sh.violate(format!("recursive lock of {name} by t{me}"));
                return true;
            }
            if owner.is_some() {
                return false;
            }
            bump(sh, me);
            acquire_msg(sh, me, &msg);
            if let Location::Mutex { locked_by, .. } = &mut sh.locations[loc] {
                *locked_by = Some(me);
            }
            sh.trace.push(format!("[t{me}] {name}.lock()"));
            true
        });
        MutexGuard {
            mutex: self,
            inner: Some(self.inner.lock()),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// Guard for the model [`Mutex`]; unlocking is a release edge to the next
/// lock.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        let (e, me) = ctx();
        let loc = self.mutex.loc;
        e.sync_op_in_drop(me, |sh, me| {
            bump(sh, me);
            let msg = own_msg(sh, me);
            let name = match &mut sh.locations[loc] {
                Location::Mutex {
                    locked_by,
                    last_msg,
                    name,
                } => {
                    debug_assert_eq!(*locked_by, Some(me), "unlock by non-owner");
                    *locked_by = None;
                    *last_msg = Some(msg);
                    *name
                }
                _ => unreachable!("location {loc} is not a mutex"),
            };
            // Spurious-wakeup model: every blocked thread retries its
            // acquisition (and re-blocks if its mutex is still held).
            for t in &mut sh.threads {
                if t.status == Status::Blocked {
                    t.status = Status::Runnable;
                }
            }
            sh.trace.push(format!("[t{me}] {name}.unlock()"));
        });
    }
}

// ---------------------------------------------------------------------------
// TrackedCell: plain (non-atomic) shared data with race detection
// ---------------------------------------------------------------------------

/// Plain shared memory with FastTrack-style vector-clock race detection.
///
/// Use this in harnesses for the *payload* data a protocol publishes: if
/// any explored schedule contains a write unordered (by happens-before)
/// with another access, the explorer reports a data race — even when the
/// schedule happened to execute the pair in a benign real-time order.
#[derive(Debug)]
pub struct TrackedCell<T> {
    loc: usize,
    inner: parking_lot::Mutex<T>,
}

impl<T: Clone> TrackedCell<T> {
    pub fn new(value: T) -> Self {
        Self::named("cell", value)
    }

    /// Like `new`, with a display name for traces and race reports.
    pub fn named(name: &'static str, value: T) -> Self {
        let (e, me) = ctx();
        let loc = e.sync_op(me, |sh, _| {
            let loc = sh.locations.len();
            sh.locations.push(Location::Plain {
                name,
                last_write: None,
                reads: Vec::new(),
            });
            loc
        });
        TrackedCell {
            loc,
            inner: parking_lot::Mutex::new(value),
        }
    }

    pub fn read(&self) -> T {
        plain_access(self.loc, false);
        self.inner.lock().clone()
    }

    pub fn write(&self, value: T) {
        plain_access(self.loc, true);
        *self.inner.lock() = value;
    }
}

fn plain_access(loc: usize, is_write: bool) {
    let (e, me) = ctx();
    e.sync_op(me, |sh, me| {
        bump(sh, me);
        let vc_me = sh.threads[me].vc.clone();
        let stamp = vc_me[me];
        let knows = |access: &Access| -> bool {
            vc_me.get(access.thread).copied().unwrap_or(0) >= access.stamp
        };
        let mut race: Option<String> = None;
        match &mut sh.locations[loc] {
            Location::Plain {
                name,
                last_write,
                reads,
            } => {
                if let Some(w) = last_write {
                    if w.thread != me && !knows(w) {
                        race = Some(format!(
                            "data race on `{name}`: {} by t{me} unordered with write by t{}",
                            if is_write { "write" } else { "read" },
                            w.thread
                        ));
                    }
                }
                if is_write {
                    for r in reads.iter() {
                        if r.thread != me && !knows(r) {
                            race = Some(format!(
                                "data race on `{name}`: write by t{me} unordered with read by t{}",
                                r.thread
                            ));
                        }
                    }
                    *last_write = Some(Access { thread: me, stamp });
                    reads.clear();
                    sh.trace.push(format!("[t{me}] {name}.write()"));
                } else {
                    reads.push(Access { thread: me, stamp });
                    sh.trace.push(format!("[t{me}] {name}.read()"));
                }
            }
            _ => unreachable!("location {loc} is not plain"),
        }
        if let Some(msg) = race {
            sh.violate(msg);
        }
    });
}
