//! `gpasta-check`: concurrency correctness tools for the G-PASTA
//! workspace.
//!
//! Three pieces:
//!
//! * [`sync`] — the synchronisation shim every G-PASTA crate imports
//!   instead of `std::sync::atomic` / `parking_lot`. In normal builds it
//!   is a set of plain re-exports (zero cost); under `--cfg
//!   gpasta_model_check` it routes into the model checker so whole
//!   protocol slices can be explored unchanged.
//! * [`model`] — an in-tree exhaustive interleaving explorer (a
//!   "mini-loom"): DFS over bounded thread schedules *and* weak-memory
//!   read choices, vector-clock happens-before tracking, data-race
//!   detection on plain cells, and replayable counterexample traces.
//! * [`lint`] — a token-level source lint (`gpasta-check-lint` binary)
//!   enforcing the workspace's atomic-ordering discipline: no raw
//!   `std::sync::atomic` outside the shim, no untagged `SeqCst`, paired
//!   `// hb:` labels on every release/acquire half, and an exhaustive
//!   allowlist for `unwrap`/`expect` on non-test library paths.
//!
//! [`protocols`] contains the bounded model-check harnesses for the four
//! scheduler protocols (poison publication, watchdog stall claim, cancel
//! generations, slack-min), each with seeded ordering mutations proving
//! the checker catches real weakenings.

pub mod lint;
pub mod model;
pub mod protocols;
pub mod sync;
