//! `gpasta-check-lint`: source-level atomic-ordering and panic-path lint
//! for the G-PASTA workspace. See `gpasta_check::lint` for the rules.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    match gpasta_check::lint::run(std::path::Path::new(&root)) {
        Ok(report) => {
            if report.diagnostics.is_empty() {
                println!(
                    "gpasta-check-lint: clean ({} files scanned)",
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                for d in &report.diagnostics {
                    eprintln!("{d}");
                }
                eprintln!(
                    "gpasta-check-lint: {} violation(s) in {} files scanned",
                    report.diagnostics.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("gpasta-check-lint: error: {err}");
            ExitCode::FAILURE
        }
    }
}
