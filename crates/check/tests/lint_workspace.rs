//! The workspace must stay lint-clean: zero ordering/tag violations and a
//! panic-path budget that matches `lint-allowlist.txt` exactly. This is the
//! same check CI's `lint` job runs via the `gpasta-check-lint` binary; the
//! integration test keeps it enforced by plain `cargo test` too.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = gpasta_check::lint::run(&root).expect("lint walks the workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn lint_catches_a_seeded_violation() {
    // Sanity-check that the clean result above is not a no-op scan: a tree
    // containing an untagged Release store must produce a diagnostic.
    let dir = std::env::temp_dir().join(format!("gpasta-lint-seeded-{}", std::process::id()));
    let src = dir.join("crates").join("demo").join("src");
    std::fs::create_dir_all(&src).expect("temp tree");
    std::fs::write(
        src.join("lib.rs"),
        "use gpasta_check::sync::{AtomicBool, Ordering};\n\
         pub fn publish(flag: &AtomicBool) {\n\
             flag.store(true, Ordering::Release);\n\
         }\n",
    )
    .expect("write seeded source");

    let report = gpasta_check::lint::run(&dir).expect("lint walks the seeded tree");
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "hb-tag" || d.message.contains("hb:")),
        "seeded untagged Release store was not flagged: {:?}",
        report.diagnostics
    );
}
