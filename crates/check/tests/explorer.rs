//! Self-tests for the interleaving explorer: it must find seeded bugs
//! (races, stale reads, deadlocks), must NOT flag correct protocols, and
//! must replay counterexamples deterministically.

use gpasta_check::model::sync::{AtomicU32, Mutex, TrackedCell};
use gpasta_check::model::{check, explore, replay, run_threads, Bounds, Report};
use gpasta_check::sync::Ordering;

fn bounds() -> Bounds {
    Bounds {
        max_schedules: 100_000,
        max_steps: 1_000,
        preemption_bound: None,
    }
}

fn assert_clean(report: &Report) {
    assert!(
        report.violation.is_none(),
        "unexpected violation:\n{}",
        report.violation.as_ref().unwrap()
    );
    assert!(report.exhausted, "frontier must drain");
}

#[test]
fn single_thread_counts_one_schedule() {
    let report = explore(&bounds(), || {
        let x = AtomicU32::new(1);
        check(x.load(Ordering::Relaxed) == 1, "init visible");
    });
    assert_clean(&report);
    assert_eq!(report.schedules, 1, "no decision points, one schedule");
}

#[test]
fn two_racing_writers_explore_both_orders() {
    // Two relaxed stores of different values: the final value depends on
    // the schedule, so both final states must be observed.
    let mut saw = std::collections::BTreeSet::new();
    let report = explore(&bounds(), || {
        let x = AtomicU32::new(0);
        let xr = &x;
        run_threads(vec![
            Box::new(move || xr.store(1, Ordering::Relaxed)),
            Box::new(move || xr.store(2, Ordering::Relaxed)),
        ]);
        // Post-join load is deterministic (sees the tail of modification
        // order for this schedule).
        saw.insert(x.load(Ordering::Relaxed));
    });
    assert_clean(&report);
    assert!(report.schedules >= 2, "both interleavings explored");
    assert_eq!(saw, [1u32, 2].into_iter().collect());
}

#[test]
fn plain_cell_write_write_race_detected() {
    let report = explore(&bounds(), || {
        let c = TrackedCell::named("shared", 0u32);
        let cr = &c;
        run_threads(vec![
            Box::new(move || cr.write(1)),
            Box::new(move || cr.write(2)),
        ]);
    });
    let v = report.violation.expect("unsynchronised writes must race");
    assert!(v.message.contains("data race"), "{}", v.message);
    assert!(v.message.contains("shared"), "{}", v.message);
}

#[test]
fn release_acquire_message_passing_is_race_free() {
    // The classic pattern the shim's protocols rely on: payload write,
    // Release flag store; Acquire flag load, payload read.
    let report = explore(&bounds(), || {
        let flag = AtomicU32::new(0);
        let data = TrackedCell::named("payload", 0u32);
        let (f, d) = (&flag, &data);
        run_threads(vec![
            Box::new(move || {
                d.write(42);
                f.store(1, Ordering::Release);
            }),
            Box::new(move || {
                if f.load(Ordering::Acquire) == 1 {
                    check(d.read() == 42, "acquire must see the payload");
                }
            }),
        ]);
    });
    assert_clean(&report);
}

#[test]
fn relaxed_message_passing_race_found_and_replays() {
    // Same pattern with the Release edge severed: some schedule must race
    // on the payload, and the recorded schedule must replay exactly.
    let body = |probe: &mut Vec<String>| {
        let flag = AtomicU32::new(0);
        let data = TrackedCell::named("payload", 0u32);
        let (f, d) = (&flag, &data);
        run_threads(vec![
            Box::new(move || {
                d.write(42);
                f.store(1, Ordering::Relaxed);
            }),
            Box::new(move || {
                if f.load(Ordering::Acquire) == 1 {
                    let _ = d.read();
                }
            }),
        ]);
        let _ = probe;
    };
    let mut probe = Vec::new();
    let report = explore(&bounds(), || body(&mut probe));
    let v = report.violation.expect("relaxed publish must race");
    assert!(v.message.contains("payload"), "{}", v.message);
    assert!(!v.decisions.is_empty(), "counterexample carries decisions");

    let replayed = replay(&v.decisions, || body(&mut probe));
    let rv = replayed.violation.expect("replay hits the same violation");
    assert_eq!(rv.message, v.message);
    assert_eq!(rv.trace, v.trace, "replayed schedule is the same schedule");
}

#[test]
fn stale_relaxed_load_is_explored() {
    // A Relaxed load may legally return a stale value: assert exploration
    // actually exercises that (the weak-memory half of the explorer, not
    // just thread interleaving).
    let mut saw = std::collections::BTreeSet::new();
    let report = explore(&bounds(), || {
        let x = AtomicU32::new(0);
        let got = TrackedCell::named("got", 0u32);
        let (xr, g) = (&x, &got);
        run_threads(vec![
            Box::new(move || xr.store(7, Ordering::Release)),
            Box::new(move || g.write(xr.load(Ordering::Relaxed))),
        ]);
        saw.insert(got.read());
    });
    assert_clean(&report);
    assert_eq!(
        saw,
        [0u32, 7].into_iter().collect(),
        "load must observe both the stale and the fresh value across schedules"
    );
}

#[test]
fn mutex_provides_exclusion_and_ordering() {
    let report = explore(&bounds(), || {
        let m = Mutex::named("counter", 0u32);
        let mr = &m;
        run_threads(vec![
            Box::new(move || {
                let mut g = mr.lock();
                *g += 1;
            }),
            Box::new(move || {
                let mut g = mr.lock();
                *g += 1;
            }),
        ]);
        check(*m.lock() == 2, "both increments must land");
    });
    assert_clean(&report);
}

#[test]
fn deadlock_is_reported() {
    let report = explore(&bounds(), || {
        let a = Mutex::named("a", ());
        let b = Mutex::named("b", ());
        let (ar, br) = (&a, &b);
        run_threads(vec![
            Box::new(move || {
                let _ga = ar.lock();
                let _gb = br.lock();
            }),
            Box::new(move || {
                let _gb = br.lock();
                let _ga = ar.lock();
            }),
        ]);
    });
    let v = report
        .violation
        .expect("lock-order inversion must deadlock");
    assert!(v.message.contains("deadlock"), "{}", v.message);
}

#[test]
fn thread_panic_becomes_violation_with_trace() {
    let report = explore(&bounds(), || {
        run_threads(vec![Box::new(|| panic!("boom in unit 3"))]);
    });
    let v = report.violation.expect("panic is a counterexample");
    assert!(v.message.contains("boom in unit 3"), "{}", v.message);
}

#[test]
fn preemption_bound_prunes_schedules() {
    let count_with = |bound: Option<u32>| {
        let b = Bounds {
            max_schedules: 100_000,
            max_steps: 1_000,
            preemption_bound: bound,
        };
        let report = explore(&b, || {
            let x = AtomicU32::new(0);
            let xr = &x;
            run_threads(vec![
                Box::new(move || {
                    xr.fetch_add(1, Ordering::Relaxed);
                    xr.fetch_add(1, Ordering::Relaxed);
                }),
                Box::new(move || {
                    xr.fetch_add(1, Ordering::Relaxed);
                    xr.fetch_add(1, Ordering::Relaxed);
                }),
            ]);
            check(x.load(Ordering::Relaxed) == 4, "all increments land");
        });
        assert_clean(&report);
        report.schedules
    };
    let full = count_with(None);
    let bounded = count_with(Some(1));
    assert!(
        bounded < full,
        "preemption bound must prune: bounded={bounded} full={full}"
    );
}

#[test]
fn rmw_chain_carries_release_message() {
    // Release store, then a Relaxed RMW by another thread; an Acquire load
    // that reads the RMW's store must still synchronise with the head of
    // the release sequence.
    let report = explore(&bounds(), || {
        let flag = AtomicU32::new(0);
        let data = TrackedCell::named("payload", 0u32);
        let (f, d) = (&flag, &data);
        run_threads(vec![
            Box::new(move || {
                d.write(5);
                f.store(1, Ordering::Release);
            }),
            Box::new(move || {
                let _ = f.fetch_add(10, Ordering::Relaxed);
            }),
            Box::new(move || {
                let v = f.load(Ordering::Acquire);
                if v == 11 {
                    // Reads the RMW store whose release sequence heads at
                    // the Release store: payload must be visible.
                    check(d.read() == 5, "release sequence publishes payload");
                }
            }),
        ]);
    });
    assert_clean(&report);
}
