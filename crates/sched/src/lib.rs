//! Taskflow-like task-graph executor for the G-PASTA reproduction.
//!
//! OpenTimer delegates its timing-propagation TDG to the Taskflow
//! work-stealing scheduler; the per-task scheduling cost of that executor
//! (0.2–3 µs per task, §1 of the paper) is what TDG partitioning amortises.
//! This crate reproduces that execution environment:
//!
//! * [`Executor`] — a work-stealing executor that runs a
//!   [`Tdg`](gpasta_tdg::Tdg) by counting down dependencies and dispatching
//!   ready tasks to workers ([`Executor::run_tdg`]), or runs a *partitioned*
//!   TDG by dispatching whole partitions whose member tasks execute
//!   sequentially in topological order ([`Executor::run_partitioned`]);
//! * [`TaskWork`] — the task payload hook (implemented by the STA engine's
//!   propagation closures);
//! * [`Taskflow`] — the graph-*construction* cost model: one heap-allocated
//!   node per schedulable unit, which is the "building the TDG" share of
//!   the paper's Figure 1(a) and the cost that shrinks when the scheduler
//!   receives partitions instead of tasks;
//! * [`FlowArena`] — the *reusable* graph-build path: flat CSR buffers
//!   refilled in place across iterations, pairing with the incremental
//!   partition cache so repeated updates stop paying construction
//!   allocations;
//! * [`RunReport`] — wall-clock plus scheduling-op counts, so benchmarks can
//!   attribute time to scheduling vs. payload;
//! * fault tolerance — [`Executor::run_tdg_recovering`] /
//!   [`Executor::run_partitioned_recovering`] contain payload failures
//!   instead of unwinding: per-attempt `catch_unwind`, bounded retry with
//!   exponential backoff ([`RetryPolicy`]), and partition quarantine (a
//!   permanent failure poisons its dispatch unit's forward closure while
//!   everything else is salvaged — reported in a [`RunOutcome`]);
//! * [`FaultPlan`] / [`FaultyWork`] — deterministic fault injection keyed
//!   by `(task, attempt)`, the test oracle for the recovering path;
//! * bounded-time execution — [`Executor::run_tdg_recovering_bounded`] /
//!   [`Executor::run_partitioned_recovering_bounded`] accept a
//!   [`RunBudget`] (wall-clock deadline, [`CancelToken`] cooperative
//!   cancellation, hung-task watchdog stall window) and report early stops
//!   as a structured partial [`RunOutcome`] whose *unfinished* set is the
//!   exact forward closure of the unadmitted units ([`StopCause`]);
//! * [`measure_sched_overhead`] — calibrates the per-task scheduling cost on
//!   the host, reproducing the paper's 0.2–3 µs observation;
//! * [`sim`] — a deterministic Graham list-scheduling simulator for
//!   reproducing multi-worker makespans on any host.
//!
//! # Example
//!
//! ```
//! use gpasta_sched::Executor;
//! use gpasta_tdg::{TdgBuilder, TaskId};
//! use gpasta_check::sync::{AtomicU32, Ordering};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = TdgBuilder::new(3);
//! b.add_edge(TaskId(0), TaskId(1));
//! b.add_edge(TaskId(1), TaskId(2));
//! let tdg = b.build()?;
//!
//! let sum = AtomicU32::new(0);
//! let exec = Executor::new(2);
//! let report = exec.run_tdg(&tdg, &|t: TaskId| {
//!     sum.fetch_add(t.0, Ordering::Relaxed);
//! });
//! assert_eq!(report.tasks_executed, 3);
//! assert_eq!(sum.load(Ordering::Relaxed), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod bounded;
mod executor;
mod fault;
mod outcome;
mod overhead;
mod report;
pub mod sim;
mod supervise;
mod taskflow;

pub use arena::FlowArena;
pub use bounded::RunBudget;
pub use executor::{Executor, ExecutorError, TaskWork, DEFAULT_CHUNK_SIZE};
pub use fault::{FaultKind, FaultPlan, FaultyWork};
pub use gpasta_tdg::{CancelObserver, CancelToken};
pub use outcome::{FailureRecord, RecoverableWork, RetryPolicy, RunOutcome, StopCause, TaskError};
pub use overhead::{measure_sched_overhead, OverheadProfile};
pub use report::RunReport;
pub use sim::{simulate_makespan, SimReport};
pub use supervise::HeartbeatMonitor;
pub use taskflow::Taskflow;
