//! Heartbeat supervision for externally-executing work units.
//!
//! The shard supervisor runs each shard in a separate OS process. A dead
//! child is detected by `wait`, but a *hung* child (deadlocked, stalled
//! on I/O, or stuck in a loop) exits nothing — the only signal is the
//! heartbeats it stops sending. [`HeartbeatMonitor`] tracks the last
//! beat of every unit and reports the ones whose silence exceeds the
//! stall window, so the supervisor's watchdog can kill and respawn them.
//!
//! The monitor is plain single-owner state driven by the supervisor's
//! event loop; every method takes the current time as a parameter, so
//! tests exercise stall detection with synthetic clocks and no sleeps.

use std::time::{Duration, Instant};

/// Tracks per-unit heartbeats and flags units that have gone silent.
#[derive(Debug)]
pub struct HeartbeatMonitor {
    stall_after: Duration,
    /// Last observed beat per unit; `None` while the unit is not running.
    last: Vec<Option<Instant>>,
}

impl HeartbeatMonitor {
    /// A monitor over `units` work units flagging silences longer than
    /// `stall_after`. No unit is considered running until
    /// [`start`](Self::start) is called for it.
    pub fn new(units: usize, stall_after: Duration) -> Self {
        HeartbeatMonitor {
            stall_after,
            last: vec![None; units],
        }
    }

    /// The configured stall window.
    pub fn stall_after(&self) -> Duration {
        self.stall_after
    }

    /// Begin supervising `unit`: its spawn counts as the first beat
    /// (spawn-to-first-beat latency is bounded by the same window).
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn start(&mut self, unit: u32, now: Instant) {
        self.last[unit as usize] = Some(now);
    }

    /// Record a heartbeat from `unit`. Beats from units that are not
    /// running are ignored — a late beat from a child the watchdog
    /// already killed must not resurrect its supervision entry.
    pub fn beat(&mut self, unit: u32, now: Instant) {
        if let Some(slot) = self.last.get_mut(unit as usize) {
            if slot.is_some() {
                *slot = Some(now);
            }
        }
    }

    /// Stop supervising `unit` (it completed, failed, or was killed).
    pub fn stop(&mut self, unit: u32) {
        self.last[unit as usize] = None;
    }

    /// Whether `unit` is currently supervised.
    pub fn is_running(&self, unit: u32) -> bool {
        self.last
            .get(unit as usize)
            .is_some_and(|slot| slot.is_some())
    }

    /// Units whose last beat is older than the stall window, in unit
    /// order.
    pub fn stalled(&self, now: Instant) -> Vec<u32> {
        self.last
            .iter()
            .enumerate()
            .filter_map(|(u, slot)| {
                let at = (*slot)?;
                (now.duration_since(at) > self.stall_after).then_some(u as u32)
            })
            .collect()
    }

    /// Time until the earliest supervised unit could cross the stall
    /// window (the supervisor's `recv_timeout` bound), or `None` when
    /// nothing is supervised. Already-stalled units yield
    /// [`Duration::ZERO`].
    pub fn next_deadline(&self, now: Instant) -> Option<Duration> {
        self.last
            .iter()
            .flatten()
            .map(|&at| {
                (at + self.stall_after)
                    .checked_duration_since(now)
                    .unwrap_or(Duration::ZERO)
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> (Instant, impl Fn(u64) -> Instant) {
        let t0 = Instant::now();
        (t0, move |ms| t0 + Duration::from_millis(ms))
    }

    #[test]
    fn silent_unit_stalls_after_the_window() {
        let (t0, at) = clock();
        let mut m = HeartbeatMonitor::new(3, Duration::from_millis(100));
        m.start(0, t0);
        m.start(2, t0);
        assert!(m.stalled(at(100)).is_empty(), "window is exclusive");
        assert_eq!(m.stalled(at(101)), vec![0, 2]);
    }

    #[test]
    fn beats_keep_a_unit_alive() {
        let (t0, at) = clock();
        let mut m = HeartbeatMonitor::new(1, Duration::from_millis(100));
        m.start(0, t0);
        m.beat(0, at(80));
        m.beat(0, at(160));
        assert!(m.stalled(at(240)).is_empty());
        assert_eq!(m.stalled(at(261)), vec![0]);
    }

    #[test]
    fn stopped_units_are_not_flagged_and_late_beats_are_ignored() {
        let (t0, at) = clock();
        let mut m = HeartbeatMonitor::new(2, Duration::from_millis(10));
        m.start(0, t0);
        m.start(1, t0);
        m.stop(0);
        assert!(!m.is_running(0));
        assert!(m.is_running(1));
        // A beat from the stopped unit must not resurrect it.
        m.beat(0, at(5));
        assert!(!m.is_running(0));
        assert_eq!(m.stalled(at(1000)), vec![1]);
    }

    #[test]
    fn deadline_tracks_the_oldest_beat() {
        let (t0, at) = clock();
        let mut m = HeartbeatMonitor::new(2, Duration::from_millis(100));
        assert_eq!(m.next_deadline(t0), None, "nothing supervised");
        m.start(0, t0);
        m.start(1, at(50));
        assert_eq!(m.next_deadline(at(60)), Some(Duration::from_millis(40)));
        // Past the window the deadline clamps to zero.
        assert_eq!(m.next_deadline(at(500)), Some(Duration::ZERO));
    }
}
