//! Execution reports produced by the executor.

use std::fmt;
use std::time::Duration;

/// Result of one executor run.
///
/// `dispatches` counts scheduling operations (a task or partition handed to
/// a worker). For a plain TDG run it equals the task count; for a
/// partitioned run it equals the partition count — the gap between the two
/// is exactly the scheduling cost that partitioning removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Number of underlying tasks whose payload executed.
    pub tasks_executed: usize,
    /// Number of scheduling operations (dispatch events).
    pub dispatches: u64,
    /// Worker threads used.
    pub num_workers: usize,
}

impl RunReport {
    /// Mean wall-clock time per dispatch. Zero when nothing was dispatched.
    pub fn time_per_dispatch(&self) -> Duration {
        if self.dispatches == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.dispatches).unwrap_or(u32::MAX)
        }
    }

    /// Mean wall-clock time per executed task. Zero when nothing ran.
    pub fn time_per_task(&self) -> Duration {
        if self.tasks_executed == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.tasks_executed).unwrap_or(u32::MAX)
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks in {:.3} ms via {} dispatches on {} workers",
            self.tasks_executed,
            self.elapsed.as_secs_f64() * 1e3,
            self.dispatches,
            self.num_workers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_dispatch_and_per_task_math() {
        let r = RunReport {
            elapsed: Duration::from_micros(1000),
            tasks_executed: 10,
            dispatches: 5,
            num_workers: 2,
        };
        assert_eq!(r.time_per_dispatch(), Duration::from_micros(200));
        assert_eq!(r.time_per_task(), Duration::from_micros(100));
    }

    #[test]
    fn zero_counts_do_not_divide_by_zero() {
        let r = RunReport {
            elapsed: Duration::from_micros(7),
            tasks_executed: 0,
            dispatches: 0,
            num_workers: 1,
        };
        assert_eq!(r.time_per_dispatch(), Duration::ZERO);
        assert_eq!(r.time_per_task(), Duration::ZERO);
    }

    #[test]
    fn display_mentions_counts() {
        let r = RunReport {
            elapsed: Duration::from_millis(2),
            tasks_executed: 4,
            dispatches: 3,
            num_workers: 2,
        };
        let s = r.to_string();
        assert!(s.contains("4 tasks"));
        assert!(s.contains("3 dispatches"));
    }
}
