//! Execution reports produced by the executor.

use serde::value::{FromValueError, Value};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Result of one executor run.
///
/// `dispatches` counts scheduling operations (a task or partition handed to
/// a worker). For a plain TDG run it equals the task count; for a
/// partitioned run it equals the partition count — the gap between the two
/// is exactly the scheduling cost that partitioning removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Number of underlying tasks whose payload executed.
    pub tasks_executed: usize,
    /// Number of scheduling operations (dispatch events).
    pub dispatches: u64,
    /// Worker threads used.
    pub num_workers: usize,
}

impl RunReport {
    /// Mean wall-clock time per dispatch. Zero when nothing was dispatched.
    pub fn time_per_dispatch(&self) -> Duration {
        if self.dispatches == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.dispatches).unwrap_or(u32::MAX)
        }
    }

    /// Mean wall-clock time per executed task. Zero when nothing ran.
    pub fn time_per_task(&self) -> Duration {
        if self.tasks_executed == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.tasks_executed).unwrap_or(u32::MAX)
        }
    }
}

// Hand-written (not derived) because `Duration` has no vendored serde
// impl: `elapsed` encodes as exact `{secs, nanos}` integers so reports
// round-trip bit-identically instead of through a lossy float.
impl Serialize for RunReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "elapsed_secs".to_string(),
                Serialize::to_value(&self.elapsed.as_secs()),
            ),
            (
                "elapsed_nanos".to_string(),
                Serialize::to_value(&self.elapsed.subsec_nanos()),
            ),
            (
                "tasks_executed".to_string(),
                Serialize::to_value(&self.tasks_executed),
            ),
            (
                "dispatches".to_string(),
                Serialize::to_value(&self.dispatches),
            ),
            (
                "num_workers".to_string(),
                Serialize::to_value(&self.num_workers),
            ),
        ])
    }
}

impl Deserialize for RunReport {
    fn from_value(v: &Value) -> Result<Self, FromValueError> {
        let secs: u64 = Deserialize::from_value(v.expect_field("elapsed_secs")?)?;
        let nanos: u32 = Deserialize::from_value(v.expect_field("elapsed_nanos")?)?;
        if nanos >= 1_000_000_000 {
            return Err(FromValueError::new(format!(
                "elapsed_nanos {nanos} is not a subsecond count"
            )));
        }
        Ok(RunReport {
            elapsed: Duration::new(secs, nanos),
            tasks_executed: Deserialize::from_value(v.expect_field("tasks_executed")?)?,
            dispatches: Deserialize::from_value(v.expect_field("dispatches")?)?,
            num_workers: Deserialize::from_value(v.expect_field("num_workers")?)?,
        })
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks in {:.3} ms via {} dispatches on {} workers",
            self.tasks_executed,
            self.elapsed.as_secs_f64() * 1e3,
            self.dispatches,
            self.num_workers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_dispatch_and_per_task_math() {
        let r = RunReport {
            elapsed: Duration::from_micros(1000),
            tasks_executed: 10,
            dispatches: 5,
            num_workers: 2,
        };
        assert_eq!(r.time_per_dispatch(), Duration::from_micros(200));
        assert_eq!(r.time_per_task(), Duration::from_micros(100));
    }

    #[test]
    fn zero_counts_do_not_divide_by_zero() {
        let r = RunReport {
            elapsed: Duration::from_micros(7),
            tasks_executed: 0,
            dispatches: 0,
            num_workers: 1,
        };
        assert_eq!(r.time_per_dispatch(), Duration::ZERO);
        assert_eq!(r.time_per_task(), Duration::ZERO);
    }

    #[test]
    fn serde_round_trip_preserves_elapsed_exactly() {
        let r = RunReport {
            elapsed: Duration::new(12, 345_678_901),
            tasks_executed: 42,
            dispatches: 17,
            num_workers: 8,
        };
        let back = RunReport::from_value(&r.to_value()).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn deserialize_rejects_overflowing_nanos() {
        let mut v = RunReport {
            elapsed: Duration::ZERO,
            tasks_executed: 0,
            dispatches: 0,
            num_workers: 1,
        }
        .to_value();
        if let Value::Object(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "elapsed_nanos" {
                    *val = Value::Number(2e9);
                }
            }
        }
        assert!(RunReport::from_value(&v).is_err());
    }

    #[test]
    fn display_mentions_counts() {
        let r = RunReport {
            elapsed: Duration::from_millis(2),
            tasks_executed: 4,
            dispatches: 3,
            num_workers: 2,
        };
        let s = r.to_string();
        assert!(s.contains("4 tasks"));
        assert!(s.contains("3 dispatches"));
    }
}
