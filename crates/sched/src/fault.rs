//! Deterministic fault injection for executor payloads.
//!
//! The harness mirrors the spirit of the device sanitizer: faults are a
//! *test oracle*, so every decision must replay exactly. A [`FaultPlan`]
//! decides whether a fault fires purely from `(task, attempt)` — never from
//! wall-clock time, thread identity, or scheduling order — so the same plan
//! produces the same fault sequence under any worker count or interleaving.
//! That keying is what makes the recovering executor's salvage set a
//! deterministic function of the plan (a property `gpasta sanitize` audits).
//!
//! [`FaultyWork`] wraps any [`TaskWork`] payload and consults a plan before
//! each attempt, translating fired faults into the failure modes the
//! recovering executor must contain: panics, transient errors (retryable),
//! delays (slow but correct), and detected wrong results (permanent).
//!
//! The plan is deliberately layer-agnostic: the executor keys it by
//! `(task, attempt)`, and the serve supervision layer reuses the same
//! schedule keyed by `(update index, recovery count)` to inject seeded
//! panics and delays into live sessions (`gpasta::serve`). Both layers
//! share the replay guarantee — a key either fires or it does not,
//! independent of threads and wall clock.

use crate::executor::TaskWork;
use crate::outcome::{RecoverableWork, TaskError};
use gpasta_check::sync::{AtomicU64, Ordering};
use gpasta_tdg::TaskId;
use std::collections::BTreeMap;
use std::time::Duration;

/// The classes of fault the harness can inject into a task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The payload panics mid-execution (models an assertion failure or an
    /// index out of bounds inside a propagation step).
    Panic,
    /// The payload fails with a retryable error and does *not* run (models
    /// a lost GPU launch or a spurious allocation failure). A later attempt
    /// may succeed if the plan does not fire again.
    Transient,
    /// The payload runs correctly but only after sleeping `micros`
    /// microseconds (models scheduling jitter; never fails).
    Delay {
        /// Sleep duration in microseconds before the payload runs.
        micros: u32,
    },
    /// The payload is detected to have produced a corrupt result (models a
    /// checksum mismatch). Permanent: retrying cannot help, so the task's
    /// partition is quarantined immediately.
    WrongResult,
}

impl std::str::FromStr for FaultKind {
    type Err = String;

    /// Parse a CLI fault-kind name. `delay` accepts an optional
    /// microsecond suffix: `delay:500`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "panic" => Ok(FaultKind::Panic),
            "transient" => Ok(FaultKind::Transient),
            "wrong_result" => Ok(FaultKind::WrongResult),
            "delay" => Ok(FaultKind::Delay { micros: 1_000 }),
            other => match other.strip_prefix("delay:") {
                Some(micros) => micros
                    .parse()
                    .map(|micros| FaultKind::Delay { micros })
                    .map_err(|e| format!("bad delay micros in `{other}`: {e}")),
                None => Err(format!(
                    "unknown fault kind `{other}`; expected panic, transient, \
                     wrong_result, delay, or delay:<micros>"
                )),
            },
        }
    }
}

/// SplitMix64 — tiny, high-quality mixer; enough for fault sampling and
/// avoids pulling the `rand` stack into this crate.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic injection schedule keyed by `(task, attempt)`.
///
/// Two sources compose:
///
/// * **targeted** faults registered with [`inject`](FaultPlan::inject) —
///   exact `(task, attempt)` hits for directed tests;
/// * a **seeded random rule** ([`random`](FaultPlan::random)) that fires on
///   a hash of `(seed, task, attempt)` with a given probability.
///
/// Targeted entries win over the random rule when both match. The plan
/// counts fired faults ([`fired`](FaultPlan::fired)) for reporting; the
/// counter is the only mutable state and does not influence decisions.
#[derive(Debug, Default)]
pub struct FaultPlan {
    targeted: BTreeMap<(u32, u32), FaultKind>,
    seed: u64,
    /// Fire probability of the random rule in [0, 1].
    rate: f64,
    kinds: Vec<FaultKind>,
    fired: AtomicU64,
}

impl Clone for FaultPlan {
    /// Clones the schedule; the fired counter restarts at zero (it is
    /// reporting state, not part of the deterministic decision).
    fn clone(&self) -> Self {
        FaultPlan {
            targeted: self.targeted.clone(),
            seed: self.seed,
            rate: self.rate,
            kinds: self.kinds.clone(),
            fired: AtomicU64::new(0),
        }
    }
}

impl FaultPlan {
    /// A plan that never fires. Running under it must be behaviourally
    /// identical to the non-recovering path.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan whose random rule fires with probability `rate` per attempt,
    /// choosing uniformly among `kinds`. Empty `kinds` or a non-positive
    /// `rate` yields a plan that never fires randomly.
    pub fn random(seed: u64, rate: f64, kinds: &[FaultKind]) -> Self {
        FaultPlan {
            targeted: BTreeMap::new(),
            seed,
            rate: rate.clamp(0.0, 1.0),
            kinds: kinds.to_vec(),
            fired: AtomicU64::new(0),
        }
    }

    /// Register a targeted fault: attempt `attempt` of `task` hits `kind`.
    pub fn inject(mut self, task: u32, attempt: u32, kind: FaultKind) -> Self {
        self.targeted.insert((task, attempt), kind);
        self
    }

    /// Register a batch of targeted faults (`(task, attempt, kind)`
    /// triples) — the session-supervision chaos harness builds its
    /// per-session plans from slices of these.
    pub fn with_targets(
        mut self,
        targets: impl IntoIterator<Item = (u32, u32, FaultKind)>,
    ) -> Self {
        for (task, attempt, kind) in targets {
            self.targeted.insert((task, attempt), kind);
        }
        self
    }

    /// The fault (if any) for attempt `attempt` of `task`. Pure: depends
    /// only on the plan and the key.
    pub fn fault_at(&self, task: u32, attempt: u32) -> Option<FaultKind> {
        if let Some(&k) = self.targeted.get(&(task, attempt)) {
            return Some(k);
        }
        if self.kinds.is_empty() || self.rate <= 0.0 {
            return None;
        }
        let h = splitmix64(self.seed ^ splitmix64((u64::from(task) << 32) | u64::from(attempt)));
        // 53 uniform bits -> [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.rate {
            let pick = splitmix64(h) as usize % self.kinds.len();
            Some(self.kinds[pick])
        } else {
            None
        }
    }

    /// Number of faults that have fired through [`FaultyWork`] so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    fn note_fired(&self) {
        self.fired.fetch_add(1, Ordering::Relaxed);
    }
}

/// A fault-injecting adapter: wraps a [`TaskWork`] payload and consults a
/// [`FaultPlan`] before every attempt.
///
/// With [`FaultPlan::none`] this is a zero-fault pass-through, which is how
/// the `fault_recovery` bench measures the recovering path's overhead.
#[derive(Debug)]
pub struct FaultyWork<'a, W: TaskWork> {
    inner: &'a W,
    plan: &'a FaultPlan,
}

impl<'a, W: TaskWork> FaultyWork<'a, W> {
    /// Wrap `inner` so its attempts are filtered through `plan`.
    pub fn new(inner: &'a W, plan: &'a FaultPlan) -> Self {
        FaultyWork { inner, plan }
    }
}

impl<W: TaskWork> RecoverableWork for FaultyWork<'_, W> {
    fn execute(&self, task: TaskId, attempt: u32) -> Result<(), TaskError> {
        match self.plan.fault_at(task.0, attempt) {
            None => {
                self.inner.execute(task);
                Ok(())
            }
            Some(kind) => {
                self.plan.note_fired();
                match kind {
                    FaultKind::Panic => {
                        panic!("injected fault: panic in task {task} (attempt {attempt})")
                    }
                    FaultKind::Transient => Err(TaskError::Transient(format!(
                        "injected transient fault (attempt {attempt})"
                    ))),
                    FaultKind::Delay { micros } => {
                        std::thread::sleep(Duration::from_micros(u64::from(micros)));
                        self.inner.execute(task);
                        Ok(())
                    }
                    FaultKind::WrongResult => Err(TaskError::Fatal(format!(
                        "injected wrong result detected (attempt {attempt})"
                    ))),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let plan = FaultPlan::none();
        for t in 0..100 {
            for a in 0..4 {
                assert_eq!(plan.fault_at(t, a), None);
            }
        }
        assert_eq!(plan.fired(), 0);
    }

    #[test]
    fn targeted_faults_hit_exactly() {
        let plan =
            FaultPlan::none()
                .inject(3, 0, FaultKind::Panic)
                .inject(3, 1, FaultKind::Transient);
        assert_eq!(plan.fault_at(3, 0), Some(FaultKind::Panic));
        assert_eq!(plan.fault_at(3, 1), Some(FaultKind::Transient));
        assert_eq!(plan.fault_at(3, 2), None);
        assert_eq!(plan.fault_at(2, 0), None);
    }

    #[test]
    fn random_rule_is_deterministic_and_rate_bounded() {
        let kinds = [FaultKind::Panic, FaultKind::Transient];
        let a = FaultPlan::random(42, 0.1, &kinds);
        let b = FaultPlan::random(42, 0.1, &kinds);
        let mut hits = 0usize;
        for t in 0..10_000u32 {
            let fa = a.fault_at(t, 0);
            assert_eq!(fa, b.fault_at(t, 0), "same seed must replay exactly");
            if fa.is_some() {
                hits += 1;
            }
        }
        // 10k Bernoulli(0.1) draws: expect ~1000, allow generous slack.
        assert!((600..1400).contains(&hits), "hit rate way off: {hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let kinds = [FaultKind::Transient];
        let a = FaultPlan::random(1, 0.2, &kinds);
        let b = FaultPlan::random(2, 0.2, &kinds);
        let differs = (0..1000u32).any(|t| a.fault_at(t, 0) != b.fault_at(t, 0));
        assert!(differs, "distinct seeds should produce distinct schedules");
    }

    #[test]
    fn attempts_are_independent_keys() {
        let kinds = [FaultKind::Transient];
        let plan = FaultPlan::random(7, 0.5, &kinds);
        // At 50% rate some task must fail on attempt 0 yet pass on attempt 1:
        // exactly the shape retries rely on.
        let recovers =
            (0..1000u32).any(|t| plan.fault_at(t, 0).is_some() && plan.fault_at(t, 1).is_none());
        assert!(recovers);
    }

    #[test]
    fn faulty_work_translates_kinds() {
        use gpasta_tdg::TaskId;
        let ran = AtomicU64::new(0);
        let payload = |_t: TaskId| {
            ran.fetch_add(1, Ordering::Relaxed);
        };
        let plan = FaultPlan::none()
            .inject(0, 0, FaultKind::Transient)
            .inject(1, 0, FaultKind::WrongResult)
            .inject(2, 0, FaultKind::Delay { micros: 1 });
        let work = FaultyWork::new(&payload, &plan);
        assert!(matches!(
            work.execute(TaskId(0), 0),
            Err(TaskError::Transient(_))
        ));
        assert!(matches!(
            work.execute(TaskId(1), 0),
            Err(TaskError::Fatal(_))
        ));
        assert_eq!(ran.load(Ordering::Relaxed), 0, "failed attempts skip work");
        assert!(work.execute(TaskId(2), 0).is_ok());
        assert!(work.execute(TaskId(0), 1).is_ok(), "retry clears transient");
        assert_eq!(ran.load(Ordering::Relaxed), 2);
        assert_eq!(plan.fired(), 3);
    }

    #[test]
    fn kind_names_parse_and_reject() {
        assert_eq!("panic".parse(), Ok(FaultKind::Panic));
        assert_eq!("transient".parse(), Ok(FaultKind::Transient));
        assert_eq!("wrong_result".parse(), Ok(FaultKind::WrongResult));
        assert_eq!("delay".parse(), Ok(FaultKind::Delay { micros: 1_000 }));
        assert_eq!("delay:250".parse(), Ok(FaultKind::Delay { micros: 250 }));
        assert!("explode".parse::<FaultKind>().is_err());
        assert!("delay:lots".parse::<FaultKind>().is_err());
    }

    #[test]
    fn batch_targets_and_clone_replay_identically() {
        let plan = FaultPlan::random(9, 0.05, &[FaultKind::Transient])
            .with_targets([(1, 0, FaultKind::Panic), (2, 1, FaultKind::Transient)]);
        let copy = plan.clone();
        for t in 0..500u32 {
            for a in 0..3 {
                assert_eq!(plan.fault_at(t, a), copy.fault_at(t, a));
            }
        }
        assert_eq!(copy.fault_at(1, 0), Some(FaultKind::Panic));
        assert_eq!(copy.fired(), 0, "clone restarts the fired counter");
    }

    #[test]
    fn faulty_work_panics_on_panic_fault() {
        let payload = |_t: TaskId| {};
        let plan = FaultPlan::none().inject(5, 0, FaultKind::Panic);
        let work = FaultyWork::new(&payload, &plan);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = work.execute(TaskId(5), 0);
        }));
        assert!(caught.is_err());
    }
}
