//! Deterministic makespan simulation.
//!
//! Wall-clock measurements depend on the host's core count; the paper's
//! parallelism arguments (GDCA's V-shape in Figure 8, G-PASTA's higher
//! post-partitioning TDG speedup) only materialise with multiple workers.
//! This module complements the real executor with a classic list-scheduling
//! *simulator*: tasks run on `workers` virtual workers, each dispatch costs
//! `dispatch_overhead_ns`, and a task's runtime is its estimated weight.
//! The result is deterministic and machine-independent, so benchmark shapes
//! can be reproduced on any host (including single-core CI).

use gpasta_tdg::{TaskId, Tdg};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of a makespan simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// Simulated completion time of the whole TDG (ns).
    pub makespan_ns: f64,
    /// Tasks dispatched (equals the TDG's task count).
    pub dispatches: usize,
    /// Virtual workers used.
    pub workers: usize,
}

/// Simulate executing `tdg` on `workers` virtual workers.
///
/// Greedy list scheduling: when a worker frees up it takes the ready task
/// with the smallest id (deterministic tie-break), pays
/// `dispatch_overhead_ns`, then runs the task for its weight. Dependencies
/// release at the predecessor's finish time. This is the standard Graham
/// list-scheduling model — within 2× of optimal, and exactly the regime
/// the paper's scheduling-cost argument lives in.
///
/// # Panics
///
/// Panics if `workers == 0`.
pub fn simulate_makespan(tdg: &Tdg, workers: usize, dispatch_overhead_ns: f64) -> SimReport {
    assert!(workers > 0, "need at least one virtual worker");
    let n = tdg.num_tasks();
    if n == 0 {
        return SimReport {
            makespan_ns: 0.0,
            dispatches: 0,
            workers,
        };
    }

    // Event-driven simulation. Two heaps: worker free times, and ready
    // tasks keyed by (release time, id).
    let mut dep = tdg.in_degrees();
    // Ready heap: Reverse((release_time_bits, task)).
    let mut ready: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    for t in 0..n as u32 {
        if dep[t as usize] == 0 {
            ready.push(Reverse((0, t)));
        }
    }
    // Worker heap: Reverse(free_time_bits).
    let mut free: BinaryHeap<Reverse<u64>> = (0..workers).map(|_| Reverse(0u64)).collect();

    let bits = |x: f64| -> u64 { x.max(0.0).to_bits() };
    let unbits = f64::from_bits;

    let mut makespan = 0.0f64;
    let mut completed = 0usize;
    while let Some(Reverse((release_bits, t))) = ready.pop() {
        let release = unbits(release_bits);
        let Reverse(worker_free_bits) = free.pop().expect("workers never exhausted");
        let start = unbits(worker_free_bits).max(release) + dispatch_overhead_ns;
        let finish = start + f64::from(tdg.weight(TaskId(t)));
        free.push(Reverse(bits(finish)));
        makespan = makespan.max(finish);
        completed += 1;

        for &s in tdg.successors(TaskId(t)) {
            dep[s as usize] -= 1;
            if dep[s as usize] == 0 {
                ready.push(Reverse((bits(finish), s)));
            }
        }
    }
    debug_assert_eq!(completed, n, "DAG invariant: every task runs");

    SimReport {
        makespan_ns: makespan,
        dispatches: n,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_tdg::TdgBuilder;

    fn weighted_chain(weights: &[f32]) -> Tdg {
        let mut b = TdgBuilder::new(weights.len());
        for i in 0..weights.len() - 1 {
            b.add_edge(TaskId(i as u32), TaskId(i as u32 + 1));
        }
        for (i, &w) in weights.iter().enumerate() {
            b.set_weight(TaskId(i as u32), w);
        }
        b.build().expect("chain DAG")
    }

    #[test]
    fn chain_makespan_is_sum_plus_overheads() {
        let tdg = weighted_chain(&[10.0, 20.0, 30.0]);
        let r = simulate_makespan(&tdg, 4, 5.0);
        assert_eq!(r.makespan_ns, 10.0 + 20.0 + 30.0 + 3.0 * 5.0);
        assert_eq!(r.dispatches, 3);
    }

    #[test]
    fn independent_tasks_parallelise() {
        let mut b = TdgBuilder::new(8);
        for t in 0..8u32 {
            b.set_weight(TaskId(t), 100.0);
        }
        let tdg = b.build().expect("edgeless");
        let serial = simulate_makespan(&tdg, 1, 0.0).makespan_ns;
        let parallel = simulate_makespan(&tdg, 8, 0.0).makespan_ns;
        assert_eq!(serial, 800.0);
        assert_eq!(parallel, 100.0);
    }

    #[test]
    fn overhead_dominates_tiny_tasks() {
        let mut b = TdgBuilder::new(1000);
        for t in 0..1000u32 {
            b.set_weight(TaskId(t), 1.0);
        }
        let tdg = b.build().expect("edgeless");
        let cheap = simulate_makespan(&tdg, 4, 0.0).makespan_ns;
        let costly = simulate_makespan(&tdg, 4, 100.0).makespan_ns;
        assert!(
            costly > 20.0 * cheap,
            "dispatch cost must dominate: {costly} vs {cheap}"
        );
    }

    #[test]
    fn more_workers_never_hurt() {
        let mut b = TdgBuilder::new(60);
        for l in 1..6usize {
            for i in 0..10usize {
                let v = (l * 10 + i) as u32;
                b.add_edge(TaskId(((l - 1) * 10 + (i * 3) % 10) as u32), TaskId(v));
            }
        }
        let tdg = b.build().expect("layered");
        let w1 = simulate_makespan(&tdg, 1, 10.0).makespan_ns;
        let w4 = simulate_makespan(&tdg, 4, 10.0).makespan_ns;
        let w16 = simulate_makespan(&tdg, 16, 10.0).makespan_ns;
        assert!(w4 <= w1);
        assert!(w16 <= w4 + 1e-9);
    }

    #[test]
    fn empty_graph() {
        let tdg = TdgBuilder::new(0).build().expect("empty");
        let r = simulate_makespan(&tdg, 2, 10.0);
        assert_eq!(r.makespan_ns, 0.0);
        assert_eq!(r.dispatches, 0);
    }

    #[test]
    fn deterministic() {
        let mut b = TdgBuilder::new(50);
        for i in 0..49u32 {
            if i % 3 != 0 {
                b.add_edge(TaskId(i), TaskId(i + 1));
            }
        }
        let tdg = b.build().expect("DAG");
        let a = simulate_makespan(&tdg, 3, 7.0);
        let b2 = simulate_makespan(&tdg, 3, 7.0);
        assert_eq!(a, b2);
    }

    #[test]
    #[should_panic(expected = "at least one virtual worker")]
    fn zero_workers_panics() {
        let tdg = TdgBuilder::new(1).build().expect("one");
        let _ = simulate_makespan(&tdg, 0, 0.0);
    }
}
