//! Bounded-time recovering runners: wall-clock deadlines, cooperative
//! cancellation, and a hung-task watchdog on top of the fault-tolerant
//! wavefront from `executor.rs`.
//!
//! The bounded runners keep the PR 3 recovery contract intact — poison is
//! still the exact forward closure of permanently failed units, worker-count
//! independent — and add a third, disjoint unit class: *unfinished*. When
//! the budget expires or a [`CancelToken`] fires, the scheduler stops
//! *admitting* units (already-running payloads finish normally) and drains
//! the remaining wavefront administratively: each drained unit either
//! inherits poison from a failed predecessor or is marked unfinished. The
//! drain preserves the dependency-counting discipline, so the unfinished set
//! is exactly the forward closure of the unadmitted frontier minus the
//! poison cone — which is what lets `gpasta-sta` re-run exactly
//! `poisoned ∪ unfinished` later and converge to the bit-identical full
//! analysis.
//!
//! The watchdog is a sibling thread inside the same scope. Workers publish
//! their in-flight unit in a per-worker slot (`(unit+1) << 32 | start_µs`);
//! the watchdog polls those slots at a fraction of the stall window and
//! *claims* any unit in flight longer than the window via a per-unit state
//! CAS (`pending → stalled`). The claim loser is simply whichever side the
//! CAS rejects: if the worker finishes first the watchdog backs off; if the
//! watchdog wins it records a [`TaskError::Stalled`] failure, poisons the
//! unit's forward closure, and advances the completion count so the
//! wavefront keeps flowing around the hole. A *finite* stall therefore
//! completes degraded within ~2× the window; a truly infinite hang still
//! pins its worker thread (threads cannot be killed safely) — that is what
//! the crash-safe checkpoint/resume path is for.
//!
//! Budget polling happens once per unit admission: one `Instant::now()`
//! plus one atomic load. Unbounded runs keep using the original runners and
//! pay nothing.

use crate::executor::{Executor, RecoveryState, TaskWork};
use crate::outcome::{RecoverableWork, RetryPolicy, RunOutcome, StopCause, TaskError};
use crate::report::RunReport;
use crossbeam_deque::{Injector, Stealer, Worker};
use crossbeam_utils::Backoff;
use gpasta_check::sync::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use gpasta_tdg::{CancelObserver, CancelToken, PartitionId, QuotientTdg, TaskId, Tdg};
use std::time::{Duration, Instant};

/// The time bounds attached to one bounded run. All three knobs are
/// optional and independent; [`RunBudget::unbounded`] makes the bounded
/// runners behave like their unbounded counterparts.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Wall-clock budget for the run. When it expires the scheduler stops
    /// admitting units and drains the rest as *unfinished*
    /// ([`StopCause::DeadlineExpired`]).
    pub deadline: Option<Duration>,
    /// Cooperative cancellation handle. A [`CancelToken::cancel`] issued
    /// during the run stops admission at the next unit boundary
    /// ([`StopCause::Cancelled`]). The run observes the token's generation
    /// at start, so cancels issued *before* the run are ignored.
    pub cancel: Option<CancelToken>,
    /// Hung-task watchdog: a unit in flight longer than this window is
    /// claimed as [`TaskError::Stalled`] and its forward closure poisoned,
    /// so the run completes (degraded) instead of wedging. Enabling this
    /// always uses the work-stealing runner (the watchdog needs its own
    /// thread), even with one worker.
    pub stall_window: Option<Duration>,
}

impl RunBudget {
    /// No deadline, no cancellation, no watchdog.
    pub fn unbounded() -> Self {
        RunBudget::default()
    }

    /// Set the wall-clock budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Enable the hung-task watchdog with the given stall window.
    pub fn with_stall_window(mut self, window: Duration) -> Self {
        self.stall_window = Some(window);
        self
    }

    /// `true` when no bound is set: the bounded runners then behave
    /// identically to the unbounded ones (modulo one deadline poll per
    /// unit, which is how the `deadline_overhead` bench pins the cost).
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none() && self.stall_window.is_none()
    }

    fn observe_cancel(&self) -> Option<CancelObserver> {
        self.cancel.as_ref().map(CancelToken::observe)
    }
}

/// Raw result of a bounded wavefront: per-unit poison and unfinished flags
/// plus why admission stopped.
struct BoundedRun {
    dispatches: u64,
    poisoned: Vec<bool>,
    unfinished: Vec<bool>,
    stop: StopCause,
}

impl Executor {
    /// Bounded variant of
    /// [`run_tdg_recovering`](Executor::run_tdg_recovering): same recovery
    /// contract, plus `budget`'s deadline / cancellation / watchdog. On an
    /// early stop the returned outcome's `unfinished_tasks` is exactly the
    /// forward closure of the unadmitted units (minus the poison cone) and
    /// [`RunOutcome::stop`] says why; with an unbounded budget the result
    /// is behaviourally identical to the unbounded runner.
    pub fn run_tdg_recovering_bounded<W: RecoverableWork>(
        &self,
        tdg: &Tdg,
        work: &W,
        policy: &RetryPolicy,
        budget: &RunBudget,
    ) -> RunOutcome {
        let n = tdg.num_tasks();
        let start = Instant::now();
        let deadline = budget.deadline.map(|d| start + d);
        let cancel = budget.observe_cancel();
        let state = RecoveryState::new(policy);
        let run_unit = |t: u32| state.attempt_task(work, t, t);
        let run = if self.num_workers() == 1 && budget.stall_window.is_none() {
            run_sequential_bounded(
                n,
                &tdg.in_degrees(),
                |t| tdg.successors(TaskId(t)),
                run_unit,
                deadline,
                cancel.as_ref(),
            )
        } else {
            run_stealing_bounded(
                self.num_workers(),
                n,
                &tdg.in_degrees(),
                &|t| tdg.successors(TaskId(t)),
                &run_unit,
                &|u| u,
                deadline,
                cancel.as_ref(),
                budget.stall_window,
                &state,
            )
        };
        let poisoned_units: Vec<u32> = (0..n as u32)
            .filter(|&t| run.poisoned[t as usize])
            .collect();
        let unfinished_units: Vec<u32> = (0..n as u32)
            .filter(|&t| run.unfinished[t as usize])
            .collect();
        let salvaged = n - poisoned_units.len() - unfinished_units.len();
        let (failures, retries) = state.into_parts();
        RunOutcome {
            report: RunReport {
                elapsed: start.elapsed(),
                tasks_executed: salvaged,
                dispatches: run.dispatches,
                num_workers: self.num_workers(),
            },
            salvaged_tasks: salvaged,
            poisoned_tasks: poisoned_units.clone(),
            poisoned_units,
            unfinished_tasks: unfinished_units.clone(),
            unfinished_units,
            failures,
            retries,
            stop: run.stop,
        }
    }

    /// Bounded variant of
    /// [`run_partitioned_recovering`](Executor::run_partitioned_recovering):
    /// the dispatch (and budget-polling) unit is the quotient node, so
    /// cancellation and deadline expiry act at partition boundaries and an
    /// unfinished partition contributes all its member tasks to
    /// `unfinished_tasks`.
    pub fn run_partitioned_recovering_bounded<W: RecoverableWork>(
        &self,
        quotient: &QuotientTdg,
        work: &W,
        policy: &RetryPolicy,
        budget: &RunBudget,
    ) -> RunOutcome {
        let q = quotient.graph();
        let np = q.num_tasks();
        let total_tasks = quotient.num_tasks();
        let start = Instant::now();
        let deadline = budget.deadline.map(|d| start + d);
        let cancel = budget.observe_cancel();
        let state = RecoveryState::new(policy);
        let run_unit = |p: u32| {
            for &t in quotient.execution_order(PartitionId(p)) {
                if !state.attempt_task(work, p, t) {
                    return false;
                }
            }
            true
        };
        let repr_task = |p: u32| {
            quotient
                .execution_order(PartitionId(p))
                .first()
                .copied()
                .unwrap_or(p)
        };
        let run = if self.num_workers() == 1 && budget.stall_window.is_none() {
            run_sequential_bounded(
                np,
                &q.in_degrees(),
                |p| q.successors(TaskId(p)),
                run_unit,
                deadline,
                cancel.as_ref(),
            )
        } else {
            run_stealing_bounded(
                self.num_workers(),
                np,
                &q.in_degrees(),
                &|p| q.successors(TaskId(p)),
                &run_unit,
                &repr_task,
                deadline,
                cancel.as_ref(),
                budget.stall_window,
                &state,
            )
        };
        let member_tasks = |units: &[u32]| -> Vec<u32> {
            let mut tasks: Vec<u32> = units
                .iter()
                .flat_map(|&p| quotient.execution_order(PartitionId(p)).iter().copied())
                .collect();
            tasks.sort_unstable();
            tasks
        };
        let poisoned_units: Vec<u32> = (0..np as u32)
            .filter(|&p| run.poisoned[p as usize])
            .collect();
        let unfinished_units: Vec<u32> = (0..np as u32)
            .filter(|&p| run.unfinished[p as usize])
            .collect();
        let poisoned_tasks = member_tasks(&poisoned_units);
        let unfinished_tasks = member_tasks(&unfinished_units);
        let salvaged = total_tasks - poisoned_tasks.len() - unfinished_tasks.len();
        let (failures, retries) = state.into_parts();
        RunOutcome {
            report: RunReport {
                elapsed: start.elapsed(),
                tasks_executed: salvaged,
                dispatches: run.dispatches,
                num_workers: self.num_workers(),
            },
            salvaged_tasks: salvaged,
            poisoned_tasks,
            poisoned_units,
            unfinished_tasks,
            unfinished_units,
            failures,
            retries,
            stop: run.stop,
        }
    }

    /// Bounded, recovering plain-TDG run for infallible payloads: lifts a
    /// [`TaskWork`] payload (no faults, no retries) into the bounded
    /// runner. Convenience for callers that only want deadline /
    /// cancellation semantics.
    pub fn run_tdg_bounded<W: TaskWork>(
        &self,
        tdg: &Tdg,
        work: &W,
        budget: &RunBudget,
    ) -> RunOutcome {
        let lifted = |t: TaskId, _attempt: u32| -> Result<(), TaskError> {
            work.execute(t);
            Ok(())
        };
        self.run_tdg_recovering_bounded(tdg, &lifted, &RetryPolicy::no_retries(), budget)
    }
}

const STOP_RUNNING: u8 = 0;
const STOP_DEADLINE: u8 = 1;
const STOP_CANCELLED: u8 = 2;

fn stop_cause(code: u8) -> StopCause {
    match code {
        STOP_DEADLINE => StopCause::DeadlineExpired,
        STOP_CANCELLED => StopCause::Cancelled,
        _ => StopCause::Completed,
    }
}

/// Poll the budget once: returns the stop code to set (0 = keep running).
/// With no deadline and no cancel observer this is two register tests —
/// an unbounded run touches neither the clock nor any shared state here.
#[inline]
fn poll_budget(deadline: Option<Instant>, cancel: Option<&CancelObserver>) -> u8 {
    if cancel.is_some_and(CancelObserver::is_cancelled) {
        STOP_CANCELLED
    } else if deadline.is_some_and(|d| Instant::now() >= d) {
        STOP_DEADLINE
    } else {
        STOP_RUNNING
    }
}

/// Single-threaded bounded recovering wavefront.
///
/// Before admitting each unit the budget is polled; once it trips, the
/// remaining wavefront *drains*: poisoned units keep propagating poison
/// (their state was final before the stop) and everything else is marked
/// unfinished, with dependency counting intact so every unit is visited
/// exactly once and the drain terminates.
fn run_sequential_bounded<'a, S, R>(
    n: usize,
    in_degrees: &[u32],
    successors: S,
    run_unit: R,
    deadline: Option<Instant>,
    cancel: Option<&CancelObserver>,
) -> BoundedRun
where
    S: Fn(u32) -> &'a [u32],
    R: Fn(u32) -> bool,
{
    let mut poisoned = vec![false; n];
    let mut unfinished = vec![false; n];
    let mut dep: Vec<u32> = in_degrees.to_vec();
    let mut ready: Vec<u32> = (0..n as u32).filter(|&t| dep[t as usize] == 0).collect();
    let mut dispatches = 0u64;
    let mut stop = STOP_RUNNING;
    while let Some(t) = ready.pop() {
        if stop == STOP_RUNNING {
            stop = poll_budget(deadline, cancel);
        }
        if stop != STOP_RUNNING {
            // Drain: never admit. Poison (decided before the stop) still
            // propagates; everything else becomes unfinished.
            let was_poisoned = poisoned[t as usize];
            if !was_poisoned {
                unfinished[t as usize] = true;
            }
            for &s in successors(t) {
                if was_poisoned {
                    poisoned[s as usize] = true;
                }
                dep[s as usize] -= 1;
                if dep[s as usize] == 0 {
                    ready.push(s);
                }
            }
            continue;
        }
        dispatches += 1;
        let ok = !poisoned[t as usize] && run_unit(t);
        if !ok {
            poisoned[t as usize] = true;
        }
        for &s in successors(t) {
            if !ok {
                poisoned[s as usize] = true;
            }
            dep[s as usize] -= 1;
            if dep[s as usize] == 0 {
                ready.push(s);
            }
        }
    }
    BoundedRun {
        dispatches,
        poisoned,
        unfinished,
        stop: stop_cause(stop),
    }
}

/// Encode worker `w`'s in-flight unit for the watchdog: `(unit+1) << 32`
/// ored with the start time in microseconds since run start, truncated to
/// `u32`. Zero means idle. The truncation wraps every ~71.6 minutes; a
/// stall spanning a wrap is detected one poll late at worst because ages
/// are computed with wrapping subtraction in the same 32-bit domain.
#[inline]
fn encode_inflight(unit: u32, started_micros: u32) -> u64 {
    (u64::from(unit) + 1) << 32 | u64::from(started_micros)
}

const UNIT_PENDING: u8 = 0;
const UNIT_DONE: u8 = 1;
const UNIT_STALLED: u8 = 2;

/// Work-stealing bounded recovering wavefront with an optional watchdog.
///
/// Per-unit completion is arbitrated by a `pending → done|stalled` CAS so
/// the worker that ran a unit and the watchdog that claimed it stalled can
/// never both account for it. The CAS winner performs the unit's poison
/// publication, successor decrements, and completion increment; the loser
/// discards its result. Poison is always stored (`Release`) before the
/// dependency decrement (`AcqRel`) that can ready a successor, so the
/// inherited-poison check (`Acquire`) observes every parent failure — the
/// same ordering argument as the unbounded recovering runner.
#[allow(clippy::too_many_arguments)]
fn run_stealing_bounded<'a, S, R, P>(
    workers: usize,
    n: usize,
    in_degrees: &[u32],
    successors: &S,
    run_unit: &R,
    repr_task: &P,
    deadline: Option<Instant>,
    cancel: Option<&CancelObserver>,
    stall_window: Option<Duration>,
    state: &RecoveryState<'_>,
) -> BoundedRun
where
    S: Fn(u32) -> &'a [u32] + Sync,
    R: Fn(u32) -> bool + Sync,
    P: Fn(u32) -> u32 + Sync,
{
    if n == 0 {
        return BoundedRun {
            dispatches: 0,
            poisoned: Vec::new(),
            unfinished: Vec::new(),
            stop: StopCause::Completed,
        };
    }
    let run_start = Instant::now();
    // Watchdog bookkeeping (in-flight slots, per-unit claim states, and the
    // per-unit clock read that stamps them) is only paid when a stall window
    // is armed; without one, no other claimant exists and the admission path
    // stays as lean as the unbounded runner's.
    let watching = stall_window.is_some();
    let dep: Vec<AtomicU32> = in_degrees.iter().map(|&d| AtomicU32::new(d)).collect();
    let poisoned: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let unfinished: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let unit_state: Vec<AtomicU8> = (0..if watching { n } else { 0 })
        .map(|_| AtomicU8::new(UNIT_PENDING))
        .collect();
    let inflight: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let injector = Injector::new();
    for t in 0..n as u32 {
        if dep[t as usize].load(Ordering::Relaxed) == 0 {
            injector.push(t);
        }
    }
    let completed = AtomicUsize::new(0);
    let dispatches = AtomicU64::new(0);
    let stop = AtomicU8::new(STOP_RUNNING);

    let locals: Vec<Worker<u32>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<u32>> = locals.iter().map(Worker::stealer).collect();

    std::thread::scope(|scope| {
        for (w, local) in locals.into_iter().enumerate() {
            let dep = &dep;
            let poisoned = &poisoned;
            let unfinished = &unfinished;
            let unit_state = &unit_state;
            let inflight = &inflight;
            let injector = &injector;
            let stealers = &stealers;
            let completed = &completed;
            let dispatches = &dispatches;
            let stop = &stop;
            scope.spawn(move || {
                let backoff = Backoff::new();
                loop {
                    let unit = local.pop().or_else(|| {
                        std::iter::repeat_with(|| {
                            injector.steal_batch_and_pop(&local).or_else(|| {
                                stealers
                                    .iter()
                                    .enumerate()
                                    .filter(|&(i, _)| i != w)
                                    .map(|(_, s)| s.steal())
                                    .collect()
                            })
                        })
                        .find(|s| !s.is_retry())
                        .and_then(|s| s.success())
                    });
                    match unit {
                        Some(t) => {
                            backoff.reset();
                            let mut cause = stop.load(Ordering::Acquire); // hb: stop-latch
                            if cause == STOP_RUNNING {
                                cause = poll_budget(deadline, cancel);
                                if cause != STOP_RUNNING {
                                    // First observer wins; losers just see
                                    // a non-zero stop and drain too.
                                    let _ = stop.compare_exchange(
                                        STOP_RUNNING,
                                        cause,
                                        Ordering::AcqRel, // hb: stop-latch
                                        Ordering::Acquire,
                                    );
                                }
                            }
                            if cause != STOP_RUNNING {
                                // Drain without admitting (see the
                                // sequential runner for the semantics).
                                // hb: poison-publish
                                let was_poisoned = poisoned[t as usize].load(Ordering::Acquire);
                                if !was_poisoned {
                                    // Only read after the scope join (which
                                    // synchronises); no release edge needed.
                                    unfinished[t as usize].store(true, Ordering::Relaxed);
                                }
                                for &s in successors(t) {
                                    if was_poisoned {
                                        // hb: poison-publish
                                        poisoned[s as usize].store(true, Ordering::Release);
                                    }
                                    // hb: dep-handoff
                                    if dep[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                        local.push(s);
                                    }
                                }
                                completed.fetch_add(1, Ordering::Release); // hb: run-complete
                                continue;
                            }
                            dispatches.fetch_add(1, Ordering::Relaxed);
                            if watching {
                                let started = run_start.elapsed().as_micros() as u32;
                                // hb: inflight-publish
                                inflight[w].store(encode_inflight(t, started), Ordering::Release);
                            }
                            // hb: poison-publish
                            let ok = !poisoned[t as usize].load(Ordering::Acquire) && run_unit(t);
                            if watching {
                                // hb: inflight-publish
                                inflight[w].store(0, Ordering::Release);
                                // Success must be AcqRel: the winner's claim
                                // publishes the unit's result to whoever
                                // observes the DONE state (the model checker
                                // catches a Relaxed downgrade here).
                                if unit_state[t as usize]
                                    .compare_exchange(
                                        UNIT_PENDING,
                                        UNIT_DONE,
                                        Ordering::AcqRel, // hb: unit-claim
                                        Ordering::Acquire,
                                    )
                                    .is_err()
                                {
                                    // The watchdog claimed this unit stalled
                                    // and already did its bookkeeping; the
                                    // late result is discarded.
                                    continue;
                                }
                            }
                            if !ok {
                                // hb: poison-publish
                                poisoned[t as usize].store(true, Ordering::Release);
                            }
                            for &s in successors(t) {
                                if !ok {
                                    // hb: poison-publish
                                    poisoned[s as usize].store(true, Ordering::Release);
                                }
                                // hb: dep-handoff
                                if dep[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    local.push(s);
                                }
                            }
                            completed.fetch_add(1, Ordering::Release); // hb: run-complete
                        }
                        None => {
                            // hb: run-complete
                            if completed.load(Ordering::Acquire) == n {
                                break;
                            }
                            backoff.snooze();
                        }
                    }
                }
            });
        }

        if let Some(window) = stall_window {
            let dep = &dep;
            let poisoned = &poisoned;
            let unit_state = &unit_state;
            let inflight = &inflight;
            let injector = &injector;
            let completed = &completed;
            scope.spawn(move || {
                let window_us = window.as_micros().min(u128::from(u32::MAX / 2)) as u64;
                let poll = Duration::from_micros((window_us / 4).max(50));
                // hb: run-complete
                while completed.load(Ordering::Acquire) < n {
                    std::thread::sleep(poll);
                    // hb: run-complete
                    if completed.load(Ordering::Acquire) >= n {
                        break;
                    }
                    let now = run_start.elapsed().as_micros() as u32;
                    for slot in inflight {
                        let v = slot.load(Ordering::Acquire); // hb: inflight-publish
                        if v == 0 {
                            continue;
                        }
                        let unit = ((v >> 32) - 1) as u32;
                        let started = v as u32;
                        let age = u64::from(now.wrapping_sub(started));
                        if age <= window_us {
                            continue;
                        }
                        if unit_state[unit as usize]
                            .compare_exchange(
                                UNIT_PENDING,
                                UNIT_STALLED,
                                Ordering::AcqRel, // hb: unit-claim
                                Ordering::Acquire,
                            )
                            .is_err()
                        {
                            continue;
                        }
                        state.record(
                            unit,
                            repr_task(unit),
                            1,
                            TaskError::Stalled(format!(
                                "no progress within the {} µs stall window (in flight {} µs)",
                                window_us, age
                            )),
                        );
                        poisoned[unit as usize].store(true, Ordering::Release); // hb: poison-publish
                        for &s in successors(unit) {
                            poisoned[s as usize].store(true, Ordering::Release); // hb: poison-publish
                                                                                 // hb: dep-handoff
                            if dep[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                injector.push(s);
                            }
                        }
                        completed.fetch_add(1, Ordering::Release); // hb: run-complete
                    }
                }
            });
        }
    });

    BoundedRun {
        dispatches: dispatches.load(Ordering::Relaxed),
        poisoned: poisoned.into_iter().map(AtomicBool::into_inner).collect(),
        unfinished: unfinished.into_iter().map(AtomicBool::into_inner).collect(),
        stop: stop_cause(stop.into_inner()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, FaultyWork};
    use gpasta_tdg::TdgBuilder;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    fn chain(n: usize) -> Tdg {
        let mut b = TdgBuilder::new(n);
        for i in 1..n {
            b.add_edge(TaskId(i as u32 - 1), TaskId(i as u32));
        }
        b.build().expect("chain DAG")
    }

    fn layered(n_per_level: usize, levels: usize) -> Tdg {
        let n = n_per_level * levels;
        let mut b = TdgBuilder::new(n);
        for l in 1..levels {
            for i in 0..n_per_level {
                let v = (l * n_per_level + i) as u32;
                let u = ((l - 1) * n_per_level + (i * 7 + 3) % n_per_level) as u32;
                b.add_edge(TaskId(u), TaskId(v));
                let u2 = ((l - 1) * n_per_level + (i * 11 + 1) % n_per_level) as u32;
                b.add_edge(TaskId(u2), TaskId(v));
            }
        }
        b.build().expect("layered DAG")
    }

    /// Reference forward closure over raw TDG successors (BFS).
    fn closure_of(tdg: &Tdg, seeds: &[u32]) -> Vec<u32> {
        let mut seen = vec![false; tdg.num_tasks()];
        let mut stack: Vec<u32> = seeds.to_vec();
        for &s in seeds {
            seen[s as usize] = true;
        }
        while let Some(t) = stack.pop() {
            for &s in tdg.successors(TaskId(t)) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(s);
                }
            }
        }
        (0..tdg.num_tasks() as u32)
            .filter(|&t| seen[t as usize])
            .collect()
    }

    #[test]
    fn unbounded_budget_matches_unbounded_runner() {
        let tdg = layered(16, 8);
        let plan = FaultPlan::random(0xFA17, 0.02, &[FaultKind::WrongResult]);
        for workers in [1usize, 4] {
            let payload = |_t: TaskId| {};
            let work = FaultyWork::new(&payload, &plan);
            let exec = Executor::new(workers);
            let reference = exec.run_tdg_recovering(&tdg, &work, &RetryPolicy::no_retries());
            let bounded = exec.run_tdg_recovering_bounded(
                &tdg,
                &work,
                &RetryPolicy::no_retries(),
                &RunBudget::unbounded(),
            );
            assert_eq!(bounded.stop, StopCause::Completed);
            assert_eq!(bounded.poisoned_tasks, reference.poisoned_tasks);
            assert_eq!(bounded.salvaged_tasks, reference.salvaged_tasks);
            assert!(bounded.unfinished_tasks.is_empty());
        }
    }

    #[test]
    fn pre_expired_deadline_leaves_everything_unfinished() {
        let tdg = layered(8, 6);
        let ran = StdAtomicU64::new(0);
        for workers in [1usize, 3] {
            ran.store(0, Ordering::Relaxed);
            let work = |_t: TaskId, _a: u32| -> Result<(), TaskError> {
                ran.fetch_add(1, Ordering::Relaxed);
                Ok(())
            };
            let outcome = Executor::new(workers).run_tdg_recovering_bounded(
                &tdg,
                &work,
                &RetryPolicy::no_retries(),
                &RunBudget::unbounded().with_deadline(Duration::ZERO),
            );
            assert_eq!(
                outcome.stop,
                StopCause::DeadlineExpired,
                "workers={workers}"
            );
            assert_eq!(outcome.salvaged_tasks, 0);
            assert_eq!(
                outcome.unfinished_tasks,
                (0..tdg.num_tasks() as u32).collect::<Vec<_>>()
            );
            assert!(outcome.poisoned_tasks.is_empty());
            assert_eq!(ran.load(Ordering::Relaxed), 0, "nothing was admitted");
        }
    }

    #[test]
    fn deadline_mid_run_leaves_exactly_the_unadmitted_closure() {
        // A chain makes admission order deterministic; a slow payload
        // guarantees the deadline trips mid-run.
        let n = 32;
        let tdg = chain(n);
        let ran = parking_lot::Mutex::new(Vec::new());
        let work = |t: TaskId, _a: u32| -> Result<(), TaskError> {
            std::thread::sleep(Duration::from_millis(2));
            ran.lock().push(t.0);
            Ok(())
        };
        let outcome = Executor::new(1).run_tdg_recovering_bounded(
            &tdg,
            &work,
            &RetryPolicy::no_retries(),
            &RunBudget::unbounded().with_deadline(Duration::from_millis(10)),
        );
        assert_eq!(outcome.stop, StopCause::DeadlineExpired);
        let executed = ran.into_inner();
        assert!(!executed.is_empty(), "some prefix ran");
        assert!(executed.len() < n, "the deadline tripped mid-run");
        // Executed tasks are exactly the chain prefix; unfinished is the
        // forward closure of the first unadmitted task.
        let first_unadmitted = executed.len() as u32;
        assert_eq!(
            outcome.unfinished_tasks,
            closure_of(&tdg, &[first_unadmitted])
        );
        assert_eq!(outcome.salvaged_tasks, executed.len());
        // Partition: salvage ∪ unfinished = task set, poison empty.
        assert!(outcome.poisoned_tasks.is_empty());
        assert_eq!(outcome.salvaged_tasks + outcome.unfinished_tasks.len(), n);
    }

    #[test]
    fn cancellation_stops_admission_promptly() {
        let n = 64;
        let tdg = chain(n);
        let token = CancelToken::new();
        let cancel_after = 5u64;
        let count = StdAtomicU64::new(0);
        let token_ref = &token;
        let work = move |_t: TaskId, _a: u32| -> Result<(), TaskError> {
            if count.fetch_add(1, Ordering::Relaxed) + 1 == cancel_after {
                token_ref.cancel();
            }
            Ok(())
        };
        let outcome = Executor::new(1).run_tdg_recovering_bounded(
            &tdg,
            &work,
            &RetryPolicy::no_retries(),
            &RunBudget::unbounded().with_cancel(token.clone()),
        );
        assert_eq!(outcome.stop, StopCause::Cancelled);
        assert_eq!(
            outcome.salvaged_tasks, cancel_after as usize,
            "admission stops at the next unit boundary"
        );
        assert_eq!(outcome.unfinished_tasks.len(), n - cancel_after as usize);
    }

    #[test]
    fn stale_cancel_from_a_previous_run_is_ignored() {
        let tdg = chain(8);
        let token = CancelToken::new();
        token.cancel(); // fired before the run starts
        let work = |_t: TaskId, _a: u32| -> Result<(), TaskError> { Ok(()) };
        let outcome = Executor::new(2).run_tdg_recovering_bounded(
            &tdg,
            &work,
            &RetryPolicy::no_retries(),
            &RunBudget::unbounded().with_cancel(token),
        );
        assert_eq!(outcome.stop, StopCause::Completed);
        assert!(outcome.is_clean());
    }

    #[test]
    fn deadline_expiry_with_faults_keeps_sets_disjoint() {
        let tdg = layered(8, 16);
        let plan = FaultPlan::random(0xD1ED, 0.05, &[FaultKind::WrongResult, FaultKind::Panic]);
        for workers in [1usize, 4] {
            let slow = |_t: TaskId| {
                std::thread::sleep(Duration::from_micros(200));
            };
            let work = FaultyWork::new(&slow, &plan);
            let outcome = Executor::new(workers).run_tdg_recovering_bounded(
                &tdg,
                &work,
                &RetryPolicy::no_retries(),
                &RunBudget::unbounded().with_deadline(Duration::from_millis(3)),
            );
            let mut all: Vec<u32> = Vec::new();
            all.extend(&outcome.poisoned_tasks);
            all.extend(&outcome.unfinished_tasks);
            let before = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), before, "poisoned ∩ unfinished = ∅");
            assert_eq!(
                outcome.salvaged_tasks + before,
                tdg.num_tasks(),
                "salvage ∪ poisoned ∪ unfinished = task set (workers={workers})"
            );
        }
    }

    #[test]
    fn watchdog_claims_a_hung_unit_and_the_run_completes() {
        // Task 1 sleeps far beyond the stall window; the watchdog must
        // quarantine it (and its closure) while the rest completes.
        let tdg = layered(4, 4);
        let window = Duration::from_millis(5);
        let started = Instant::now();
        let work = |t: TaskId, _a: u32| -> Result<(), TaskError> {
            if t.0 == 1 {
                std::thread::sleep(Duration::from_millis(60));
            }
            Ok(())
        };
        let outcome = Executor::new(2).run_tdg_recovering_bounded(
            &tdg,
            &work,
            &RetryPolicy::no_retries(),
            &RunBudget::unbounded().with_stall_window(window),
        );
        assert_eq!(outcome.stop, StopCause::Completed, "the run must not hang");
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].unit, 1);
        assert!(
            matches!(outcome.failures[0].error, TaskError::Stalled(_)),
            "got {:?}",
            outcome.failures[0].error
        );
        assert_eq!(outcome.poisoned_tasks, closure_of(&tdg, &[1]));
        assert_eq!(
            outcome.salvaged_tasks,
            tdg.num_tasks() - outcome.poisoned_tasks.len()
        );
        // Detection latency: the stall must be claimed well before the
        // sleeping payload returns on its own. The run still joins the
        // sleeping thread (~60 ms), so bound the *claim*, not the join:
        // the claim happened iff the failure record exists, and the whole
        // run is bounded by the payload sleep plus slack.
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "run took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn watchdog_with_one_worker_still_detects_stalls() {
        let tdg = chain(6);
        let work = |t: TaskId, _a: u32| -> Result<(), TaskError> {
            if t.0 == 2 {
                std::thread::sleep(Duration::from_millis(40));
            }
            Ok(())
        };
        let outcome = Executor::new(1).run_tdg_recovering_bounded(
            &tdg,
            &work,
            &RetryPolicy::no_retries(),
            &RunBudget::unbounded().with_stall_window(Duration::from_millis(4)),
        );
        assert_eq!(outcome.stop, StopCause::Completed);
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].unit, 2);
        assert!(matches!(outcome.failures[0].error, TaskError::Stalled(_)));
        assert_eq!(outcome.poisoned_tasks, closure_of(&tdg, &[2]));
    }

    #[test]
    fn fast_payloads_never_trip_the_watchdog() {
        let tdg = layered(16, 8);
        let work = |_t: TaskId, _a: u32| -> Result<(), TaskError> { Ok(()) };
        let outcome = Executor::new(4).run_tdg_recovering_bounded(
            &tdg,
            &work,
            &RetryPolicy::no_retries(),
            &RunBudget::unbounded().with_stall_window(Duration::from_millis(200)),
        );
        assert!(outcome.is_clean(), "got {:?}", outcome.failures);
    }

    #[test]
    fn bounded_partitioned_run_respects_deadline_at_partition_boundaries() {
        use gpasta_tdg::Partition;
        // Chain 0..8 grouped into 4 partitions of 2.
        let tdg = chain(8);
        let p = Partition::new(vec![0, 0, 1, 1, 2, 2, 3, 3]);
        let q = QuotientTdg::build(&tdg, &p).expect("valid partition");
        let work = |_t: TaskId, _a: u32| -> Result<(), TaskError> {
            std::thread::sleep(Duration::from_millis(3));
            Ok(())
        };
        let outcome = Executor::new(1).run_partitioned_recovering_bounded(
            &q,
            &work,
            &RetryPolicy::no_retries(),
            &RunBudget::unbounded().with_deadline(Duration::from_millis(8)),
        );
        assert_eq!(outcome.stop, StopCause::DeadlineExpired);
        assert!(!outcome.unfinished_units.is_empty());
        // Unfinished units expand to whole member-task blocks of 2.
        assert_eq!(outcome.unfinished_tasks.len() % 2, 0);
        assert_eq!(
            outcome.salvaged_tasks + outcome.unfinished_tasks.len(),
            tdg.num_tasks()
        );
    }

    #[test]
    fn salvage_partition_is_worker_count_independent_under_cancel_free_budget() {
        let tdg = layered(24, 12);
        let plan = FaultPlan::random(0xFA17, 0.02, &[FaultKind::Panic, FaultKind::WrongResult]);
        let mut reference: Option<Vec<u32>> = None;
        for workers in [1usize, 2, 4] {
            let payload = |_t: TaskId| {};
            let work = FaultyWork::new(&payload, &plan);
            let outcome = Executor::new(workers).run_tdg_recovering_bounded(
                &tdg,
                &work,
                &RetryPolicy::no_retries(),
                &RunBudget::unbounded(),
            );
            assert!(outcome.unfinished_tasks.is_empty());
            match &reference {
                None => reference = Some(outcome.poisoned_tasks),
                Some(r) => assert_eq!(&outcome.poisoned_tasks, r, "workers={workers}"),
            }
        }
    }

    #[test]
    fn run_tdg_bounded_lifts_infallible_payloads() {
        let tdg = chain(5);
        let count = StdAtomicU64::new(0);
        let outcome = Executor::new(2).run_tdg_bounded(
            &tdg,
            &|_t: TaskId| {
                count.fetch_add(1, Ordering::Relaxed);
            },
            &RunBudget::unbounded(),
        );
        assert!(outcome.is_clean());
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }
}
