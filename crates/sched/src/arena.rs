//! Reusable graph-build structures for repeated (incremental) scheduling.
//!
//! [`Taskflow`](crate::Taskflow) reproduces OpenTimer's per-update
//! construction cost on purpose: one boxed closure and one owned adjacency
//! list per node, allocated from scratch every iteration. When the same
//! timer is updated thousands of times (the Fig. 7 workload), that
//! allocation churn is pure overhead — the graph *shape* changes, but the
//! buffers backing it could be recycled.
//!
//! [`FlowArena`] is the recycled counterpart: flat CSR-style buffers
//! (`Vec<u32>`) that [`FlowArena::load_tdg`] refills in place. Loading a
//! graph after a bigger one performs **zero** allocations; loading a bigger
//! one grows geometrically like any `Vec`. There is no per-node closure at
//! all — [`FlowArena::run`] takes the node payload as a single `FnMut`,
//! which is the piece the incremental fig7 mode pairs with a patched
//! partition cache.

use crate::report::RunReport;
use gpasta_tdg::{QuotientTdg, TaskId, Tdg};
use std::time::Instant;

/// Reusable flat buffers for building and running a task graph, amortising
/// graph-construction allocations across iterations.
#[derive(Debug, Default)]
pub struct FlowArena {
    /// CSR offsets into `succ`; `succ_off[n + 1]` entries for `n` nodes.
    succ_off: Vec<u32>,
    /// Concatenated successor lists.
    succ: Vec<u32>,
    /// In-degree per node (immutable template).
    indeg: Vec<u32>,
    /// Scratch dependency counters consumed by [`FlowArena::run`].
    dep: Vec<u32>,
    /// Scratch ready queue.
    ready: Vec<u32>,
}

impl FlowArena {
    /// An empty arena; buffers grow on first load and are recycled after.
    pub fn new() -> Self {
        FlowArena::default()
    }

    /// Number of nodes of the currently loaded graph.
    pub fn num_nodes(&self) -> usize {
        self.indeg.len()
    }

    /// Load the shape of `tdg`, reusing every buffer's capacity.
    pub fn load_tdg(&mut self, tdg: &Tdg) {
        let n = tdg.num_tasks();
        self.succ_off.clear();
        self.succ.clear();
        self.indeg.clear();
        self.succ_off.push(0);
        for t in 0..n as u32 {
            self.succ.extend_from_slice(tdg.successors(TaskId(t)));
            self.succ_off.push(self.succ.len() as u32);
            self.indeg.push(tdg.in_degree(TaskId(t)));
        }
    }

    /// Load the shape of a partitioned TDG: one node per partition.
    pub fn load_quotient(&mut self, quotient: &QuotientTdg) {
        self.load_tdg(quotient.graph());
    }

    /// Execute the loaded graph on the calling thread through a ready
    /// queue, calling `node_work` once per node in dependency order.
    /// Reuses the dependency-counter and ready-queue scratch buffers, so
    /// repeated runs over similar graphs allocate nothing.
    pub fn run(&mut self, mut node_work: impl FnMut(u32)) -> RunReport {
        let n = self.indeg.len();
        let start = Instant::now();
        self.dep.clear();
        self.dep.extend_from_slice(&self.indeg);
        self.ready.clear();
        self.ready
            .extend((0..n as u32).filter(|&t| self.dep[t as usize] == 0));
        let mut dispatches = 0u64;
        while let Some(t) = self.ready.pop() {
            dispatches += 1;
            node_work(t);
            let (lo, hi) = (
                self.succ_off[t as usize] as usize,
                self.succ_off[t as usize + 1] as usize,
            );
            for i in lo..hi {
                let s = self.succ[i] as usize;
                self.dep[s] -= 1;
                if self.dep[s] == 0 {
                    self.ready.push(s as u32);
                }
            }
        }
        debug_assert_eq!(dispatches as usize, n);
        RunReport {
            elapsed: start.elapsed(),
            tasks_executed: n,
            dispatches,
            num_workers: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_tdg::{Partition, TdgBuilder};

    fn diamond() -> Tdg {
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.build().expect("diamond DAG")
    }

    #[test]
    fn arena_runs_in_dependency_order() {
        let tdg = diamond();
        let mut arena = FlowArena::new();
        arena.load_tdg(&tdg);
        assert_eq!(arena.num_nodes(), 4);
        let mut order = Vec::new();
        let report = arena.run(|t| order.push(t));
        assert_eq!(report.dispatches, 4);
        let pos = |t: u32| order.iter().position(|&x| x == t).expect("ran");
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn arena_matches_taskflow_dispatch_counts_on_a_quotient() {
        let tdg = diamond();
        let quotient = QuotientTdg::build(&tdg, &Partition::new(vec![0, 1, 1, 2])).expect("valid");
        let mut arena = FlowArena::new();
        arena.load_quotient(&quotient);
        assert_eq!(arena.num_nodes(), 3);
        let report = arena.run(|_| {});
        assert_eq!(report.dispatches, 3, "one dispatch per partition");

        let tf_report = crate::Taskflow::from_quotient(&quotient, &|_t: TaskId| {}).run();
        assert_eq!(report.dispatches, tf_report.dispatches);
        assert_eq!(report.tasks_executed, tf_report.tasks_executed);
    }

    #[test]
    fn reloading_a_smaller_graph_reuses_capacity() {
        let big = {
            let mut b = TdgBuilder::new(64);
            for i in 1..64u32 {
                b.add_edge(TaskId(i - 1), TaskId(i));
            }
            b.build().expect("chain")
        };
        let mut arena = FlowArena::new();
        arena.load_tdg(&big);
        let cap_before = (
            arena.succ_off.capacity(),
            arena.succ.capacity(),
            arena.indeg.capacity(),
        );
        arena.run(|_| {});

        arena.load_tdg(&diamond());
        assert_eq!(arena.num_nodes(), 4);
        let report = arena.run(|_| {});
        assert_eq!(report.dispatches, 4);
        let cap_after = (
            arena.succ_off.capacity(),
            arena.succ.capacity(),
            arena.indeg.capacity(),
        );
        assert_eq!(cap_before, cap_after, "no buffer was reallocated");
    }

    #[test]
    fn empty_graph_runs_cleanly() {
        let tdg = TdgBuilder::new(0).build().expect("empty");
        let mut arena = FlowArena::new();
        arena.load_tdg(&tdg);
        let report = arena.run(|_| {});
        assert_eq!(report.dispatches, 0);
        assert_eq!(report.tasks_executed, 0);
    }

    #[test]
    fn repeated_runs_do_not_require_reload() {
        let tdg = diamond();
        let mut arena = FlowArena::new();
        arena.load_tdg(&tdg);
        for _ in 0..3 {
            let mut count = 0u32;
            arena.run(|_| count += 1);
            assert_eq!(count, 4);
        }
    }
}
