//! Materialised task graphs — the Taskflow-construction cost model.
//!
//! OpenTimer's `update_timing` does not hand a raw CSR graph to the
//! scheduler: it *builds a Taskflow graph*, allocating one task object
//! (closure + adjacency) per STA task. For multi-million-task TDGs that
//! construction dominates — Figure 1(a) of the paper attributes 59 % of
//! `update_timing` to building the TDG — and it is exactly the cost that
//! shrinks when the scheduler receives one node per *partition* instead of
//! one per task.
//!
//! [`Taskflow`] reproduces that model: [`Taskflow::from_tdg`] heap-allocates
//! a boxed closure and an owned successor list per task;
//! [`Taskflow::from_quotient`] allocates one node per partition whose
//! closure runs the member tasks in topological order.

use crate::executor::TaskWork;
use crate::report::RunReport;
use gpasta_tdg::{PartitionId, QuotientTdg, TaskId, Tdg};
use std::time::Instant;

type BoxedWork<'w> = Box<dyn Fn() + Send + Sync + 'w>;

struct Node<'w> {
    work: BoxedWork<'w>,
    successors: Vec<u32>,
    in_degree: u32,
}

/// A materialised task graph: one heap-allocated node per schedulable unit.
///
/// Borrowing the payload (`'w`) keeps construction honest — the cost is in
/// the per-node allocations and adjacency copies, not in cloning user data.
pub struct Taskflow<'w> {
    nodes: Vec<Node<'w>>,
}

impl<'w> Taskflow<'w> {
    /// Materialise one node per task of `tdg` (the unpartitioned flow).
    pub fn from_tdg<W: TaskWork + 'w>(tdg: &Tdg, work: &'w W) -> Self {
        let nodes = (0..tdg.num_tasks() as u32)
            .map(|t| Node {
                work: Box::new(move || work.execute(TaskId(t))) as BoxedWork<'w>,
                successors: tdg.successors(TaskId(t)).to_vec(),
                in_degree: tdg.in_degree(TaskId(t)),
            })
            .collect();
        Taskflow { nodes }
    }

    /// Materialise one node per *partition* of `quotient` (the partitioned
    /// flow): each node's closure runs its member tasks sequentially in
    /// topological order. This is the construction whose cost partitioning
    /// amortises.
    pub fn from_quotient<W: TaskWork + 'w>(quotient: &'w QuotientTdg, work: &'w W) -> Self {
        let q = quotient.graph();
        let nodes = (0..q.num_tasks() as u32)
            .map(|p| {
                let node = TaskId(p);
                Node {
                    work: Box::new(move || {
                        for &t in quotient.execution_order(PartitionId(p)) {
                            work.execute(TaskId(t));
                        }
                    }) as BoxedWork<'w>,
                    successors: q.successors(node).to_vec(),
                    in_degree: q.in_degree(node),
                }
            })
            .collect();
        Taskflow { nodes }
    }

    /// Number of schedulable nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Execute the graph on the calling thread through a ready queue,
    /// returning timing and dispatch counts.
    pub fn run(&self) -> RunReport {
        let n = self.nodes.len();
        let start = Instant::now();
        let mut dep: Vec<u32> = self.nodes.iter().map(|node| node.in_degree).collect();
        let mut ready: Vec<u32> = (0..n as u32).filter(|&t| dep[t as usize] == 0).collect();
        let mut dispatches = 0u64;
        while let Some(t) = ready.pop() {
            dispatches += 1;
            (self.nodes[t as usize].work)();
            for &s in &self.nodes[t as usize].successors {
                dep[s as usize] -= 1;
                if dep[s as usize] == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert_eq!(dispatches as usize, n);
        RunReport {
            elapsed: start.elapsed(),
            tasks_executed: n,
            dispatches,
            num_workers: 1,
        }
    }
}

impl std::fmt::Debug for Taskflow<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Taskflow")
            .field("num_nodes", &self.num_nodes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_tdg::{Partition, TdgBuilder};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn diamond() -> Tdg {
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.build().expect("diamond DAG")
    }

    #[test]
    fn taskflow_runs_every_task_once() {
        let tdg = diamond();
        let count = AtomicU32::new(0);
        let work = |_t: TaskId| {
            count.fetch_add(1, Ordering::Relaxed);
        };
        let tf = Taskflow::from_tdg(&tdg, &work);
        assert_eq!(tf.num_nodes(), 4);
        let report = tf.run();
        assert_eq!(count.load(Ordering::Relaxed), 4);
        assert_eq!(report.dispatches, 4);
    }

    #[test]
    fn taskflow_respects_dependencies() {
        let tdg = diamond();
        let order = std::sync::Mutex::new(Vec::new());
        let work = |t: TaskId| order.lock().expect("poisoned").push(t.0);
        Taskflow::from_tdg(&tdg, &work).run();
        let order = order.into_inner().expect("poisoned");
        let pos = |t: u32| order.iter().position(|&x| x == t).expect("ran");
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn partitioned_taskflow_has_one_node_per_partition() {
        let tdg = diamond();
        let partition = Partition::new(vec![0, 1, 1, 2]);
        let quotient = QuotientTdg::build(&tdg, &partition).expect("valid");
        let count = AtomicU32::new(0);
        let work = |_t: TaskId| {
            count.fetch_add(1, Ordering::Relaxed);
        };
        let tf = Taskflow::from_quotient(&quotient, &work);
        assert_eq!(tf.num_nodes(), 3);
        let report = tf.run();
        assert_eq!(count.load(Ordering::Relaxed), 4, "all member tasks ran");
        assert_eq!(report.dispatches, 3, "one dispatch per partition");
    }

    #[test]
    fn empty_taskflow() {
        let tdg = TdgBuilder::new(0).build().expect("empty");
        let work = |_t: TaskId| {};
        let report = Taskflow::from_tdg(&tdg, &work).run();
        assert_eq!(report.dispatches, 0);
    }

    #[test]
    fn partitioned_construction_is_cheaper_for_large_graphs() {
        // The whole point: building one node per partition allocates far
        // less than one node per task.
        let mut b = TdgBuilder::new(20_000);
        for i in 0..19_999u32 {
            if i % 10 != 9 {
                b.add_edge(TaskId(i), TaskId(i + 1));
            }
        }
        let tdg = b.build().expect("chains");
        // 2000 chains of 10 -> one partition each.
        let assignment: Vec<u32> = (0..20_000u32).map(|t| t / 10).collect();
        let quotient = QuotientTdg::build(&tdg, &Partition::new(assignment)).expect("valid");
        let work = |_t: TaskId| {};

        let t0 = Instant::now();
        let plain = Taskflow::from_tdg(&tdg, &work);
        let plain_build = t0.elapsed();
        let t0 = Instant::now();
        let part = Taskflow::from_quotient(&quotient, &work);
        let part_build = t0.elapsed();
        assert_eq!(plain.num_nodes(), 20_000);
        assert_eq!(part.num_nodes(), 2_000);
        assert!(
            part_build < plain_build,
            "partitioned build {part_build:?} must undercut plain build {plain_build:?}"
        );
    }
}
