//! The work-stealing TDG executor.

use crate::outcome::{FailureRecord, RecoverableWork, RetryPolicy, RunOutcome, TaskError};
use crate::report::RunReport;
use crossbeam_deque::{Injector, Stealer, Worker};
use crossbeam_utils::Backoff;
use gpasta_check::sync::{AtomicU32, AtomicU64, AtomicUsize, Mutex, Ordering};
use gpasta_tdg::{PartitionId, QuotientTdg, TaskId, Tdg};
use std::fmt;
use std::time::Instant;

/// Typed construction error for [`Executor::try_new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecutorError {
    /// Zero worker threads were requested.
    ZeroWorkers,
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorError::ZeroWorkers => {
                write!(f, "an executor needs at least one worker (got 0)")
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// A task payload: the work performed when the scheduler dispatches a task.
///
/// Implemented for all `Fn(TaskId) + Sync` closures. The STA engine
/// implements it with its forward/backward propagation steps.
pub trait TaskWork: Sync {
    /// Execute the payload of `task`.
    fn execute(&self, task: TaskId);
}

impl<F: Fn(TaskId) + Sync> TaskWork for F {
    #[inline]
    fn execute(&self, task: TaskId) {
        self(task)
    }
}

/// A Taskflow-like work-stealing executor.
///
/// Each [`run_tdg`](Executor::run_tdg) call spawns `num_workers` scoped
/// worker threads, seeds the ready queue with the TDG's source tasks, and
/// counts down fan-in dependencies as tasks complete — the same dynamic
/// scheduling model as OpenTimer's Taskflow backend. Every dispatch of a
/// task to a worker incurs real queue traffic; that per-task cost is what
/// partitioning reduces.
///
/// With `num_workers == 1` the executor runs on the calling thread with a
/// plain ready queue (still paying per-task queue operations, so scheduling
/// cost remains observable on single-core hosts).
#[derive(Debug, Clone)]
pub struct Executor {
    num_workers: usize,
    chunk_size: usize,
}

/// Default dependency-decrement batch: how many tasks a worker executes
/// before publishing the accumulated fan-out decrements (see
/// [`Executor::with_chunk_size`]). Swept by the bench autotuner.
pub const DEFAULT_CHUNK_SIZE: usize = 16;

impl Executor {
    /// Create an executor with `num_workers` worker threads, clamping a
    /// zero request to one worker. Use [`try_new`](Executor::try_new) to
    /// surface the invalid request instead (the CLI does, so a bad
    /// `--workers 0` is an error message, not a silent clamp).
    pub fn new(num_workers: usize) -> Self {
        Executor {
            num_workers: num_workers.max(1),
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// Create an executor with `num_workers` worker threads, rejecting
    /// `num_workers == 0` with a typed error.
    pub fn try_new(num_workers: usize) -> Result<Self, ExecutorError> {
        if num_workers == 0 {
            Err(ExecutorError::ZeroWorkers)
        } else {
            Ok(Executor {
                num_workers,
                chunk_size: DEFAULT_CHUNK_SIZE,
            })
        }
    }

    /// Set the dependency-decrement batch size (clamping zero to one).
    ///
    /// Workers accumulate the fan-out decrements of up to `chunk_size`
    /// executed tasks locally and publish them with **one atomic
    /// `fetch_sub` per distinct successor** instead of one per edge —
    /// GRAPHOPT-style batching that trades a bounded release delay
    /// (at most `chunk_size` tasks, and always flushed before the worker
    /// steals or parks) for far less cross-core contention on hot
    /// fan-in counters. `1` restores the per-edge behaviour.
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// The dependency-decrement batch size used by multi-worker runs.
    #[inline]
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Create an executor sized to the host's available parallelism.
    pub fn host_parallel() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Executor::new(n)
    }

    /// Number of worker threads used per run.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Execute every task of `tdg` exactly once, respecting dependencies.
    ///
    /// Returns a [`RunReport`] with the wall-clock time and the number of
    /// scheduling operations (task dispatches) performed.
    pub fn run_tdg<W: TaskWork>(&self, tdg: &Tdg, work: &W) -> RunReport {
        let n = tdg.num_tasks();
        let start = Instant::now();
        let dispatches = if self.num_workers == 1 {
            run_sequential(
                n,
                &tdg.in_degrees(),
                |t| tdg.successors(TaskId(t)),
                |t| work.execute(TaskId(t)),
            )
        } else {
            run_stealing(
                self.num_workers,
                n,
                &tdg.in_degrees(),
                &|t| tdg.successors(TaskId(t)),
                &|t| work.execute(TaskId(t)),
                self.chunk_size,
            )
        };
        RunReport {
            elapsed: start.elapsed(),
            tasks_executed: n,
            dispatches,
            num_workers: self.num_workers,
        }
    }

    /// Execute a *partitioned* TDG: each quotient node is dispatched once
    /// and runs its member tasks sequentially in topological order.
    ///
    /// The underlying task payloads are identical to
    /// [`run_tdg`](Executor::run_tdg); only the scheduling granularity
    /// changes, so results must be bit-identical (a property the test suite
    /// checks).
    pub fn run_partitioned<W: TaskWork>(&self, quotient: &QuotientTdg, work: &W) -> RunReport {
        let q = quotient.graph();
        let np = q.num_tasks();
        let total_tasks = quotient.num_tasks();
        let start = Instant::now();
        let run_members = |p: u32| {
            for &t in quotient.execution_order(PartitionId(p)) {
                work.execute(TaskId(t));
            }
        };
        let dispatches = if self.num_workers == 1 {
            run_sequential(
                np,
                &q.in_degrees(),
                |p| q.successors(TaskId(p)),
                run_members,
            )
        } else {
            run_stealing(
                self.num_workers,
                np,
                &q.in_degrees(),
                &|p| q.successors(TaskId(p)),
                &run_members,
                self.chunk_size,
            )
        };
        RunReport {
            elapsed: start.elapsed(),
            tasks_executed: total_tasks,
            dispatches,
            num_workers: self.num_workers,
        }
    }

    /// Fault-tolerant variant of [`run_tdg`](Executor::run_tdg): never
    /// unwinds into the caller.
    ///
    /// Each attempt runs under `catch_unwind`; transient failures retry
    /// with `policy`'s exponential backoff; a task that fails permanently
    /// (panic, fatal error, or retries exhausted) is *poisoned* together
    /// with its entire forward closure, while the wavefront keeps
    /// scheduling every unaffected task. The returned [`RunOutcome`] lists
    /// the salvaged count and the poisoned set — the exact closure of the
    /// failed tasks, so salvage is its exact complement.
    ///
    /// With a payload that never fails, the result is behaviourally
    /// identical to [`run_tdg`](Executor::run_tdg) (a property the
    /// `fault_recovery` bench pins at ≤ 5% overhead).
    pub fn run_tdg_recovering<W: RecoverableWork>(
        &self,
        tdg: &Tdg,
        work: &W,
        policy: &RetryPolicy,
    ) -> RunOutcome {
        let n = tdg.num_tasks();
        let start = Instant::now();
        let state = RecoveryState::new(policy);
        let run_unit = |t: u32| state.attempt_task(work, t, t);
        let (dispatches, poisoned) = if self.num_workers == 1 {
            run_sequential_recovering(
                n,
                &tdg.in_degrees(),
                |t| tdg.successors(TaskId(t)),
                run_unit,
            )
        } else {
            run_stealing_recovering(
                self.num_workers,
                n,
                &tdg.in_degrees(),
                &|t| tdg.successors(TaskId(t)),
                &run_unit,
            )
        };
        let poisoned_units: Vec<u32> = (0..n as u32).filter(|&t| poisoned[t as usize]).collect();
        let salvaged = n - poisoned_units.len();
        let (failures, retries) = state.into_parts();
        RunOutcome {
            report: RunReport {
                elapsed: start.elapsed(),
                tasks_executed: salvaged,
                dispatches,
                num_workers: self.num_workers,
            },
            salvaged_tasks: salvaged,
            poisoned_tasks: poisoned_units.clone(),
            poisoned_units,
            unfinished_tasks: Vec::new(),
            unfinished_units: Vec::new(),
            failures,
            retries,
            stop: crate::outcome::StopCause::Completed,
        }
    }

    /// Fault-tolerant variant of
    /// [`run_partitioned`](Executor::run_partitioned) with **partition
    /// quarantine**: the dispatch unit is the quotient node, so a member
    /// task that fails permanently poisons its whole partition (remaining
    /// members are skipped — their in-partition inputs are suspect) plus
    /// the partition's forward closure in the quotient graph. Every
    /// partition outside that closure is salvaged in full.
    ///
    /// `poisoned_units` holds quarantined partition ids; `poisoned_tasks`
    /// their member tasks (sorted).
    pub fn run_partitioned_recovering<W: RecoverableWork>(
        &self,
        quotient: &QuotientTdg,
        work: &W,
        policy: &RetryPolicy,
    ) -> RunOutcome {
        let q = quotient.graph();
        let np = q.num_tasks();
        let total_tasks = quotient.num_tasks();
        let start = Instant::now();
        let state = RecoveryState::new(policy);
        let run_unit = |p: u32| {
            for &t in quotient.execution_order(PartitionId(p)) {
                if !state.attempt_task(work, p, t) {
                    return false;
                }
            }
            true
        };
        let (dispatches, poisoned) = if self.num_workers == 1 {
            run_sequential_recovering(np, &q.in_degrees(), |p| q.successors(TaskId(p)), run_unit)
        } else {
            run_stealing_recovering(
                self.num_workers,
                np,
                &q.in_degrees(),
                &|p| q.successors(TaskId(p)),
                &run_unit,
            )
        };
        let poisoned_units: Vec<u32> = (0..np as u32).filter(|&p| poisoned[p as usize]).collect();
        let mut poisoned_tasks: Vec<u32> = poisoned_units
            .iter()
            .flat_map(|&p| quotient.execution_order(PartitionId(p)).iter().copied())
            .collect();
        poisoned_tasks.sort_unstable();
        let salvaged = total_tasks - poisoned_tasks.len();
        let (failures, retries) = state.into_parts();
        RunOutcome {
            report: RunReport {
                elapsed: start.elapsed(),
                tasks_executed: salvaged,
                dispatches,
                num_workers: self.num_workers,
            },
            salvaged_tasks: salvaged,
            poisoned_tasks,
            poisoned_units,
            unfinished_tasks: Vec::new(),
            unfinished_units: Vec::new(),
            failures,
            retries,
            stop: crate::outcome::StopCause::Completed,
        }
    }
}

/// Shared bookkeeping for the recovering runners: retry loop, failure
/// records, retry counter. Crate-visible so the bounded runners (deadline /
/// cancellation / watchdog, `bounded.rs`) reuse the identical retry loop —
/// keeping failure semantics byte-for-byte the same across both paths.
pub(crate) struct RecoveryState<'p> {
    policy: &'p RetryPolicy,
    retries: AtomicU64,
    failures: Mutex<Vec<FailureRecord>>,
}

impl<'p> RecoveryState<'p> {
    pub(crate) fn new(policy: &'p RetryPolicy) -> Self {
        RecoveryState {
            policy,
            retries: AtomicU64::new(0),
            failures: Mutex::new(Vec::new()),
        }
    }

    /// Run `task` (dispatched as part of `unit`) with bounded retries.
    /// Returns `true` on success; on permanent failure records a
    /// [`FailureRecord`] and returns `false`.
    pub(crate) fn attempt_task<W: RecoverableWork>(&self, work: &W, unit: u32, task: u32) -> bool {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut attempt = 0u32;
        loop {
            match catch_unwind(AssertUnwindSafe(|| work.execute(TaskId(task), attempt))) {
                Ok(Ok(())) => return true,
                Ok(Err(TaskError::Transient(msg))) => {
                    if attempt >= self.policy.max_retries {
                        self.record(unit, task, attempt + 1, TaskError::Transient(msg));
                        return false;
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let pause = self.policy.backoff(attempt);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    attempt += 1;
                }
                Ok(Err(err)) => {
                    self.record(unit, task, attempt + 1, err);
                    return false;
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    self.record(unit, task, attempt + 1, TaskError::Fatal(msg));
                    return false;
                }
            }
        }
    }

    pub(crate) fn record(&self, unit: u32, task: u32, attempts: u32, error: TaskError) {
        self.failures.lock().push(FailureRecord {
            unit,
            task,
            attempts,
            error,
        });
    }

    /// Failure records (sorted by unit then task, so parallel runs report
    /// deterministically) plus the retry count.
    pub(crate) fn into_parts(self) -> (Vec<FailureRecord>, u64) {
        let mut failures = self.failures.into_inner();
        failures.sort_by_key(|f| (f.unit, f.task));
        (failures, self.retries.into_inner())
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "payload panicked".to_string()
    }
}

/// Single-threaded execution through an explicit ready queue. Returns the
/// number of dispatches.
fn run_sequential<'a, S, E>(n: usize, in_degrees: &[u32], successors: S, execute: E) -> u64
where
    S: Fn(u32) -> &'a [u32],
    E: Fn(u32),
{
    let mut dep: Vec<u32> = in_degrees.to_vec();
    let mut ready: Vec<u32> = (0..n as u32).filter(|&t| dep[t as usize] == 0).collect();
    let mut dispatches = 0u64;
    while let Some(t) = ready.pop() {
        dispatches += 1;
        execute(t);
        for &s in successors(t) {
            dep[s as usize] -= 1;
            if dep[s as usize] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(dispatches as usize, n, "every task runs exactly once");
    dispatches
}

/// Work-stealing execution across `workers` scoped threads. Returns the
/// number of dispatches.
///
/// Panics in task payloads are caught on the worker, drain the pool, and
/// re-raise on the calling thread — otherwise a dead task would never add
/// to the completion count and the remaining workers would spin forever.
fn run_stealing<'a>(
    workers: usize,
    n: usize,
    in_degrees: &[u32],
    successors: &(dyn Fn(u32) -> &'a [u32] + Sync),
    execute: &(dyn Fn(u32) + Sync),
    chunk_size: usize,
) -> u64 {
    use gpasta_check::sync::AtomicBool;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    if n == 0 {
        return 0;
    }
    let chunk_size = chunk_size.max(1);
    let dep: Vec<AtomicU32> = in_degrees.iter().map(|&d| AtomicU32::new(d)).collect();
    let injector = Injector::new();
    for t in 0..n as u32 {
        if dep[t as usize].load(Ordering::Relaxed) == 0 {
            injector.push(t);
        }
    }
    let completed = AtomicUsize::new(0);
    let dispatches = AtomicU64::new(0);
    let panicked = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let locals: Vec<Worker<u32>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<u32>> = locals.iter().map(Worker::stealer).collect();

    // Worker-local batch of dependency decrements: `(successor, count)`
    // pairs accumulated across up to `chunk_size` executed tasks, published
    // with one `fetch_sub(count)` per *distinct* successor instead of one
    // per edge. A flush also publishes the executed-task count, so the
    // global `completed` counter only moves once per batch. Correctness
    // hinges on exactly one worker observing the counter cross zero: the
    // `fetch_sub` that returns its own operand is that worker's claim.
    struct DecrementBatch {
        pending: Vec<(u32, u32)>,
        executed: usize,
    }

    impl DecrementBatch {
        fn note(&mut self, succ: u32) {
            // Linear merge: fan-out batches are tiny (≤ chunk_size ·
            // mean-degree with heavy duplication), so a scan beats hashing.
            match self.pending.iter_mut().find(|e| e.0 == succ) {
                Some(e) => e.1 += 1,
                None => self.pending.push((succ, 1)),
            }
        }

        fn flush(&mut self, dep: &[AtomicU32], local: &Worker<u32>, completed: &AtomicUsize) {
            for &(s, c) in &self.pending {
                // hb: dep-handoff
                if dep[s as usize].fetch_sub(c, Ordering::AcqRel) == c {
                    local.push(s);
                }
            }
            self.pending.clear();
            if self.executed > 0 {
                completed.fetch_add(self.executed, Ordering::Release); // hb: run-complete
                self.executed = 0;
            }
        }
    }

    std::thread::scope(|scope| {
        for (w, local) in locals.into_iter().enumerate() {
            let dep = &dep;
            let injector = &injector;
            let stealers = &stealers;
            let completed = &completed;
            let dispatches = &dispatches;
            let panicked = &panicked;
            let panic_payload = &panic_payload;
            scope.spawn(move || {
                let backoff = Backoff::new();
                let mut batch = DecrementBatch {
                    pending: Vec::with_capacity(chunk_size.min(n) * 2),
                    executed: 0,
                };
                loop {
                    let task = local.pop().or_else(|| {
                        // Publish pending decrements before going looking
                        // for work elsewhere: a batched edge may be the
                        // only thing standing between the pool and either
                        // new ready tasks or the termination condition.
                        batch.flush(dep, &local, completed);
                        local.pop().or_else(|| {
                            std::iter::repeat_with(|| {
                                injector.steal_batch_and_pop(&local).or_else(|| {
                                    stealers
                                        .iter()
                                        .enumerate()
                                        .filter(|&(i, _)| i != w)
                                        .map(|(_, s)| s.steal())
                                        .collect()
                                })
                            })
                            .find(|s| !s.is_retry())
                            .and_then(|s| s.success())
                        })
                    });
                    match task {
                        Some(t) => {
                            backoff.reset();
                            dispatches.fetch_add(1, Ordering::Relaxed);
                            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| execute(t))) {
                                *panic_payload.lock() = Some(payload);
                                // The payload travels through the mutex
                                // above; the flag's Release pairs with the
                                // Acquire loads below, so a worker that sees
                                // it set also sees the stored payload. The
                                // batch is deliberately *not* flushed: every
                                // worker aborts on the flag, so the run never
                                // waits on the stranded decrements.
                                panicked.store(true, Ordering::Release); // hb: panic-flag
                                break;
                            }
                            for &s in successors(t) {
                                batch.note(s);
                            }
                            batch.executed += 1;
                            if batch.executed >= chunk_size {
                                batch.flush(dep, &local, completed);
                            }
                            // hb: panic-flag
                            if panicked.load(Ordering::Acquire) {
                                break;
                            }
                        }
                        None => {
                            // The batch was flushed before the steal above,
                            // so `completed` reflects this worker fully.
                            let all_done = completed.load(Ordering::Acquire) == n; // hb: run-complete
                            let aborted = panicked.load(Ordering::Acquire); // hb: panic-flag
                            if all_done || aborted {
                                break;
                            }
                            backoff.snooze();
                        }
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_payload.into_inner() {
        resume_unwind(payload);
    }
    dispatches.load(Ordering::Relaxed)
}

/// Single-threaded recovering wavefront. `run_unit` returns `false` on
/// permanent failure; poison spreads to every successor (computing the
/// forward closure on the fly) while unaffected units keep executing.
/// Returns `(dispatches, poisoned)`.
fn run_sequential_recovering<'a, S, R>(
    n: usize,
    in_degrees: &[u32],
    successors: S,
    run_unit: R,
) -> (u64, Vec<bool>)
where
    S: Fn(u32) -> &'a [u32],
    R: Fn(u32) -> bool,
{
    let mut poisoned = vec![false; n];
    let mut dep: Vec<u32> = in_degrees.to_vec();
    let mut ready: Vec<u32> = (0..n as u32).filter(|&t| dep[t as usize] == 0).collect();
    let mut dispatches = 0u64;
    while let Some(t) = ready.pop() {
        dispatches += 1;
        let ok = !poisoned[t as usize] && run_unit(t);
        if !ok {
            poisoned[t as usize] = true;
        }
        for &s in successors(t) {
            if !ok {
                poisoned[s as usize] = true;
            }
            dep[s as usize] -= 1;
            if dep[s as usize] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(dispatches as usize, n, "every unit is dispatched once");
    (dispatches, poisoned)
}

/// Work-stealing recovering wavefront: the parallel counterpart of
/// [`run_sequential_recovering`]. Unlike [`run_stealing`] there is no abort
/// path — `run_unit` contains every failure (it catches panics internally),
/// so the pool always drains all `n` units.
///
/// A unit is only popped after every predecessor decremented its fan-in
/// count; each predecessor publishes its poison mark (`Release`) before
/// that decrement (`AcqRel`), so the inherited-poison check (`Acquire`)
/// observes all parent failures regardless of interleaving.
fn run_stealing_recovering<'a, S, R>(
    workers: usize,
    n: usize,
    in_degrees: &[u32],
    successors: &S,
    run_unit: &R,
) -> (u64, Vec<bool>)
where
    S: Fn(u32) -> &'a [u32] + Sync,
    R: Fn(u32) -> bool + Sync,
{
    use gpasta_check::sync::AtomicBool;

    if n == 0 {
        return (0, Vec::new());
    }
    let dep: Vec<AtomicU32> = in_degrees.iter().map(|&d| AtomicU32::new(d)).collect();
    let poisoned: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let injector = Injector::new();
    for t in 0..n as u32 {
        if dep[t as usize].load(Ordering::Relaxed) == 0 {
            injector.push(t);
        }
    }
    let completed = AtomicUsize::new(0);
    let dispatches = AtomicU64::new(0);

    let locals: Vec<Worker<u32>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<u32>> = locals.iter().map(Worker::stealer).collect();

    std::thread::scope(|scope| {
        for (w, local) in locals.into_iter().enumerate() {
            let dep = &dep;
            let poisoned = &poisoned;
            let injector = &injector;
            let stealers = &stealers;
            let completed = &completed;
            let dispatches = &dispatches;
            scope.spawn(move || {
                let backoff = Backoff::new();
                loop {
                    let unit = local.pop().or_else(|| {
                        std::iter::repeat_with(|| {
                            injector.steal_batch_and_pop(&local).or_else(|| {
                                stealers
                                    .iter()
                                    .enumerate()
                                    .filter(|&(i, _)| i != w)
                                    .map(|(_, s)| s.steal())
                                    .collect()
                            })
                        })
                        .find(|s| !s.is_retry())
                        .and_then(|s| s.success())
                    });
                    match unit {
                        Some(t) => {
                            backoff.reset();
                            dispatches.fetch_add(1, Ordering::Relaxed);
                            // hb: poison-publish
                            let ok = !poisoned[t as usize].load(Ordering::Acquire) && run_unit(t);
                            if !ok {
                                // hb: poison-publish
                                poisoned[t as usize].store(true, Ordering::Release);
                            }
                            for &s in successors(t) {
                                if !ok {
                                    // hb: poison-publish
                                    poisoned[s as usize].store(true, Ordering::Release);
                                }
                                // The AcqRel decrement is the poison handoff:
                                // it orders each parent's Release poison mark
                                // before the successor's Acquire check above.
                                // Weakening it to Relaxed is the mutation the
                                // model checker catches (see gpasta-check).
                                // hb: dep-handoff
                                if dep[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    local.push(s);
                                }
                            }
                            completed.fetch_add(1, Ordering::Release); // hb: run-complete
                        }
                        None => {
                            // hb: run-complete
                            if completed.load(Ordering::Acquire) == n {
                                break;
                            }
                            backoff.snooze();
                        }
                    }
                }
            });
        }
    });

    let poisoned = poisoned.into_iter().map(AtomicBool::into_inner).collect();
    (dispatches.load(Ordering::Relaxed), poisoned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_tdg::TdgBuilder;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    use std::sync::Mutex;

    fn diamond() -> Tdg {
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.build().expect("diamond DAG")
    }

    /// A random-ish layered DAG for stress tests.
    fn layered(n_per_level: usize, levels: usize) -> Tdg {
        let n = n_per_level * levels;
        let mut b = TdgBuilder::new(n);
        for l in 1..levels {
            for i in 0..n_per_level {
                let v = (l * n_per_level + i) as u32;
                let u = ((l - 1) * n_per_level + (i * 7 + 3) % n_per_level) as u32;
                b.add_edge(TaskId(u), TaskId(v));
                let u2 = ((l - 1) * n_per_level + (i * 11 + 1) % n_per_level) as u32;
                b.add_edge(TaskId(u2), TaskId(v));
            }
        }
        b.build().expect("layered DAG")
    }

    #[test]
    fn sequential_runs_every_task_once() {
        let tdg = diamond();
        let count = StdAtomicU64::new(0);
        let exec = Executor::new(1);
        let report = exec.run_tdg(&tdg, &|_t: TaskId| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
        assert_eq!(report.tasks_executed, 4);
        assert_eq!(report.dispatches, 4);
    }

    #[test]
    fn parallel_runs_every_task_once() {
        let tdg = layered(64, 20);
        let count = StdAtomicU64::new(0);
        let exec = Executor::new(4);
        let report = exec.run_tdg(&tdg, &|_t: TaskId| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed) as usize, tdg.num_tasks());
        assert_eq!(report.dispatches as usize, tdg.num_tasks());
    }

    #[test]
    fn execution_respects_dependencies() {
        // Record completion order; every edge must be ordered.
        let tdg = layered(16, 8);
        let order = Mutex::new(Vec::new());
        let exec = Executor::new(4);
        exec.run_tdg(&tdg, &|t: TaskId| {
            order.lock().expect("poisoned").push(t.0);
        });
        let order = order.into_inner().expect("poisoned");
        let mut pos = vec![usize::MAX; tdg.num_tasks()];
        for (i, &t) in order.iter().enumerate() {
            pos[t as usize] = i;
        }
        for (u, v) in tdg.edges() {
            assert!(
                pos[u.index()] < pos[v.index()],
                "dependency {u}->{v} violated"
            );
        }
    }

    #[test]
    fn chunked_decrements_respect_dependencies_at_every_chunk_size() {
        // chunk 1 restores per-edge decrements; 4096 exceeds the whole
        // graph so every batch is flushed only on local-queue exhaustion.
        let tdg = layered(16, 8);
        for chunk in [1usize, 2, DEFAULT_CHUNK_SIZE, 4096] {
            let order = Mutex::new(Vec::new());
            let exec = Executor::new(4).with_chunk_size(chunk);
            let report = exec.run_tdg(&tdg, &|t: TaskId| {
                order.lock().expect("poisoned").push(t.0);
            });
            assert_eq!(
                report.dispatches as usize,
                tdg.num_tasks(),
                "chunk {chunk}: every task dispatched once"
            );
            let order = order.into_inner().expect("poisoned");
            let mut pos = vec![usize::MAX; tdg.num_tasks()];
            for (i, &t) in order.iter().enumerate() {
                pos[t as usize] = i;
            }
            for (u, v) in tdg.edges() {
                assert!(
                    pos[u.index()] < pos[v.index()],
                    "chunk {chunk}: dependency {u}->{v} violated"
                );
            }
        }
    }

    #[test]
    fn with_chunk_size_clamps_zero_to_one() {
        let exec = Executor::new(2).with_chunk_size(0);
        assert_eq!(exec.chunk_size(), 1);
        let tdg = diamond();
        let count = StdAtomicU64::new(0);
        exec.run_tdg(&tdg, &|_t: TaskId| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn chunked_panic_still_propagates_and_drains() {
        // A panic mid-batch must abort the pool without waiting on the
        // stranded (unflushed) decrements of other workers.
        let tdg = layered(32, 10);
        let exec = Executor::new(4).with_chunk_size(64);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.run_tdg(&tdg, &|t: TaskId| {
                if t.0 == 150 {
                    panic!("payload failure in task {t}");
                }
            });
        }));
        assert!(result.is_err(), "the payload panic reaches the caller");
    }

    #[test]
    fn partitioned_run_matches_plain_run() {
        use gpasta_tdg::Partition;
        let tdg = diamond();
        let p = Partition::new(vec![0, 1, 1, 2]);
        let q = QuotientTdg::build(&tdg, &p).expect("valid partition");

        let sum_plain = StdAtomicU64::new(0);
        let sum_part = StdAtomicU64::new(0);
        let exec = Executor::new(2);
        exec.run_tdg(&tdg, &|t: TaskId| {
            sum_plain.fetch_add(u64::from(t.0) + 1, Ordering::Relaxed);
        });
        let report = exec.run_partitioned(&q, &|t: TaskId| {
            sum_part.fetch_add(u64::from(t.0) + 1, Ordering::Relaxed);
        });
        assert_eq!(
            sum_plain.load(Ordering::Relaxed),
            sum_part.load(Ordering::Relaxed)
        );
        assert_eq!(report.tasks_executed, 4, "all member tasks ran");
        assert_eq!(report.dispatches, 3, "only partitions are dispatched");
    }

    #[test]
    fn partitioned_respects_cross_partition_dependencies() {
        use gpasta_tdg::Partition;
        let tdg = layered(16, 8);
        // Group pairs within each level (level-local grouping is valid).
        let levels = tdg.levels();
        let mut assignment = vec![0u32; tdg.num_tasks()];
        let mut pid = 0u32;
        for l in 0..levels.depth() {
            for pair in levels.tasks_at(l).chunks(2) {
                for &t in pair {
                    assignment[t as usize] = pid;
                }
                pid += 1;
            }
        }
        let p = Partition::new(assignment);
        let q = QuotientTdg::build(&tdg, &p).expect("level-local grouping is valid");

        let order = Mutex::new(Vec::new());
        let exec = Executor::new(4);
        exec.run_partitioned(&q, &|t: TaskId| {
            order.lock().expect("poisoned").push(t.0);
        });
        let order = order.into_inner().expect("poisoned");
        assert_eq!(order.len(), tdg.num_tasks());
        let mut pos = vec![usize::MAX; tdg.num_tasks()];
        for (i, &t) in order.iter().enumerate() {
            pos[t as usize] = i;
        }
        for (u, v) in tdg.edges() {
            assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    #[test]
    fn empty_graph_runs_without_dispatches() {
        let tdg = TdgBuilder::new(0).build().expect("empty DAG");
        let exec = Executor::new(2);
        let report = exec.run_tdg(&tdg, &|_t: TaskId| {});
        assert_eq!(report.tasks_executed, 0);
        assert_eq!(report.dispatches, 0);
    }

    #[test]
    fn single_task_graph() {
        let tdg = TdgBuilder::new(1).build().expect("one node");
        let ran = StdAtomicU64::new(0);
        for workers in [1, 3] {
            let exec = Executor::new(workers);
            exec.run_tdg(&tdg, &|_t: TaskId| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn zero_workers_clamps_in_new_and_errors_in_try_new() {
        assert_eq!(Executor::new(0).num_workers(), 1, "new clamps");
        assert_eq!(
            Executor::try_new(0).map(|e| e.num_workers()),
            Err(ExecutorError::ZeroWorkers)
        );
        assert_eq!(Executor::try_new(3).map(|e| e.num_workers()), Ok(3));
        let msg = ExecutorError::ZeroWorkers.to_string();
        assert!(msg.contains("at least one worker"), "got: {msg}");
    }

    #[test]
    fn payload_panic_propagates_to_the_caller() {
        // A panicking task must not hang the executor or get swallowed:
        // scoped workers re-raise at join.
        let tdg = layered(8, 4);
        for workers in [1usize, 3] {
            let exec = Executor::new(workers);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                exec.run_tdg(&tdg, &|t: TaskId| {
                    assert!(t.0 != 7, "payload failure on task 7");
                });
            }));
            assert!(result.is_err(), "workers={workers}: panic must propagate");
        }
    }

    /// Reference forward closure over raw TDG successors (BFS).
    fn closure_of(tdg: &Tdg, seeds: &[u32]) -> Vec<u32> {
        let mut seen = vec![false; tdg.num_tasks()];
        let mut stack: Vec<u32> = seeds.to_vec();
        for &s in seeds {
            seen[s as usize] = true;
        }
        while let Some(t) = stack.pop() {
            for &s in tdg.successors(TaskId(t)) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(s);
                }
            }
        }
        (0..tdg.num_tasks() as u32)
            .filter(|&t| seen[t as usize])
            .collect()
    }

    #[test]
    fn recovering_with_no_faults_matches_plain_run() {
        use crate::fault::{FaultPlan, FaultyWork};
        use crate::outcome::RetryPolicy;
        let tdg = layered(32, 10);
        let plan = FaultPlan::none();
        for workers in [1usize, 4] {
            let count = StdAtomicU64::new(0);
            let payload = |_t: TaskId| {
                count.fetch_add(1, Ordering::Relaxed);
            };
            let work = FaultyWork::new(&payload, &plan);
            let exec = Executor::new(workers);
            let outcome = exec.run_tdg_recovering(&tdg, &work, &RetryPolicy::default());
            assert!(outcome.is_clean(), "workers={workers}");
            assert_eq!(outcome.salvaged_tasks, tdg.num_tasks());
            assert_eq!(outcome.retries, 0);
            assert_eq!(outcome.report.dispatches as usize, tdg.num_tasks());
            assert_eq!(count.load(Ordering::Relaxed) as usize, tdg.num_tasks());
        }
        assert_eq!(plan.fired(), 0);
    }

    #[test]
    fn fatal_fault_poisons_exactly_the_forward_closure() {
        use crate::fault::{FaultKind, FaultPlan, FaultyWork};
        use crate::outcome::RetryPolicy;
        let tdg = layered(16, 8);
        let seed = 20u32; // a task in level 1: real downstream cone
        let expected = closure_of(&tdg, &[seed]);
        assert!(expected.len() > 1, "seed must have successors");
        let plan = FaultPlan::none().inject(seed, 0, FaultKind::WrongResult);
        for workers in [1usize, 4] {
            let payload = |_t: TaskId| {};
            let work = FaultyWork::new(&payload, &plan);
            let exec = Executor::new(workers);
            let outcome = exec.run_tdg_recovering(&tdg, &work, &RetryPolicy::no_retries());
            assert_eq!(outcome.poisoned_tasks, expected, "workers={workers}");
            assert_eq!(
                outcome.salvaged_tasks,
                tdg.num_tasks() - expected.len(),
                "salvage is the exact complement"
            );
            assert_eq!(outcome.failures.len(), 1);
            assert_eq!(outcome.failures[0].task, seed);
        }
    }

    #[test]
    fn panic_fault_is_contained_not_propagated() {
        use crate::fault::{FaultKind, FaultPlan, FaultyWork};
        use crate::outcome::RetryPolicy;
        let tdg = layered(8, 4);
        let plan = FaultPlan::none().inject(7, 0, FaultKind::Panic);
        for workers in [1usize, 3] {
            let payload = |_t: TaskId| {};
            let work = FaultyWork::new(&payload, &plan);
            let exec = Executor::new(workers);
            // Must NOT unwind — that is the whole point.
            let outcome = exec.run_tdg_recovering(&tdg, &work, &RetryPolicy::no_retries());
            assert!(!outcome.is_clean());
            assert_eq!(outcome.failures[0].task, 7);
            assert!(matches!(outcome.failures[0].error, TaskError::Fatal(_)));
            assert_eq!(outcome.poisoned_tasks, closure_of(&tdg, &[7]));
        }
    }

    #[test]
    fn transient_fault_recovers_via_retry() {
        use crate::fault::{FaultKind, FaultPlan, FaultyWork};
        use crate::outcome::RetryPolicy;
        let tdg = diamond();
        // Fails twice, succeeds on the third attempt.
        let plan =
            FaultPlan::none()
                .inject(1, 0, FaultKind::Transient)
                .inject(1, 1, FaultKind::Transient);
        let count = StdAtomicU64::new(0);
        let payload = |_t: TaskId| {
            count.fetch_add(1, Ordering::Relaxed);
        };
        let work = FaultyWork::new(&payload, &plan);
        let exec = Executor::new(1);
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff: std::time::Duration::ZERO,
            max_backoff: std::time::Duration::ZERO,
        };
        let outcome = exec.run_tdg_recovering(&tdg, &work, &policy);
        assert!(outcome.poisoned_tasks.is_empty());
        assert_eq!(outcome.salvaged_tasks, 4);
        assert_eq!(outcome.retries, 2);
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn transient_fault_exhausting_retries_is_quarantined() {
        use crate::fault::{FaultKind, FaultPlan, FaultyWork};
        use crate::outcome::RetryPolicy;
        let tdg = diamond();
        let plan =
            FaultPlan::none()
                .inject(0, 0, FaultKind::Transient)
                .inject(0, 1, FaultKind::Transient);
        let payload = |_t: TaskId| {};
        let work = FaultyWork::new(&payload, &plan);
        let exec = Executor::new(1);
        let policy = RetryPolicy {
            max_retries: 1,
            base_backoff: std::time::Duration::ZERO,
            max_backoff: std::time::Duration::ZERO,
        };
        let outcome = exec.run_tdg_recovering(&tdg, &work, &policy);
        // Task 0 is the diamond's source: everything is in its closure.
        assert_eq!(outcome.poisoned_tasks, vec![0, 1, 2, 3]);
        assert_eq!(outcome.salvaged_tasks, 0);
        assert_eq!(outcome.failures[0].attempts, 2);
        assert_eq!(outcome.retries, 1);
    }

    #[test]
    fn delay_fault_slows_but_never_fails() {
        use crate::fault::{FaultKind, FaultPlan, FaultyWork};
        use crate::outcome::RetryPolicy;
        let tdg = diamond();
        let plan = FaultPlan::none().inject(2, 0, FaultKind::Delay { micros: 50 });
        let count = StdAtomicU64::new(0);
        let payload = |_t: TaskId| {
            count.fetch_add(1, Ordering::Relaxed);
        };
        let work = FaultyWork::new(&payload, &plan);
        let outcome = Executor::new(2).run_tdg_recovering(&tdg, &work, &RetryPolicy::default());
        assert!(outcome.poisoned_tasks.is_empty());
        assert_eq!(count.load(Ordering::Relaxed), 4);
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn partitioned_recovery_quarantines_the_whole_partition() {
        use crate::fault::{FaultKind, FaultPlan, FaultyWork};
        use crate::outcome::RetryPolicy;
        use gpasta_tdg::Partition;
        // Chain 0 -> 1 -> 2 -> 3 grouped {0} -> {1,2} -> {3}: member order
        // inside partition 1 is dependency-forced, so failing member 1 must
        // skip member 2 and poison partitions 1 and 2.
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(1), TaskId(2));
        b.add_edge(TaskId(2), TaskId(3));
        let tdg = b.build().expect("chain DAG");
        let p = Partition::new(vec![0, 1, 1, 2]);
        let q = QuotientTdg::build(&tdg, &p).expect("valid partition");
        let plan = FaultPlan::none().inject(1, 0, FaultKind::WrongResult);
        for workers in [1usize, 2] {
            let ran = parking_lot::Mutex::new(Vec::new());
            let payload = |t: TaskId| {
                ran.lock().push(t.0);
            };
            let work = FaultyWork::new(&payload, &plan);
            let exec = Executor::new(workers);
            let outcome = exec.run_partitioned_recovering(&q, &work, &RetryPolicy::no_retries());
            assert_eq!(outcome.poisoned_units, vec![1, 2], "workers={workers}");
            assert_eq!(outcome.poisoned_tasks, vec![1, 2, 3]);
            assert_eq!(outcome.salvaged_tasks, 1);
            assert_eq!(outcome.failures[0].unit, 1);
            assert_eq!(outcome.failures[0].task, 1);
            let ran = ran.into_inner();
            assert!(ran.contains(&0), "unaffected partition still runs");
            assert!(!ran.contains(&2), "members after the failure are skipped");
        }
    }

    #[test]
    fn salvage_set_is_identical_across_worker_counts() {
        use crate::fault::{FaultKind, FaultPlan, FaultyWork};
        use crate::outcome::RetryPolicy;
        let tdg = layered(24, 12);
        let kinds = [
            FaultKind::Panic,
            FaultKind::Transient,
            FaultKind::WrongResult,
        ];
        let plan = FaultPlan::random(0xFA17, 0.02, &kinds);
        let policy = RetryPolicy {
            max_retries: 2,
            base_backoff: std::time::Duration::ZERO,
            max_backoff: std::time::Duration::ZERO,
        };
        let mut reference: Option<Vec<u32>> = None;
        for workers in [1usize, 2, 4] {
            let payload = |_t: TaskId| {};
            let work = FaultyWork::new(&payload, &plan);
            let outcome = Executor::new(workers).run_tdg_recovering(&tdg, &work, &policy);
            assert!(!outcome.poisoned_tasks.is_empty(), "plan should fire");
            match &reference {
                None => reference = Some(outcome.poisoned_tasks),
                Some(r) => assert_eq!(
                    &outcome.poisoned_tasks, r,
                    "poison set must not depend on worker count (workers={workers})"
                ),
            }
        }
    }

    #[test]
    fn recovering_empty_graph_is_clean() {
        use crate::fault::{FaultPlan, FaultyWork};
        use crate::outcome::RetryPolicy;
        let tdg = TdgBuilder::new(0).build().expect("empty DAG");
        let plan = FaultPlan::none();
        let payload = |_t: TaskId| {};
        let work = FaultyWork::new(&payload, &plan);
        for workers in [1usize, 2] {
            let outcome =
                Executor::new(workers).run_tdg_recovering(&tdg, &work, &RetryPolicy::default());
            assert!(outcome.is_clean());
            assert_eq!(outcome.salvaged_tasks, 0);
        }
    }

    #[test]
    fn executor_is_reusable_across_many_runs() {
        let tdg = layered(16, 6);
        let exec = Executor::new(2);
        let count = StdAtomicU64::new(0);
        for _ in 0..25 {
            exec.run_tdg(&tdg, &|_t: TaskId| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed) as usize, 25 * tdg.num_tasks());
    }

    #[test]
    fn report_records_worker_count() {
        let exec = Executor::new(3);
        assert_eq!(exec.num_workers(), 3);
        let report = exec.run_tdg(&diamond(), &|_t: TaskId| {});
        assert_eq!(report.num_workers, 3);
    }
}
