//! The work-stealing TDG executor.

use crate::report::RunReport;
use crossbeam_deque::{Injector, Stealer, Worker};
use crossbeam_utils::Backoff;
use gpasta_tdg::{PartitionId, QuotientTdg, TaskId, Tdg};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// A task payload: the work performed when the scheduler dispatches a task.
///
/// Implemented for all `Fn(TaskId) + Sync` closures. The STA engine
/// implements it with its forward/backward propagation steps.
pub trait TaskWork: Sync {
    /// Execute the payload of `task`.
    fn execute(&self, task: TaskId);
}

impl<F: Fn(TaskId) + Sync> TaskWork for F {
    #[inline]
    fn execute(&self, task: TaskId) {
        self(task)
    }
}

/// A Taskflow-like work-stealing executor.
///
/// Each [`run_tdg`](Executor::run_tdg) call spawns `num_workers` scoped
/// worker threads, seeds the ready queue with the TDG's source tasks, and
/// counts down fan-in dependencies as tasks complete — the same dynamic
/// scheduling model as OpenTimer's Taskflow backend. Every dispatch of a
/// task to a worker incurs real queue traffic; that per-task cost is what
/// partitioning reduces.
///
/// With `num_workers == 1` the executor runs on the calling thread with a
/// plain ready queue (still paying per-task queue operations, so scheduling
/// cost remains observable on single-core hosts).
#[derive(Debug, Clone)]
pub struct Executor {
    num_workers: usize,
}

impl Executor {
    /// Create an executor with `num_workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`.
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "an executor needs at least one worker");
        Executor { num_workers }
    }

    /// Create an executor sized to the host's available parallelism.
    pub fn host_parallel() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Executor::new(n)
    }

    /// Number of worker threads used per run.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Execute every task of `tdg` exactly once, respecting dependencies.
    ///
    /// Returns a [`RunReport`] with the wall-clock time and the number of
    /// scheduling operations (task dispatches) performed.
    pub fn run_tdg<W: TaskWork>(&self, tdg: &Tdg, work: &W) -> RunReport {
        let n = tdg.num_tasks();
        let start = Instant::now();
        let dispatches = if self.num_workers == 1 {
            run_sequential(
                n,
                &tdg.in_degrees(),
                |t| tdg.successors(TaskId(t)),
                |t| work.execute(TaskId(t)),
            )
        } else {
            run_stealing(
                self.num_workers,
                n,
                &tdg.in_degrees(),
                &|t| tdg.successors(TaskId(t)),
                &|t| work.execute(TaskId(t)),
            )
        };
        RunReport {
            elapsed: start.elapsed(),
            tasks_executed: n,
            dispatches,
            num_workers: self.num_workers,
        }
    }

    /// Execute a *partitioned* TDG: each quotient node is dispatched once
    /// and runs its member tasks sequentially in topological order.
    ///
    /// The underlying task payloads are identical to
    /// [`run_tdg`](Executor::run_tdg); only the scheduling granularity
    /// changes, so results must be bit-identical (a property the test suite
    /// checks).
    pub fn run_partitioned<W: TaskWork>(&self, quotient: &QuotientTdg, work: &W) -> RunReport {
        let q = quotient.graph();
        let np = q.num_tasks();
        let total_tasks = quotient.num_tasks();
        let start = Instant::now();
        let run_members = |p: u32| {
            for &t in quotient.execution_order(PartitionId(p)) {
                work.execute(TaskId(t));
            }
        };
        let dispatches = if self.num_workers == 1 {
            run_sequential(
                np,
                &q.in_degrees(),
                |p| q.successors(TaskId(p)),
                run_members,
            )
        } else {
            run_stealing(
                self.num_workers,
                np,
                &q.in_degrees(),
                &|p| q.successors(TaskId(p)),
                &run_members,
            )
        };
        RunReport {
            elapsed: start.elapsed(),
            tasks_executed: total_tasks,
            dispatches,
            num_workers: self.num_workers,
        }
    }
}

/// Single-threaded execution through an explicit ready queue. Returns the
/// number of dispatches.
fn run_sequential<'a, S, E>(n: usize, in_degrees: &[u32], successors: S, execute: E) -> u64
where
    S: Fn(u32) -> &'a [u32],
    E: Fn(u32),
{
    let mut dep: Vec<u32> = in_degrees.to_vec();
    let mut ready: Vec<u32> = (0..n as u32).filter(|&t| dep[t as usize] == 0).collect();
    let mut dispatches = 0u64;
    while let Some(t) = ready.pop() {
        dispatches += 1;
        execute(t);
        for &s in successors(t) {
            dep[s as usize] -= 1;
            if dep[s as usize] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(dispatches as usize, n, "every task runs exactly once");
    dispatches
}

/// Work-stealing execution across `workers` scoped threads. Returns the
/// number of dispatches.
///
/// Panics in task payloads are caught on the worker, drain the pool, and
/// re-raise on the calling thread — otherwise a dead task would never add
/// to the completion count and the remaining workers would spin forever.
fn run_stealing<'a>(
    workers: usize,
    n: usize,
    in_degrees: &[u32],
    successors: &(dyn Fn(u32) -> &'a [u32] + Sync),
    execute: &(dyn Fn(u32) + Sync),
) -> u64 {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicBool;

    if n == 0 {
        return 0;
    }
    let dep: Vec<AtomicU32> = in_degrees.iter().map(|&d| AtomicU32::new(d)).collect();
    let injector = Injector::new();
    for t in 0..n as u32 {
        if dep[t as usize].load(Ordering::Relaxed) == 0 {
            injector.push(t);
        }
    }
    let completed = AtomicUsize::new(0);
    let dispatches = AtomicU64::new(0);
    let panicked = AtomicBool::new(false);
    let panic_payload: parking_lot::Mutex<Option<Box<dyn std::any::Any + Send>>> =
        parking_lot::Mutex::new(None);

    let locals: Vec<Worker<u32>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<u32>> = locals.iter().map(Worker::stealer).collect();

    std::thread::scope(|scope| {
        for (w, local) in locals.into_iter().enumerate() {
            let dep = &dep;
            let injector = &injector;
            let stealers = &stealers;
            let completed = &completed;
            let dispatches = &dispatches;
            let panicked = &panicked;
            let panic_payload = &panic_payload;
            scope.spawn(move || {
                let backoff = Backoff::new();
                loop {
                    let task = local.pop().or_else(|| {
                        std::iter::repeat_with(|| {
                            injector.steal_batch_and_pop(&local).or_else(|| {
                                stealers
                                    .iter()
                                    .enumerate()
                                    .filter(|&(i, _)| i != w)
                                    .map(|(_, s)| s.steal())
                                    .collect()
                            })
                        })
                        .find(|s| !s.is_retry())
                        .and_then(|s| s.success())
                    });
                    match task {
                        Some(t) => {
                            backoff.reset();
                            dispatches.fetch_add(1, Ordering::Relaxed);
                            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| execute(t))) {
                                *panic_payload.lock() = Some(payload);
                                panicked.store(true, Ordering::SeqCst);
                                break;
                            }
                            for &s in successors(t) {
                                if dep[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    local.push(s);
                                }
                            }
                            completed.fetch_add(1, Ordering::Release);
                            if panicked.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                        None => {
                            if completed.load(Ordering::Acquire) == n
                                || panicked.load(Ordering::SeqCst)
                            {
                                break;
                            }
                            backoff.snooze();
                        }
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_payload.into_inner() {
        resume_unwind(payload);
    }
    dispatches.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_tdg::TdgBuilder;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    use std::sync::Mutex;

    fn diamond() -> Tdg {
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.build().expect("diamond DAG")
    }

    /// A random-ish layered DAG for stress tests.
    fn layered(n_per_level: usize, levels: usize) -> Tdg {
        let n = n_per_level * levels;
        let mut b = TdgBuilder::new(n);
        for l in 1..levels {
            for i in 0..n_per_level {
                let v = (l * n_per_level + i) as u32;
                let u = ((l - 1) * n_per_level + (i * 7 + 3) % n_per_level) as u32;
                b.add_edge(TaskId(u), TaskId(v));
                let u2 = ((l - 1) * n_per_level + (i * 11 + 1) % n_per_level) as u32;
                b.add_edge(TaskId(u2), TaskId(v));
            }
        }
        b.build().expect("layered DAG")
    }

    #[test]
    fn sequential_runs_every_task_once() {
        let tdg = diamond();
        let count = StdAtomicU64::new(0);
        let exec = Executor::new(1);
        let report = exec.run_tdg(&tdg, &|_t: TaskId| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
        assert_eq!(report.tasks_executed, 4);
        assert_eq!(report.dispatches, 4);
    }

    #[test]
    fn parallel_runs_every_task_once() {
        let tdg = layered(64, 20);
        let count = StdAtomicU64::new(0);
        let exec = Executor::new(4);
        let report = exec.run_tdg(&tdg, &|_t: TaskId| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed) as usize, tdg.num_tasks());
        assert_eq!(report.dispatches as usize, tdg.num_tasks());
    }

    #[test]
    fn execution_respects_dependencies() {
        // Record completion order; every edge must be ordered.
        let tdg = layered(16, 8);
        let order = Mutex::new(Vec::new());
        let exec = Executor::new(4);
        exec.run_tdg(&tdg, &|t: TaskId| {
            order.lock().expect("poisoned").push(t.0);
        });
        let order = order.into_inner().expect("poisoned");
        let mut pos = vec![usize::MAX; tdg.num_tasks()];
        for (i, &t) in order.iter().enumerate() {
            pos[t as usize] = i;
        }
        for (u, v) in tdg.edges() {
            assert!(
                pos[u.index()] < pos[v.index()],
                "dependency {u}->{v} violated"
            );
        }
    }

    #[test]
    fn partitioned_run_matches_plain_run() {
        use gpasta_tdg::Partition;
        let tdg = diamond();
        let p = Partition::new(vec![0, 1, 1, 2]);
        let q = QuotientTdg::build(&tdg, &p).expect("valid partition");

        let sum_plain = StdAtomicU64::new(0);
        let sum_part = StdAtomicU64::new(0);
        let exec = Executor::new(2);
        exec.run_tdg(&tdg, &|t: TaskId| {
            sum_plain.fetch_add(u64::from(t.0) + 1, Ordering::Relaxed);
        });
        let report = exec.run_partitioned(&q, &|t: TaskId| {
            sum_part.fetch_add(u64::from(t.0) + 1, Ordering::Relaxed);
        });
        assert_eq!(
            sum_plain.load(Ordering::Relaxed),
            sum_part.load(Ordering::Relaxed)
        );
        assert_eq!(report.tasks_executed, 4, "all member tasks ran");
        assert_eq!(report.dispatches, 3, "only partitions are dispatched");
    }

    #[test]
    fn partitioned_respects_cross_partition_dependencies() {
        use gpasta_tdg::Partition;
        let tdg = layered(16, 8);
        // Group pairs within each level (level-local grouping is valid).
        let levels = tdg.levels();
        let mut assignment = vec![0u32; tdg.num_tasks()];
        let mut pid = 0u32;
        for l in 0..levels.depth() {
            for pair in levels.tasks_at(l).chunks(2) {
                for &t in pair {
                    assignment[t as usize] = pid;
                }
                pid += 1;
            }
        }
        let p = Partition::new(assignment);
        let q = QuotientTdg::build(&tdg, &p).expect("level-local grouping is valid");

        let order = Mutex::new(Vec::new());
        let exec = Executor::new(4);
        exec.run_partitioned(&q, &|t: TaskId| {
            order.lock().expect("poisoned").push(t.0);
        });
        let order = order.into_inner().expect("poisoned");
        assert_eq!(order.len(), tdg.num_tasks());
        let mut pos = vec![usize::MAX; tdg.num_tasks()];
        for (i, &t) in order.iter().enumerate() {
            pos[t as usize] = i;
        }
        for (u, v) in tdg.edges() {
            assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    #[test]
    fn empty_graph_runs_without_dispatches() {
        let tdg = TdgBuilder::new(0).build().expect("empty DAG");
        let exec = Executor::new(2);
        let report = exec.run_tdg(&tdg, &|_t: TaskId| {});
        assert_eq!(report.tasks_executed, 0);
        assert_eq!(report.dispatches, 0);
    }

    #[test]
    fn single_task_graph() {
        let tdg = TdgBuilder::new(1).build().expect("one node");
        let ran = StdAtomicU64::new(0);
        for workers in [1, 3] {
            let exec = Executor::new(workers);
            exec.run_tdg(&tdg, &|_t: TaskId| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Executor::new(0);
    }

    #[test]
    fn payload_panic_propagates_to_the_caller() {
        // A panicking task must not hang the executor or get swallowed:
        // scoped workers re-raise at join.
        let tdg = layered(8, 4);
        for workers in [1usize, 3] {
            let exec = Executor::new(workers);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                exec.run_tdg(&tdg, &|t: TaskId| {
                    assert!(t.0 != 7, "payload failure on task 7");
                });
            }));
            assert!(result.is_err(), "workers={workers}: panic must propagate");
        }
    }

    #[test]
    fn executor_is_reusable_across_many_runs() {
        let tdg = layered(16, 6);
        let exec = Executor::new(2);
        let count = StdAtomicU64::new(0);
        for _ in 0..25 {
            exec.run_tdg(&tdg, &|_t: TaskId| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed) as usize, 25 * tdg.num_tasks());
    }

    #[test]
    fn report_records_worker_count() {
        let exec = Executor::new(3);
        assert_eq!(exec.num_workers(), 3);
        let report = exec.run_tdg(&diamond(), &|_t: TaskId| {});
        assert_eq!(report.num_workers, 3);
    }
}
