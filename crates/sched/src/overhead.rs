//! Per-task scheduling-overhead calibration.
//!
//! The paper motivates partitioning with two numbers: a backward-propagation
//! task takes 0.5–50 µs while scheduling one task through Taskflow costs
//! 0.2–3 µs — comparable magnitudes, so scheduling cost matters. This module
//! measures the same quantity for [`Executor`](crate::Executor) on the host,
//! and the `scheduler` Criterion bench reports it.

use crate::executor::Executor;
use gpasta_tdg::{TaskId, TdgBuilder};
use std::time::Duration;

/// Measured scheduling overhead of an executor on this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadProfile {
    /// Tasks dispatched during calibration.
    pub tasks: usize,
    /// Wall-clock for the empty-payload run.
    pub total: Duration,
    /// `total / tasks` — the per-task scheduling cost.
    pub per_task: Duration,
}

impl std::fmt::Display for OverheadProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} empty tasks in {:.3} ms -> {} ns/task",
            self.tasks,
            self.total.as_secs_f64() * 1e3,
            self.per_task.as_nanos()
        )
    }
}

/// Measure the per-task scheduling cost of `exec` by running `tasks`
/// empty-payload tasks arranged as a wide two-level DAG (sources feeding a
/// small set of sinks, so dependency countdown is exercised too).
///
/// # Panics
///
/// Panics if `tasks < 2`.
pub fn measure_sched_overhead(exec: &Executor, tasks: usize) -> OverheadProfile {
    assert!(tasks >= 2, "calibration needs at least two tasks");
    let sinks = (tasks / 64).max(1);
    let sources = tasks - sinks;
    let mut b = TdgBuilder::with_capacity(tasks, sources);
    for s in 0..sources as u32 {
        let sink = sources as u32 + s % sinks as u32;
        b.add_edge(TaskId(s), TaskId(sink));
    }
    let tdg = b.build().expect("two-level calibration DAG");

    // Warm up (pool and allocator), then measure.
    exec.run_tdg(&tdg, &|_t: TaskId| {});
    let report = exec.run_tdg(&tdg, &|_t: TaskId| {});
    OverheadProfile {
        tasks,
        total: report.elapsed,
        per_task: report.elapsed / u32::try_from(tasks).unwrap_or(u32::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_positive_and_small() {
        let exec = Executor::new(1);
        let p = measure_sched_overhead(&exec, 10_000);
        assert_eq!(p.tasks, 10_000);
        assert!(p.total > Duration::ZERO);
        // Sanity: scheduling an empty task must take well under a
        // millisecond each on any machine.
        assert!(p.per_task < Duration::from_millis(1), "got {p}");
    }

    #[test]
    fn display_has_units() {
        let exec = Executor::new(1);
        let p = measure_sched_overhead(&exec, 100);
        let s = p.to_string();
        assert!(s.contains("ns/task"));
    }

    #[test]
    #[should_panic(expected = "at least two tasks")]
    fn tiny_calibration_panics() {
        let exec = Executor::new(1);
        let _ = measure_sched_overhead(&exec, 1);
    }
}
