//! The recovering execution model: typed task errors, retry policy, and the
//! structured [`RunOutcome`] the fault-tolerant runners return instead of
//! resuming an unwind.

use crate::report::RunReport;
use gpasta_tdg::TaskId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Why a single payload attempt failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskError {
    /// Retryable: a later attempt may succeed (lost launch, spurious
    /// allocation failure). The executor retries with backoff up to
    /// [`RetryPolicy::max_retries`].
    Transient(String),
    /// Permanent: retrying cannot help (detected corruption, payload
    /// panic). The task's dispatch unit is quarantined immediately.
    Fatal(String),
    /// The watchdog observed no progress on the unit within the stall
    /// window and quarantined it administratively. Permanent for this run;
    /// the payload itself may still be executing (a finite stall finishes
    /// harmlessly, an infinite hang is contained instead of wedging the
    /// wavefront).
    Stalled(String),
    /// The run's wall-clock budget expired before the unit was admitted.
    /// Not a payload fault: the unit is *unfinished*, not poisoned, and a
    /// later run with a fresh budget completes it.
    DeadlineExceeded(String),
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Transient(msg) => write!(f, "transient: {msg}"),
            TaskError::Fatal(msg) => write!(f, "fatal: {msg}"),
            TaskError::Stalled(msg) => write!(f, "stalled: {msg}"),
            TaskError::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
        }
    }
}

impl std::error::Error for TaskError {}

/// A fallible task payload for the recovering runners.
///
/// `attempt` starts at 0 and increments on every retry of the same task, so
/// deterministic fault plans keyed by `(task, attempt)` replay exactly.
/// Implemented for all `Fn(TaskId, u32) -> Result<(), TaskError> + Sync`
/// closures; infallible [`TaskWork`](crate::TaskWork) payloads lift via
/// [`FaultyWork`](crate::FaultyWork) (with [`FaultPlan::none`]
/// (crate::FaultPlan::none) for a pure pass-through) or a trivial closure.
pub trait RecoverableWork: Sync {
    /// Run attempt `attempt` of `task`.
    fn execute(&self, task: TaskId, attempt: u32) -> Result<(), TaskError>;
}

impl<F: Fn(TaskId, u32) -> Result<(), TaskError> + Sync> RecoverableWork for F {
    #[inline]
    fn execute(&self, task: TaskId, attempt: u32) -> Result<(), TaskError> {
        self(task, attempt)
    }
}

/// Bounded-retry policy for transient failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so a task runs at most
    /// `max_retries + 1` times).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(20),
            max_backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// Fail permanently on the first error: no retries, no sleeps.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Exponential backoff before retrying after failed attempt `attempt`
    /// (0-based): `base * 2^attempt`, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff
            .checked_mul(factor)
            .map_or(self.max_backoff, |d| d.min(self.max_backoff))
    }
}

/// One permanently failed task, as recorded in a [`RunOutcome`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// The dispatch unit that was quarantined: the task id on plain runs,
    /// the partition id on partitioned runs.
    pub unit: u32,
    /// The underlying task whose payload failed (equals `unit` on plain
    /// runs).
    pub task: u32,
    /// Attempts made before giving up (1 + retries).
    pub attempts: u32,
    /// The final error.
    pub error: TaskError,
}

/// Why a bounded run stopped admitting dispatch units.
///
/// Unbounded runs always report [`StopCause::Completed`]; the bounded
/// runners additionally report deadline expiry and cooperative
/// cancellation, in which case the unadmitted forward closure lands in
/// [`RunOutcome::unfinished_tasks`] rather than the poison sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopCause {
    /// Every dispatch unit was admitted (salvaged or poisoned); nothing is
    /// unfinished.
    Completed,
    /// The wall-clock budget expired; admission stopped early.
    DeadlineExpired,
    /// A [`CancelToken`](gpasta_tdg::CancelToken) fired; admission stopped
    /// early.
    Cancelled,
}

impl fmt::Display for StopCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopCause::Completed => write!(f, "completed"),
            StopCause::DeadlineExpired => write!(f, "deadline expired"),
            StopCause::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Structured result of a recovering run.
///
/// The run never aborts: every dispatch unit is either *salvaged* (its
/// payload completed), *poisoned* (it failed permanently, or depends —
/// directly or transitively — on a unit that did), or — on bounded runs
/// that stop early — *unfinished* (never admitted because the deadline
/// expired or the run was cancelled; its inputs may be incomplete but no
/// fault occurred in its cone). The three sets are disjoint and their
/// union is the whole task set, so the salvaged set is the exact
/// complement of poisoned ∪ unfinished.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Scheduling report; `tasks_executed` counts salvaged tasks only.
    pub report: RunReport,
    /// Underlying tasks whose payload completed successfully.
    pub salvaged_tasks: usize,
    /// Underlying tasks in the quarantine (sorted, ascending).
    pub poisoned_tasks: Vec<u32>,
    /// Poisoned dispatch units (sorted, ascending): task ids on plain runs,
    /// partition ids on partitioned runs.
    pub poisoned_units: Vec<u32>,
    /// Underlying tasks never admitted because the run stopped early
    /// (sorted, ascending). Disjoint from the poison sets; empty when
    /// [`stop`](RunOutcome::stop) is [`StopCause::Completed`].
    pub unfinished_tasks: Vec<u32>,
    /// Unadmitted dispatch units (sorted, ascending): task ids on plain
    /// runs, partition ids on partitioned runs.
    pub unfinished_units: Vec<u32>,
    /// Permanently failed units, in the order they failed.
    pub failures: Vec<FailureRecord>,
    /// Total retry sleeps performed across all tasks.
    pub retries: u64,
    /// Why admission stopped.
    pub stop: StopCause,
}

impl RunOutcome {
    /// `true` when nothing failed and nothing was left behind: every task
    /// salvaged and the run ran to completion.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
            && self.poisoned_tasks.is_empty()
            && self.unfinished_tasks.is_empty()
            && self.stop == StopCause::Completed
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} salvaged / {} poisoned / {} unfinished tasks ({} failed units, {} retries, {}) in {:.3} ms on {} workers",
            self.salvaged_tasks,
            self.poisoned_tasks.len(),
            self.unfinished_tasks.len(),
            self.failures.len(),
            self.retries,
            self.stop,
            self.report.elapsed.as_secs_f64() * 1e3,
            self.report.num_workers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(350),
        };
        assert_eq!(p.backoff(0), Duration::from_micros(100));
        assert_eq!(p.backoff(1), Duration::from_micros(200));
        assert_eq!(p.backoff(2), Duration::from_micros(350), "capped");
        assert_eq!(p.backoff(31), Duration::from_micros(350));
        assert_eq!(p.backoff(63), Duration::from_micros(350), "shift overflow");
    }

    #[test]
    fn no_retries_policy_never_sleeps() {
        let p = RetryPolicy::no_retries();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.backoff(0), Duration::ZERO);
    }

    #[test]
    fn closures_are_recoverable_work() {
        let w = |t: TaskId, attempt: u32| -> Result<(), TaskError> {
            if t.0 == 1 && attempt == 0 {
                Err(TaskError::Transient("flaky".into()))
            } else {
                Ok(())
            }
        };
        assert!(RecoverableWork::execute(&w, TaskId(0), 0).is_ok());
        assert!(RecoverableWork::execute(&w, TaskId(1), 0).is_err());
        assert!(RecoverableWork::execute(&w, TaskId(1), 1).is_ok());
    }

    #[test]
    fn outcome_display_and_cleanliness() {
        let outcome = RunOutcome {
            report: RunReport {
                elapsed: Duration::from_millis(1),
                tasks_executed: 3,
                dispatches: 4,
                num_workers: 2,
            },
            salvaged_tasks: 3,
            poisoned_tasks: vec![2],
            poisoned_units: vec![2],
            unfinished_tasks: vec![],
            unfinished_units: vec![],
            failures: vec![FailureRecord {
                unit: 2,
                task: 2,
                attempts: 4,
                error: TaskError::Fatal("boom".into()),
            }],
            retries: 3,
            stop: StopCause::Completed,
        };
        assert!(!outcome.is_clean());
        let s = outcome.to_string();
        assert!(s.contains("3 salvaged"));
        assert!(s.contains("1 poisoned"));
        let clean = RunOutcome {
            poisoned_tasks: vec![],
            failures: vec![],
            ..outcome
        };
        assert!(clean.is_clean());
    }

    #[test]
    fn deadline_stopped_outcome_is_not_clean() {
        let outcome = RunOutcome {
            report: RunReport {
                elapsed: Duration::from_millis(1),
                tasks_executed: 1,
                dispatches: 1,
                num_workers: 1,
            },
            salvaged_tasks: 1,
            poisoned_tasks: vec![],
            poisoned_units: vec![],
            unfinished_tasks: vec![1, 2],
            unfinished_units: vec![1, 2],
            failures: vec![],
            retries: 0,
            stop: StopCause::DeadlineExpired,
        };
        assert!(!outcome.is_clean(), "unfinished work is not clean");
        let s = outcome.to_string();
        assert!(s.contains("2 unfinished"));
        assert!(s.contains("deadline expired"));
    }

    #[test]
    fn outcome_serde_round_trips() {
        use serde::{Deserialize as _, Serialize as _};
        let outcome = RunOutcome {
            report: RunReport {
                elapsed: Duration::new(3, 141_592_653),
                tasks_executed: 7,
                dispatches: 9,
                num_workers: 4,
            },
            salvaged_tasks: 7,
            poisoned_tasks: vec![8, 9],
            poisoned_units: vec![8],
            unfinished_tasks: vec![10, 11],
            unfinished_units: vec![10, 11],
            failures: vec![
                FailureRecord {
                    unit: 8,
                    task: 9,
                    attempts: 2,
                    error: TaskError::Stalled("no progress for 5ms".into()),
                },
                FailureRecord {
                    unit: 3,
                    task: 3,
                    attempts: 1,
                    error: TaskError::DeadlineExceeded("budget spent".into()),
                },
            ],
            retries: 5,
            stop: StopCause::Cancelled,
        };
        let v = outcome.to_value();
        let back = RunOutcome::from_value(&v).expect("round trip");
        assert_eq!(back, outcome);
    }

    #[test]
    fn task_error_serde_round_trips_all_variants() {
        use serde::{Deserialize as _, Serialize as _};
        for err in [
            TaskError::Transient("t".into()),
            TaskError::Fatal("f".into()),
            TaskError::Stalled("s".into()),
            TaskError::DeadlineExceeded("d".into()),
        ] {
            let back = TaskError::from_value(&err.to_value()).expect("round trip");
            assert_eq!(back, err);
        }
    }

    #[test]
    fn stop_cause_serde_round_trips() {
        use serde::{Deserialize as _, Serialize as _};
        for cause in [
            StopCause::Completed,
            StopCause::DeadlineExpired,
            StopCause::Cancelled,
        ] {
            let back = StopCause::from_value(&cause.to_value()).expect("round trip");
            assert_eq!(back, cause);
        }
    }
}
