//! Smoke tests for the harness binaries: run `fig7` (both modes) and
//! `table1` at a tiny `--scale` inside `cargo test` and pin the CSV/JSON
//! schemas their consumers (plot scripts, CI artifact checks) rely on.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("harness binary runs")
}

/// A unique output directory per test, so parallel tests never collide.
fn out_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("gpasta_harness_smoke")
        .join(format!("{}_{}", name, std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale output dir");
    }
    dir
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn csv_header(path: &Path) -> String {
    read(path).lines().next().expect("non-empty CSV").to_owned()
}

fn assert_csv_rows(path: &Path) {
    let text = read(path);
    let cols = text.lines().next().expect("header").split(',').count();
    let rows: Vec<&str> = text.lines().skip(1).collect();
    assert!(!rows.is_empty(), "{} has no data rows", path.display());
    for row in rows {
        assert_eq!(
            row.split(',').count(),
            cols,
            "ragged row in {}: {row}",
            path.display()
        );
    }
}

fn json_rows(path: &Path) -> serde_json::Value {
    serde_json::from_str(&read(path)).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

/// Column names of one `Row` in the `write_json` format:
/// `{"label": ..., "values": [[name, value], ...]}`.
fn json_columns(row: &serde_json::Value) -> Vec<String> {
    row["values"]
        .as_array()
        .expect("values array")
        .iter()
        .map(|kv| kv[0].as_str().expect("column name").to_owned())
        .collect()
}

#[test]
fn fig7_scratch_mode_writes_the_documented_schema() {
    let out = out_dir("fig7_scratch");
    let dir = out.to_str().expect("utf8");
    let res = run(
        env!("CARGO_BIN_EXE_fig7"),
        &[
            "--scale",
            "0.0006",
            "--workers",
            "2",
            "--runs",
            "1",
            "--out",
            dir,
        ],
    );
    assert!(
        res.status.success(),
        "{}",
        String::from_utf8_lossy(&res.stderr)
    );

    for circuit in ["vga_lcd", "leon2"] {
        let csv = out.join(format!("fig7_{circuit}.csv"));
        assert_eq!(
            csv_header(&csv),
            "label,original_wall_ms,gdca_wall_ms,gpasta_wall_ms,\
             original_sim_ms,gdca_sim_ms,gpasta_sim_ms"
        );
        assert_csv_rows(&csv);

        let rows = json_rows(&out.join(format!("fig7_{circuit}.json")));
        let rows = rows.as_array().expect("row array");
        assert!(!rows.is_empty());
        assert_eq!(
            json_columns(&rows[0]),
            [
                "original_wall_ms",
                "gdca_wall_ms",
                "gpasta_wall_ms",
                "original_sim_ms",
                "gdca_sim_ms",
                "gpasta_sim_ms"
            ]
        );
    }
}

#[test]
fn fig7_incremental_mode_writes_the_documented_schema() {
    let out = out_dir("fig7_incremental");
    let dir = out.to_str().expect("utf8");
    let res = run(
        env!("CARGO_BIN_EXE_fig7"),
        &[
            "--incremental",
            "--scale",
            "0.0006",
            "--workers",
            "2",
            "--out",
            dir,
        ],
    );
    assert!(
        res.status.success(),
        "{}",
        String::from_utf8_lossy(&res.stderr)
    );

    for circuit in ["vga_lcd", "leon2"] {
        let csv = out.join(format!("fig7_{circuit}_incremental.csv"));
        assert_eq!(
            csv_header(&csv),
            "label,scratch_part_ms,inc_part_ms,scratch_wall_ms,\
             inc_wall_ms,scratch_sim_ms,inc_sim_ms"
        );
        assert_csv_rows(&csv);
    }

    // The machine-readable summary: one row per circuit with the fields
    // CI uploads and downstream dashboards key on.
    let summary = json_rows(&out.join("BENCH_incremental.json"));
    let rows = summary.as_array().expect("summary array");
    let labels: Vec<&str> = rows
        .iter()
        .map(|r| r["label"].as_str().expect("label"))
        .collect();
    assert_eq!(labels, ["vga_lcd", "leon2"]);
    for row in rows {
        assert_eq!(
            json_columns(row),
            [
                "iterations",
                "install_ms",
                "scratch_part_ms",
                "incremental_part_ms",
                "speedup",
                "scratch_wall_ms",
                "incremental_wall_ms"
            ]
        );
    }
}

#[test]
fn fault_recovery_writes_the_documented_schema() {
    let out = out_dir("fault_recovery");
    let dir = out.to_str().expect("utf8");
    let res = run(
        env!("CARGO_BIN_EXE_fault_recovery"),
        &[
            "--scale",
            "0.002",
            "--workers",
            "2",
            "--runs",
            "2",
            "--out",
            dir,
        ],
    );
    assert!(
        res.status.success(),
        "{}",
        String::from_utf8_lossy(&res.stderr)
    );

    let csv = out.join("fault_recovery.csv");
    assert_eq!(
        csv_header(&csv),
        "label,tasks,plain_ms,recovering_ms,overhead_pct,faults_fired,\
         salvaged_frac,heal_ms"
    );
    assert_csv_rows(&csv);

    // The summary CI uploads: one row per circuit, healed-WNS bit-identity
    // already asserted inside the binary.
    let summary = json_rows(&out.join("BENCH_fault_recovery.json"));
    let rows = summary.as_array().expect("summary array");
    let labels: Vec<&str> = rows
        .iter()
        .map(|r| r["label"].as_str().expect("label"))
        .collect();
    assert_eq!(labels, ["vga_lcd", "leon2"]);
    for row in rows {
        assert_eq!(
            json_columns(row),
            [
                "tasks",
                "plain_ms",
                "recovering_ms",
                "overhead_pct",
                "faults_fired",
                "salvaged_frac",
                "heal_ms"
            ]
        );
        let frac = row["values"][5][1].as_f64().expect("salvaged_frac");
        assert!((0.0..=1.0).contains(&frac), "salvaged_frac {frac} in [0,1]");
    }
}

#[test]
fn table1_writes_the_documented_schema() {
    let out = out_dir("table1");
    let dir = out.to_str().expect("utf8");
    let res = run(
        env!("CARGO_BIN_EXE_table1"),
        &[
            "--scale",
            "0.0006",
            "--workers",
            "2",
            "--runs",
            "1",
            "--out",
            dir,
        ],
    );
    assert!(
        res.status.success(),
        "{}",
        String::from_utf8_lossy(&res.stderr)
    );

    let csv = out.join("table1.csv");
    assert_eq!(
        csv_header(&csv),
        "label,tasks,deps,t_tdg_ms,sim_tdg_ms,sim_tdgp_gdca_ms,sim_tdgp_seq_ms,\
         sim_tdgp_gpasta_ms,sim_tdgp_deter_ms,t_tdgp_gdca_ms,t_tdgp_seq_ms,\
         t_tdgp_gpasta_ms,t_tdgp_deter_ms,t_part_gdca_ms,t_part_seq_ms,\
         t_part_gpasta_ms,t_part_deter_ms,gdca_ps"
    );
    assert_csv_rows(&csv);

    let rows = json_rows(&out.join("table1.json"));
    let rows = rows.as_array().expect("row array");
    assert_eq!(rows.len(), 6, "one row per paper circuit");
}
