//! GDCA partition-size tuning.
//!
//! The paper fine-tunes GDCA's partition size per circuit and reports its
//! best configuration ("we fine-tune it and use the value that produces
//! the best performance"), while G-PASTA simply uses the TDG size. This
//! module reproduces that tuning with a deterministic cost model, so
//! Table 1 compares a *tuned* GDCA against untuned G-PASTA — the same
//! asymmetry as the paper.

use gpasta_core::{GPasta, Gdca, Partitioner, PartitionerOptions, SeqGPasta};
use gpasta_gpu::Device;
use gpasta_sched::{Executor, TaskWork};
use gpasta_tdg::{ParallelismProfile, QuotientTdg, Tdg};
use std::time::Duration;

/// The G-PASTA backend suited to this host: the parallel device kernel
/// when several workers are available, the sequential CPU variant
/// otherwise (on one worker the device degenerates to seq-G-PASTA plus
/// bookkeeping, so seq is strictly better — both produce partitions of
/// identical quality).
pub fn gpasta_for(workers: usize) -> Box<dyn Partitioner> {
    if workers <= 1 {
        Box::new(SeqGPasta::new())
    } else {
        Box::new(GPasta::with_device(Device::new(workers)))
    }
}

/// Candidate partition sizes swept during tuning.
pub const CANDIDATE_PS: &[usize] = &[2, 4, 8, 16, 32, 64, 128, 256];

/// Paper-regime per-dispatch scheduling cost (ns) used by the simulated
/// multi-worker makespan (OpenTimer's Taskflow: 0.2-3 us per task).
pub const DISPATCH_NS: f64 = 800.0;

/// Simulated worker count (the paper's execution saturates at 8-16 CPU
/// threads).
pub const SIM_WORKERS: usize = 8;

/// Estimated runtime of a partitioned TDG on `workers` workers under a
/// per-dispatch scheduling cost of `dispatch_ns`: the classic greedy
/// bound `max(work / workers, span) + dispatches × dispatch_cost`.
pub fn estimated_runtime_ns(q: &Tdg, workers: usize, dispatch_ns: f64) -> f64 {
    let profile = ParallelismProfile::of(q);
    let work: f64 = q.weights().iter().map(|&w| f64::from(w)).sum();
    let span = if profile.weighted_parallelism > 0.0 {
        work / profile.weighted_parallelism
    } else {
        0.0
    };
    let compute = (work / workers as f64).max(span);
    compute + q.num_tasks() as f64 * dispatch_ns
}

/// Sweep [`CANDIDATE_PS`] and return the partition size minimising the
/// estimated runtime of GDCA's result on `workers` workers.
///
/// # Panics
///
/// Panics if `tdg` is empty.
pub fn tune_gdca_ps(tdg: &Tdg, workers: usize, dispatch_ns: f64) -> usize {
    assert!(tdg.num_tasks() > 0, "cannot tune on an empty TDG");
    let gdca = Gdca::new();
    let mut best = (f64::INFINITY, CANDIDATE_PS[0]);
    for &ps in CANDIDATE_PS {
        let p = gdca
            .partition(tdg, &PartitionerOptions::with_max_size(ps))
            .expect("positive ps");
        let q = QuotientTdg::build(tdg, &p).expect("GDCA partitions are valid");
        let cost = estimated_runtime_ns(q.graph(), workers, dispatch_ns);
        if cost < best.0 {
            best = (cost, ps);
        }
    }
    best.1
}

/// Candidate executor dependency-decrement chunk sizes swept by the
/// Ps × chunk autotuner ([`sweep_ps_chunk`]). Chunk 1 restores the
/// per-edge decrement behaviour.
pub const CANDIDATE_CHUNK: &[usize] = &[1, 4, 8, 16, 32, 64];

/// One measured point of the Ps × chunk sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunePoint {
    /// Partition size handed to the partitioner.
    pub ps: usize,
    /// Executor dependency-decrement chunk size.
    pub chunk: usize,
    /// Median wall-clock of the partitioned executor run.
    pub median_run: Duration,
}

fn median_duration(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[(samples.len() - 1) / 2]
}

/// Measure every [`CANDIDATE_PS`] × [`CANDIDATE_CHUNK`] point on this
/// host: partition once per `ps` (partitioning is chunk-independent),
/// then take the median of `runs` partitioned executor runs per chunk
/// size. The payload must be idempotent (the STA propagation payload is:
/// re-running an update TDG recomputes the same values), because every
/// point re-executes the same TDG.
///
/// # Panics
///
/// Panics if `tdg` is empty or `runs` is zero.
pub fn sweep_ps_chunk<W: TaskWork>(
    tdg: &Tdg,
    work: &W,
    partitioner: &dyn Partitioner,
    workers: usize,
    runs: usize,
) -> Vec<TunePoint> {
    assert!(tdg.num_tasks() > 0, "cannot tune on an empty TDG");
    assert!(runs > 0, "need at least one run per point");
    let mut points = Vec::with_capacity(CANDIDATE_PS.len() * CANDIDATE_CHUNK.len());
    for &ps in CANDIDATE_PS {
        let p = partitioner
            .partition(tdg, &PartitionerOptions::with_max_size(ps))
            .expect("positive ps");
        let q = QuotientTdg::build(tdg, &p).expect("partitions are valid");
        for &chunk in CANDIDATE_CHUNK {
            let exec = Executor::new(workers).with_chunk_size(chunk);
            let samples = (0..runs)
                .map(|_| exec.run_partitioned(&q, work).elapsed)
                .collect();
            points.push(TunePoint {
                ps,
                chunk,
                median_run: median_duration(samples),
            });
        }
    }
    points
}

/// Sweep Ps × chunk ([`sweep_ps_chunk`]) and return the point with the
/// smallest median run time (ties break towards the earlier candidate,
/// so the result is stable under re-measurement of equal points).
///
/// # Panics
///
/// Panics if `tdg` is empty or `runs` is zero.
pub fn tune_ps_chunk<W: TaskWork>(
    tdg: &Tdg,
    work: &W,
    partitioner: &dyn Partitioner,
    workers: usize,
    runs: usize,
) -> (TunePoint, Vec<TunePoint>) {
    let points = sweep_ps_chunk(tdg, work, partitioner, workers, runs);
    let best = *points
        .iter()
        .min_by_key(|p| p.median_run)
        .expect("sweep is non-empty");
    (best, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_circuits::dag;

    #[test]
    fn tuned_ps_beats_extremes_in_the_model() {
        let tdg = dag::layered(64, 24, 2, 3);
        let workers = 8;
        let dispatch = 500.0;
        let best = tune_gdca_ps(&tdg, workers, dispatch);
        let cost_of = |ps: usize| {
            let p = Gdca::new()
                .partition(&tdg, &PartitionerOptions::with_max_size(ps))
                .expect("valid");
            let q = QuotientTdg::build(&tdg, &p).expect("valid");
            estimated_runtime_ns(q.graph(), workers, dispatch)
        };
        assert!(cost_of(best) <= cost_of(2));
        assert!(cost_of(best) <= cost_of(256));
    }

    #[test]
    fn estimated_runtime_accounts_for_dispatches() {
        let tdg = dag::independent(100);
        let slow = estimated_runtime_ns(&tdg, 4, 10_000.0);
        let fast = estimated_runtime_ns(&tdg, 4, 10.0);
        assert!(slow > fast);
    }

    #[test]
    fn tuning_is_deterministic() {
        let tdg = dag::layered(32, 10, 2, 5);
        assert_eq!(tune_gdca_ps(&tdg, 4, 500.0), tune_gdca_ps(&tdg, 4, 500.0));
    }

    #[test]
    #[should_panic(expected = "empty TDG")]
    fn empty_tdg_panics() {
        let tdg = gpasta_tdg::TdgBuilder::new(0).build().expect("empty");
        let _ = tune_gdca_ps(&tdg, 1, 1.0);
    }

    #[test]
    fn sweep_covers_every_candidate_pair() {
        let tdg = dag::layered(16, 6, 2, 3);
        let work = |_t: gpasta_tdg::TaskId| {};
        let points = sweep_ps_chunk(&tdg, &work, &SeqGPasta::new(), 2, 1);
        assert_eq!(points.len(), CANDIDATE_PS.len() * CANDIDATE_CHUNK.len());
        for &ps in CANDIDATE_PS {
            for &chunk in CANDIDATE_CHUNK {
                assert!(
                    points.iter().any(|p| p.ps == ps && p.chunk == chunk),
                    "missing point ps={ps} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn chosen_point_is_the_sweep_minimum() {
        let tdg = dag::layered(16, 6, 2, 3);
        let work = |_t: gpasta_tdg::TaskId| {};
        let (best, points) = tune_ps_chunk(&tdg, &work, &SeqGPasta::new(), 2, 1);
        assert!(points.contains(&best));
        assert!(points.iter().all(|p| best.median_run <= p.median_run));
    }

    #[test]
    fn median_is_order_independent() {
        let d = |ms| Duration::from_millis(ms);
        assert_eq!(median_duration(vec![d(3), d(1), d(2)]), d(2));
        assert_eq!(median_duration(vec![d(9), d(1)]), d(1));
        assert_eq!(median_duration(vec![d(7)]), d(7));
    }
}
