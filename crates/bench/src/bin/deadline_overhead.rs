//! Deadline (bounded-execution) overhead and budget-sweep benchmark.
//!
//! Two measurements per circuit, each over the full `update_timing` TDG:
//!
//! 1. **no-deadline overhead** — three interleaved timings: the plain
//!    `Executor::run_tdg` path, the recovering `run_recovering` path, and
//!    `run_recovering_bounded` with [`RunBudget::unbounded`]. The
//!    bounded-vs-recovering gap is the price of the budget machinery alone
//!    (the fault-transparency cost underneath it is already policed at
//!    ≤ 5 % by the `fault_recovery` bench) and must stay within 5 %;
//! 2. **budget sweep** — re-run the same update under deadlines set to
//!    fractions of the measured full runtime, recording how much of the
//!    task set each budget salvages; every partial run is then `heal`ed
//!    with a fresh (unbounded) budget and the result asserted bit-identical
//!    to the uninterrupted reference analysis.
//!
//! Writes `deadline_overhead.{csv,json}`, `deadline_sweep.csv`, and the
//! machine-readable summary `BENCH_deadline.json` that CI uploads.
//!
//! ```text
//! cargo run --release -p gpasta-bench --bin deadline_overhead -- --scale 0.05
//! ```

use gpasta_bench::{write_csv, write_json, BenchConfig, OutputError, Row};
use gpasta_circuits::PaperCircuit;
use gpasta_sched::{Executor, FaultPlan, RetryPolicy, RunBudget, StopCause};
use gpasta_sta::{CellLibrary, Timer};
use std::time::Duration;

/// Deadlines exercised by the sweep, as fractions of the measured
/// full-run wall time. The sub-1.0 points force early stops at realistic
/// scales; 1.0 and 2.0 bracket the completion boundary.
const SWEEP_FRACTIONS: [f64; 5] = [0.05, 0.25, 0.5, 1.0, 2.0];

/// Best (minimum) of a set of millisecond samples. The overhead comparison
/// uses minima rather than medians: scheduler interference only ever *adds*
/// time, so the per-path minimum is the noise-robust estimator of the true
/// cost — medians of interleaved runs still flap on busy single-core hosts.
fn best(samples: Vec<f64>) -> f64 {
    samples.into_iter().fold(f64::INFINITY, f64::min)
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), OutputError> {
    let cfg = BenchConfig::from_args();
    println!(
        "Deadline-overhead benchmark: scale {}, {} workers, {} runs\n",
        cfg.scale, cfg.workers, cfg.runs
    );

    let mut overhead_rows: Vec<Row> = Vec::new();
    let mut sweep_rows: Vec<Row> = Vec::new();
    for &circuit in &[PaperCircuit::VgaLcd, PaperCircuit::Leon2] {
        let netlist = circuit.build(cfg.scale);
        let library = CellLibrary::typical();
        let exec = Executor::new(cfg.workers);
        let no_faults = FaultPlan::none();
        let policy = RetryPolicy::default();

        // Uninterrupted reference analysis, snapshotted bit-exactly.
        let mut timer = Timer::new(netlist, library);
        timer.update_timing().run_sequential();
        let reference_wns = timer.report(1).wns_ps;

        // (1) the no-deadline overhead of the bounded path. Both paths
        // re-execute the same full-space TDG, which propagation tasks
        // overwrite idempotently.
        timer.invalidate_all();
        let tasks;
        let (plain_ms, recovering_ms, bounded_ms) = {
            let update = timer.update_timing();
            tasks = update.tdg().num_tasks();
            let payload = update.task_fn();

            // Interleave the three paths so clock drift and cache warm-up
            // cannot bias the comparison any way.
            let mut plain = Vec::with_capacity(cfg.runs);
            let mut recovering = Vec::with_capacity(cfg.runs);
            let mut bounded = Vec::with_capacity(cfg.runs);
            for _ in 0..cfg.runs {
                plain.push(exec.run_tdg(update.tdg(), &payload).elapsed.as_secs_f64() * 1e3);
                let rec = update.run_recovering(&exec, &no_faults, &policy);
                assert!(rec.is_clean(), "no faults");
                recovering.push(rec.outcome.report.elapsed.as_secs_f64() * 1e3);
                let rec = update.run_recovering_bounded(
                    &exec,
                    &no_faults,
                    &policy,
                    &RunBudget::unbounded(),
                );
                assert!(rec.is_clean(), "no faults and no deadline");
                bounded.push(rec.outcome.report.elapsed.as_secs_f64() * 1e3);
            }
            (best(plain), best(recovering), best(bounded))
        };
        let overhead_pct = 100.0 * (bounded_ms - recovering_ms) / recovering_ms;
        // Only police the 5 % budget when the run is long enough for the
        // estimator to mean something; at smoke scales the per-run time is
        // microseconds and scheduler jitter dominates all paths.
        if recovering_ms >= 20.0 {
            assert!(
                overhead_pct <= 5.0,
                "{}: bounded path costs {overhead_pct:.2}% over the recovering runner (budget 5%)",
                circuit.name()
            );
        }
        println!(
            "== {} ==\n  plain {:>9.3} ms | recovering {:>9.3} ms | bounded (no deadline) {:>9.3} ms | budget-layer overhead {:+.2}%",
            circuit.name(),
            plain_ms,
            recovering_ms,
            bounded_ms,
            overhead_pct
        );

        // (2) the budget sweep: salvage fraction vs deadline, every partial
        // run healed back to the reference bits.
        for &frac in &SWEEP_FRACTIONS {
            timer.invalidate_all();
            let (salvaged_frac, unfinished_frac, completed, healed) = {
                let update = timer.update_timing();
                let budget = RunBudget::unbounded()
                    .with_deadline(Duration::from_secs_f64(bounded_ms * frac / 1e3));
                let rec = update.run_recovering_bounded(&exec, &no_faults, &policy, &budget);
                assert!(
                    rec.outcome.poisoned_tasks.is_empty(),
                    "a fault-free run cannot poison tasks"
                );
                let n = update.tdg().num_tasks() as f64;
                update.mark_unknown(&rec);
                let healed = update.heal(&rec);
                assert_eq!(
                    healed,
                    rec.outcome.unfinished_tasks.len(),
                    "heal must re-execute exactly the unfinished closure"
                );
                (
                    rec.outcome.salvaged_tasks as f64 / n,
                    rec.outcome.unfinished_tasks.len() as f64 / n,
                    rec.outcome.stop == StopCause::Completed,
                    healed,
                )
            };
            let healed_wns = timer.report(1).wns_ps;
            assert_eq!(
                healed_wns.to_bits(),
                reference_wns.to_bits(),
                "{}: healed WNS {healed_wns} ps differs from reference {reference_wns} ps (fraction {frac})",
                circuit.name()
            );
            println!(
                "  deadline {:>5.2}x: salvaged {:>5.1}% | unfinished {:>5.1}% | {} | healed {} task(s), WNS bit-identical",
                frac,
                100.0 * salvaged_frac,
                100.0 * unfinished_frac,
                if completed { "completed" } else { "expired  " },
                healed
            );
            sweep_rows.push(Row::new(
                format!("{}@{frac}", circuit.name()),
                &[
                    ("deadline_frac", frac),
                    ("salvaged_frac", salvaged_frac),
                    ("unfinished_frac", unfinished_frac),
                    ("completed", if completed { 1.0 } else { 0.0 }),
                    ("healed_tasks", healed as f64),
                ],
            ));
        }
        println!();

        overhead_rows.push(Row::new(
            circuit.name(),
            &[
                ("tasks", tasks as f64),
                ("plain_ms", plain_ms),
                ("recovering_ms", recovering_ms),
                ("bounded_ms", bounded_ms),
                ("overhead_pct", overhead_pct),
            ],
        ));
    }

    write_csv(&cfg.out_dir.join("deadline_overhead.csv"), &overhead_rows)?;
    write_json(&cfg.out_dir.join("deadline_overhead.json"), &overhead_rows)?;
    write_csv(&cfg.out_dir.join("deadline_sweep.csv"), &sweep_rows)?;
    // The CI summary carries both tables; JSON rows are self-describing.
    let all: Vec<Row> = overhead_rows.iter().chain(&sweep_rows).cloned().collect();
    write_json(&cfg.out_dir.join("BENCH_deadline.json"), &all)?;
    println!(
        "wrote {}",
        cfg.out_dir.join("BENCH_deadline.json").display()
    );
    Ok(())
}
