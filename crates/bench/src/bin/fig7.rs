//! Figure 7: overall STA runtime over incremental timing iterations.
//!
//! Each iteration applies a design modifier (gate repowering or a net
//! capacitance change) followed by `update_timing`; the partitioner is
//! issued at every call. The cumulative runtime of three policies is
//! tracked: no partitioning, GDCA (tuned), and G-PASTA. The paper runs 8 K
//! iterations; the iteration count scales with `--scale`.
//!
//! Two cumulative series per policy:
//! * wall-clock on this host (single-core hosts understate the run-side
//!   savings), and
//! * build + partition + the deterministic 8-worker simulated run — the
//!   multi-core regime of the paper's testbed.
//!
//! ```text
//! cargo run --release -p gpasta-bench --bin fig7 -- --scale 0.05
//! ```

use gpasta_bench::tuning::{gpasta_for, tune_gdca_ps, DISPATCH_NS, SIM_WORKERS};
use gpasta_bench::{write_csv, write_json, BenchConfig, Row};
use gpasta_circuits::PaperCircuit;
use gpasta_core::{Gdca, Partitioner, PartitionerOptions};
use gpasta_sched::{simulate_makespan, Executor, Taskflow};
use gpasta_sta::{CellLibrary, GateId, Timer};
use gpasta_tdg::QuotientTdg;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// A named scheduling policy: `None` runs the raw TDG.
type Policy<'a> = (
    &'a str,
    Option<(&'a dyn Partitioner, &'a PartitionerOptions)>,
);

/// One deterministic design modifier per iteration.
fn apply_modifier(timer: &mut Timer, rng: &mut ChaCha8Rng) {
    let num_gates = timer.netlist().num_gates();
    let num_nets = timer.netlist().num_nets() as u32;
    if rng.gen_bool(0.5) && num_gates > 0 {
        let g = GateId(rng.gen_range(0..num_gates as u32));
        let drive = *[0.5f32, 1.0, 2.0, 4.0].choose(rng).expect("non-empty");
        timer.repower_gate(g, drive);
    } else if num_nets > 0 {
        let net = rng.gen_range(0..num_nets);
        timer.set_net_cap(net, rng.gen_range(0.0..6.0));
    }
}

/// Per-iteration cost of one policy: `(wall_ms, sim_ms)`.
fn one_iteration(
    timer: &mut Timer,
    exec: &Executor,
    policy: Option<(&dyn Partitioner, &PartitionerOptions)>,
) -> (f64, f64) {
    let update = timer.update_timing();
    let tdg = update.tdg();
    let payload = update.task_fn();
    match policy {
        None => {
            let t0 = Instant::now();
            let taskflow = Taskflow::from_tdg(tdg, &payload);
            drop(taskflow);
            let overhead = update.build_time() + t0.elapsed();
            let report = exec.run_tdg(tdg, &payload);
            let wall = (overhead + report.elapsed).as_secs_f64() * 1e3;
            let sim = overhead.as_secs_f64() * 1e3
                + simulate_makespan(tdg, SIM_WORKERS, DISPATCH_NS).makespan_ns / 1e6;
            (wall, sim)
        }
        Some((p, opts)) => {
            let t0 = Instant::now();
            let partition = p.partition(tdg, opts).expect("valid options");
            let quotient = QuotientTdg::build(tdg, &partition).expect("schedulable");
            let taskflow = Taskflow::from_quotient(&quotient, &payload);
            drop(taskflow);
            let overhead = update.build_time() + t0.elapsed();
            let report = exec.run_partitioned(&quotient, &payload);
            let wall = (overhead + report.elapsed).as_secs_f64() * 1e3;
            let sim = overhead.as_secs_f64() * 1e3
                + simulate_makespan(quotient.graph(), SIM_WORKERS, DISPATCH_NS).makespan_ns / 1e6;
            (wall, sim)
        }
    }
}

fn main() {
    let cfg = BenchConfig::from_args();
    let iterations = ((8_000.0 * cfg.scale) as usize).max(20);
    println!(
        "Figure 7 reproduction: {} incremental iterations @ scale {}\n",
        iterations, cfg.scale
    );

    for &circuit in &[PaperCircuit::VgaLcd, PaperCircuit::Leon2] {
        println!("== {} ==", circuit.name());
        let netlist = circuit.build(cfg.scale);
        let library = CellLibrary::typical();
        let exec = Executor::new(cfg.workers);

        // Tune GDCA once on the full-update TDG, as for Table 1.
        let gdca_ps = {
            let mut t = Timer::new(netlist.clone(), library.clone());
            let update = t.update_timing();
            tune_gdca_ps(update.tdg(), SIM_WORKERS, DISPATCH_NS)
        };

        let gdca: Box<dyn Partitioner> = Box::new(Gdca::new());
        let gpasta = gpasta_for(cfg.workers);
        let gdca_opts = PartitionerOptions::with_max_size(gdca_ps);
        let auto_opts = PartitionerOptions::default();
        let policies: Vec<Policy> = vec![
            ("original", None),
            ("gdca", Some((gdca.as_ref(), &gdca_opts))),
            ("gpasta", Some((gpasta.as_ref(), &auto_opts))),
        ];

        let mut wall_series: Vec<Vec<f64>> = Vec::new();
        let mut sim_series: Vec<Vec<f64>> = Vec::new();
        for (name, policy) in &policies {
            // Identical modifier sequence per policy.
            let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
            let mut timer = Timer::new(netlist.clone(), library.clone());
            // Initial full analysis is common to all policies (warm start).
            timer.update_timing().run_sequential();

            let (mut wall_cum, mut sim_cum) = (0.0f64, 0.0f64);
            let mut wall_curve = Vec::with_capacity(iterations);
            let mut sim_curve = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                apply_modifier(&mut timer, &mut rng);
                let (wall, sim) = one_iteration(&mut timer, &exec, *policy);
                wall_cum += wall;
                sim_cum += sim;
                wall_curve.push(wall_cum);
                sim_curve.push(sim_cum);
            }
            println!(
                "  {:<10} cumulative wall {:>10.1} ms | simulated ({} workers) {:>10.1} ms",
                name, wall_cum, SIM_WORKERS, sim_cum
            );
            wall_series.push(wall_curve);
            sim_series.push(sim_curve);
        }

        let last = |s: &[Vec<f64>], i: usize| *s[i].last().expect("non-empty");
        println!(
            "  simulated: G-PASTA improves overall STA by {:.0}% (paper: 43% on leon2); GDCA at {:.2}x the original (paper: 3.7x slower)\n",
            100.0 * (1.0 - last(&sim_series, 2) / last(&sim_series, 0)),
            last(&sim_series, 1) / last(&sim_series, 0)
        );

        let rows: Vec<Row> = (0..iterations)
            .map(|i| {
                Row::new(
                    format!("{}", i + 1),
                    &[
                        ("original_wall_ms", wall_series[0][i]),
                        ("gdca_wall_ms", wall_series[1][i]),
                        ("gpasta_wall_ms", wall_series[2][i]),
                        ("original_sim_ms", sim_series[0][i]),
                        ("gdca_sim_ms", sim_series[1][i]),
                        ("gpasta_sim_ms", sim_series[2][i]),
                    ],
                )
            })
            .collect();
        write_csv(
            &cfg.out_dir.join(format!("fig7_{}.csv", circuit.name())),
            &rows,
        );
        write_json(
            &cfg.out_dir.join(format!("fig7_{}.json", circuit.name())),
            &rows,
        );
    }
    println!("wrote {}", cfg.out_dir.join("fig7_*.csv").display());
}
