//! Figure 7: overall STA runtime over incremental timing iterations.
//!
//! Each iteration applies a design modifier (gate repowering or a net
//! capacitance change) followed by `update_timing`; the partitioner is
//! issued at every call. The cumulative runtime of three policies is
//! tracked: no partitioning, GDCA (tuned), and G-PASTA. The paper runs 8 K
//! iterations; the iteration count scales with `--scale`.
//!
//! Two cumulative series per policy:
//! * wall-clock on this host (single-core hosts understate the run-side
//!   savings), and
//! * build + partition + the deterministic 8-worker simulated run — the
//!   multi-core regime of the paper's testbed.
//!
//! ```text
//! cargo run --release -p gpasta-bench --bin fig7 -- --scale 0.05
//! ```
//!
//! With `--incremental` the harness instead compares from-scratch G-PASTA
//! per iteration against an [`IncrementalPartitioner`] that repairs a
//! cached partition inside the dirty cone (seeded by the timer's
//! full-space task ids) and rebuilds the scheduler graph through a
//! recycled [`FlowArena`]. It writes `fig7_<circuit>_incremental.{csv,json}`
//! plus a cross-circuit summary `BENCH_incremental.json`, and cross-checks
//! that both policies end on the exact same WNS.

use gpasta_bench::figs::{apply_modifier, fig7_circuit_rows, fig7_iterations, FIG7_SEED};
use gpasta_bench::tuning::{gpasta_for, DISPATCH_NS, SIM_WORKERS};
use gpasta_bench::{write_csv, write_json, BenchConfig, OutputError, Row};
use gpasta_circuits::PaperCircuit;
use gpasta_core::{IncrementalPartitioner, Partitioner, PartitionerOptions};
use gpasta_sched::{simulate_makespan, Executor, FlowArena, Taskflow};
use gpasta_sta::{CellLibrary, Timer};
use gpasta_tdg::QuotientTdg;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Per-iteration cumulative series of one incremental-mode policy, plus
/// its final WNS for the bit-identity cross-check.
struct IncrementalSeries {
    part_curve: Vec<f64>,
    wall_curve: Vec<f64>,
    sim_curve: Vec<f64>,
    final_wns_ps: f32,
}

/// The from-scratch baseline: partition the update TDG anew each
/// iteration (the default fig7 G-PASTA policy), with partition-only time
/// tracked separately.
fn run_scratch_policy(
    netlist: &gpasta_sta::Netlist,
    library: &CellLibrary,
    exec: &Executor,
    partitioner: &dyn Partitioner,
    opts: &PartitionerOptions,
    iterations: usize,
) -> IncrementalSeries {
    let mut rng = ChaCha8Rng::seed_from_u64(FIG7_SEED);
    let mut timer = Timer::new(netlist.clone(), library.clone());
    timer.update_timing().run_sequential();

    let (mut part_cum, mut wall_cum, mut sim_cum) = (0.0f64, 0.0f64, 0.0f64);
    let (mut part_curve, mut wall_curve, mut sim_curve) = (
        Vec::with_capacity(iterations),
        Vec::with_capacity(iterations),
        Vec::with_capacity(iterations),
    );
    for _ in 0..iterations {
        apply_modifier(&mut timer, &mut rng);
        let update = timer.update_timing();
        let tdg = update.tdg();
        let payload = update.task_fn();
        let t0 = Instant::now();
        let partition = partitioner.partition(tdg, opts).expect("valid options");
        let part = t0.elapsed();
        let quotient = QuotientTdg::build(tdg, &partition).expect("schedulable");
        let taskflow = Taskflow::from_quotient(&quotient, &payload);
        drop(taskflow);
        let overhead = update.build_time() + t0.elapsed();
        let report = exec.run_partitioned(&quotient, &payload);
        part_cum += part.as_secs_f64() * 1e3;
        wall_cum += (overhead + report.elapsed).as_secs_f64() * 1e3;
        sim_cum += overhead.as_secs_f64() * 1e3
            + simulate_makespan(quotient.graph(), SIM_WORKERS, DISPATCH_NS).makespan_ns / 1e6;
        part_curve.push(part_cum);
        wall_curve.push(wall_cum);
        sim_curve.push(sim_cum);
    }
    IncrementalSeries {
        part_curve,
        wall_curve,
        sim_curve,
        final_wns_ps: timer.report(1).wns_ps,
    }
}

/// The cached policy: install the partition once on the full-space TDG,
/// then repair it inside each iteration's dirty cone and recycle the
/// scheduler graph-build buffers through a [`FlowArena`]. Returns the
/// series plus the one-off install cost (charged to the first iteration's
/// cumulative partition time).
fn run_incremental_policy(
    netlist: &gpasta_sta::Netlist,
    library: &CellLibrary,
    exec: &Executor,
    inner: Box<dyn Partitioner>,
    opts: &PartitionerOptions,
    iterations: usize,
) -> (IncrementalSeries, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(FIG7_SEED);
    let mut timer = Timer::new(netlist.clone(), library.clone());

    // The initial full update *is* the full task space (task ids are the
    // stable full-space ids), so its TDG is the cache's key domain.
    let mut inc = IncrementalPartitioner::new(inner);
    let full_update = timer.update_timing();
    let t0 = Instant::now();
    inc.install(full_update.tdg(), opts)
        .expect("install on the full-space TDG");
    let install_ms = t0.elapsed().as_secs_f64() * 1e3;
    full_update.run_sequential();
    drop(full_update);

    let mut arena = FlowArena::new();
    let (mut part_cum, mut wall_cum, mut sim_cum) = (install_ms, install_ms, install_ms);
    let (mut part_curve, mut wall_curve, mut sim_curve) = (
        Vec::with_capacity(iterations),
        Vec::with_capacity(iterations),
        Vec::with_capacity(iterations),
    );
    for _ in 0..iterations {
        apply_modifier(&mut timer, &mut rng);
        let update = timer.update_timing();
        let ids = update.full_space_ids();
        let payload = update.task_fn();
        let t0 = Instant::now();
        // The timer's dirty cone is successor-closed and duplicate-free by
        // construction (forward invalidation), so take the trusted entry.
        let (_, sub) = inc
            .repair_and_project_trusted(&ids)
            .expect("ids are in range");
        let part = t0.elapsed();
        let quotient = QuotientTdg::build(update.tdg(), &sub).expect("schedulable");
        arena.load_quotient(&quotient);
        let overhead = update.build_time() + t0.elapsed();
        let report = exec.run_partitioned(&quotient, &payload);
        part_cum += part.as_secs_f64() * 1e3;
        wall_cum += (overhead + report.elapsed).as_secs_f64() * 1e3;
        sim_cum += overhead.as_secs_f64() * 1e3
            + simulate_makespan(quotient.graph(), SIM_WORKERS, DISPATCH_NS).makespan_ns / 1e6;
        part_curve.push(part_cum);
        wall_curve.push(wall_cum);
        sim_curve.push(sim_cum);
    }
    (
        IncrementalSeries {
            part_curve,
            wall_curve,
            sim_curve,
            final_wns_ps: timer.report(1).wns_ps,
        },
        install_ms,
    )
}

/// The `--incremental` mode: from-scratch G-PASTA vs. the dirty-cone
/// partition cache, identical modifier streams, WNS cross-checked.
fn run_incremental_mode(cfg: &BenchConfig) -> Result<(), OutputError> {
    let iterations = fig7_iterations(cfg.scale);
    println!(
        "Figure 7 (incremental partition maintenance): {} iterations @ scale {}\n",
        iterations, cfg.scale
    );

    let mut summary: Vec<Row> = Vec::new();
    for &circuit in &[PaperCircuit::VgaLcd, PaperCircuit::Leon2] {
        println!("== {} ==", circuit.name());
        let netlist = circuit.build(cfg.scale);
        let library = CellLibrary::typical();
        let exec = Executor::new(cfg.workers);
        let auto_opts = PartitionerOptions::default();

        // `--runs` independent repetitions per policy (same modifier
        // stream), keeping the run with the median cumulative partitioning
        // time so a scheduler hiccup in either policy cannot skew the
        // comparison.
        let median = |mut runs: Vec<IncrementalSeries>| {
            runs.sort_by(|a, b| {
                let part = |s: &IncrementalSeries| *s.part_curve.last().expect("non-empty");
                part(a).total_cmp(&part(b))
            });
            let mid = (runs.len() - 1) / 2;
            runs.swap_remove(mid)
        };
        let scratch_p = gpasta_for(cfg.workers);
        let scratch = median(
            (0..cfg.runs)
                .map(|_| {
                    run_scratch_policy(
                        &netlist,
                        &library,
                        &exec,
                        scratch_p.as_ref(),
                        &auto_opts,
                        iterations,
                    )
                })
                .collect(),
        );
        let mut inc_runs: Vec<(IncrementalSeries, f64)> = (0..cfg.runs)
            .map(|_| {
                run_incremental_policy(
                    &netlist,
                    &library,
                    &exec,
                    gpasta_for(cfg.workers),
                    &auto_opts,
                    iterations,
                )
            })
            .collect();
        inc_runs.sort_by(|a, b| {
            let part = |s: &(IncrementalSeries, f64)| *s.0.part_curve.last().expect("non-empty");
            part(a).total_cmp(&part(b))
        });
        let (inc, install_ms) = inc_runs.swap_remove((inc_runs.len() - 1) / 2);

        // Bit-identity: both policies executed valid partitioned TDGs over
        // the same modifier stream, so the analyses must agree exactly.
        assert_eq!(
            scratch.final_wns_ps.to_bits(),
            inc.final_wns_ps.to_bits(),
            "incremental repair changed the STA result: scratch WNS {} vs incremental WNS {}",
            scratch.final_wns_ps,
            inc.final_wns_ps
        );

        let last = |v: &[f64]| *v.last().expect("non-empty");
        let scratch_part = last(&scratch.part_curve);
        let inc_part = last(&inc.part_curve);
        println!(
            "  partitioning time: scratch {:>9.1} ms | incremental {:>9.1} ms (install {:.1} ms) | {:.1}x faster",
            scratch_part,
            inc_part,
            install_ms,
            scratch_part / inc_part
        );
        println!(
            "  wall: scratch {:>9.1} ms | incremental {:>9.1} ms; simulated ({} workers): scratch {:>9.1} ms | incremental {:>9.1} ms",
            last(&scratch.wall_curve),
            last(&inc.wall_curve),
            SIM_WORKERS,
            last(&scratch.sim_curve),
            last(&inc.sim_curve)
        );
        println!("  final WNS identical: {} ps\n", inc.final_wns_ps);

        let rows: Vec<Row> = (0..iterations)
            .map(|i| {
                Row::new(
                    format!("{}", i + 1),
                    &[
                        ("scratch_part_ms", scratch.part_curve[i]),
                        ("inc_part_ms", inc.part_curve[i]),
                        ("scratch_wall_ms", scratch.wall_curve[i]),
                        ("inc_wall_ms", inc.wall_curve[i]),
                        ("scratch_sim_ms", scratch.sim_curve[i]),
                        ("inc_sim_ms", inc.sim_curve[i]),
                    ],
                )
            })
            .collect();
        write_csv(
            &cfg.out_dir
                .join(format!("fig7_{}_incremental.csv", circuit.name())),
            &rows,
        )?;
        write_json(
            &cfg.out_dir
                .join(format!("fig7_{}_incremental.json", circuit.name())),
            &rows,
        )?;

        summary.push(Row::new(
            circuit.name(),
            &[
                ("iterations", iterations as f64),
                ("install_ms", install_ms),
                ("scratch_part_ms", scratch_part),
                ("incremental_part_ms", inc_part),
                ("speedup", scratch_part / inc_part),
                ("scratch_wall_ms", last(&scratch.wall_curve)),
                ("incremental_wall_ms", last(&inc.wall_curve)),
            ],
        ));
    }
    write_json(&cfg.out_dir.join("BENCH_incremental.json"), &summary)?;
    println!(
        "wrote {} and fig7_*_incremental.csv",
        cfg.out_dir.join("BENCH_incremental.json").display()
    );
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), OutputError> {
    let cfg = BenchConfig::from_args();
    if cfg.incremental {
        return run_incremental_mode(&cfg);
    }
    let iterations = fig7_iterations(cfg.scale);
    println!(
        "Figure 7 reproduction: {} incremental iterations @ scale {}\n",
        iterations, cfg.scale
    );

    for &circuit in &[PaperCircuit::VgaLcd, PaperCircuit::Leon2] {
        println!("== {} ==", circuit.name());
        // The measurement core is shared with `perf_smoke` and the
        // perf-regression test, so a committed baseline and a fresh run
        // are always method-identical.
        let rows = fig7_circuit_rows(circuit, cfg.scale, cfg.workers);

        let final_row = rows.last().expect("at least 20 iterations");
        let col = |name: &str| {
            final_row
                .values
                .iter()
                .find(|(k, _)| k == name)
                .map(|&(_, v)| v)
                .expect("fig7 schema")
        };
        for name in ["original", "gdca", "gpasta"] {
            println!(
                "  {:<10} cumulative wall {:>10.1} ms | simulated ({} workers) {:>10.1} ms",
                name,
                col(&format!("{name}_wall_ms")),
                SIM_WORKERS,
                col(&format!("{name}_sim_ms"))
            );
        }
        println!(
            "  simulated: G-PASTA improves overall STA by {:.0}% (paper: 43% on leon2); GDCA at {:.2}x the original (paper: 3.7x slower)\n",
            100.0 * (1.0 - col("gpasta_sim_ms") / col("original_sim_ms")),
            col("gdca_sim_ms") / col("original_sim_ms")
        );

        write_csv(
            &cfg.out_dir.join(format!("fig7_{}.csv", circuit.name())),
            &rows,
        )?;
        write_json(
            &cfg.out_dir.join(format!("fig7_{}.json", circuit.name())),
            &rows,
        )?;
    }
    println!("wrote {}", cfg.out_dir.join("fig7_*.csv").display());
    Ok(())
}
