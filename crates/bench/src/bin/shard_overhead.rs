//! Sharded-execution overhead benchmark.
//!
//! `gpasta shard` buys kill-tolerance with OS processes and pipes; this
//! bench measures what that buys *costs* on the fault-free path and
//! proves recovery is invisible to results:
//!
//! 1. **overhead** — the same update runs two ways, interleaved
//!    run-by-run: in-process in the worker's exact task order
//!    ([`run_in_plan_order`], task loop timed) and as a one-shard
//!    [`run_sharded`] run whose worker reports its own task-loop
//!    nanoseconds over the wire. Same order, same dispatch — the only
//!    difference is the worker's heartbeat/fault bookkeeping — so the
//!    comparison isolates what sharding costs from cache effects of a
//!    different schedule (which swing tens of percent either way) and
//!    from the (reported, but not policed) process spawn + context
//!    rebuild. The sharded loop must stay within 5 % of in-process
//!    whenever the baseline is long enough to measure (≥ 20 ms). A
//!    separate [`run_single_process`] run (level order) anchors bit
//!    identity across all three schedules.
//! 2. **healed bit-identity** — a fixed seed matrix of killed runs
//!    (SIGKILL on first attempts, plus one retry-exhausted shard that
//!    must poison and heal) each asserts its final WNS bits equal its
//!    uninterrupted oracle's.
//!
//! Writes `shard_overhead.csv` and the machine-readable summary
//! `BENCH_shard.json` that CI uploads.
//!
//! ```text
//! cargo run --release -p gpasta-bench --bin shard_overhead -- --scale 0.02
//! ```

use gpasta::shard::{run_in_plan_order, run_sharded, run_single_process, ShardRunConfig};
use gpasta_bench::{write_csv, write_json, BenchConfig, OutputError, Row};
use gpasta_circuits::PaperCircuit;
use gpasta_sched::{FaultKind, FaultPlan};
use std::path::PathBuf;
use std::time::Instant;

/// Best (minimum) of a set of samples; scheduler interference only ever
/// *adds* time, so the per-path minimum is the noise-robust estimator.
fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// The `gpasta` binary whose hidden `shard-worker` subcommand the
/// supervisor spawns: `$GPASTA_BIN` if set, else the sibling of this
/// bench binary in the same target directory.
fn gpasta_exe() -> PathBuf {
    if let Ok(path) = std::env::var("GPASTA_BIN") {
        return PathBuf::from(path);
    }
    let mut path = std::env::current_exe().expect("current exe");
    path.set_file_name("gpasta");
    path
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), OutputError> {
    let cfg = BenchConfig::from_args();
    println!(
        "Shard-overhead benchmark: scale {}, {} runs\n",
        cfg.scale, cfg.runs
    );
    let exe = gpasta_exe();
    assert!(
        exe.exists(),
        "worker binary {} not found; build the workspace first or set GPASTA_BIN",
        exe.display()
    );

    const SEED: u64 = 0x0DDBA11;
    let mut overhead_rows: Vec<Row> = Vec::new();
    let mut heal_rows: Vec<Row> = Vec::new();

    // --- 1. fault-free overhead: task loop vs task loop, interleaved ---
    for &circuit in &[PaperCircuit::VgaLcd, PaperCircuit::Leon2] {
        // Level-order oracle: any topological schedule must reproduce
        // these bits exactly.
        let oracle_wns = run_single_process(circuit, cfg.scale, SEED).wns_bits;

        let mut raw_ns = Vec::with_capacity(cfg.runs);
        let mut shard_ns = Vec::with_capacity(cfg.runs);
        let mut wall_ms = Vec::with_capacity(cfg.runs);
        for _ in 0..cfg.runs.max(2) {
            let raw = run_in_plan_order(circuit, cfg.scale, SEED, 1).expect("plan-order run");
            raw_ns.push(raw.exec_nanos as f64);
            assert_eq!(
                raw.wns_bits,
                oracle_wns,
                "{}: plan order must be bit-identical to level order",
                circuit.name()
            );

            let mut c = ShardRunConfig::new(circuit, cfg.scale, SEED, 1);
            c.worker_exe = exe.clone();
            let t = Instant::now();
            let out = run_sharded(&c).expect("single-shard run");
            wall_ms.push(t.elapsed().as_secs_f64() * 1e3);
            assert_eq!(out.num_shards, 1);
            assert_eq!(
                out.wns_bits,
                oracle_wns,
                "{}: one-shard run must be bit-identical to in-process",
                circuit.name()
            );
            shard_ns.push(out.worker_exec_nanos as f64);
        }

        let raw_ms = best(&raw_ns) / 1e6;
        let shard_ms = best(&shard_ns) / 1e6;
        let overhead_pct = 100.0 * (shard_ms - raw_ms) / raw_ms;
        // Only police the budget when the baseline is long enough for
        // the estimator to mean something; at smoke scales the loop is
        // microseconds and jitter dominates both paths.
        if raw_ms >= 20.0 {
            assert!(
                overhead_pct <= 5.0,
                "{}: sharded task loop costs {overhead_pct:.2}% over in-process (budget 5%)",
                circuit.name()
            );
        }
        println!(
            "== {} ==\n  in-process {:>9.3} ms | worker loop {:>9.3} ms | overhead {:+.2}% | wall (spawn+rebuild) {:>9.1} ms",
            circuit.name(),
            raw_ms,
            shard_ms,
            overhead_pct,
            best(&wall_ms)
        );
        overhead_rows.push(Row::new(
            circuit.name(),
            &[
                ("in_process_ms", raw_ms),
                ("worker_loop_ms", shard_ms),
                ("overhead_pct", overhead_pct),
                ("wall_ms", best(&wall_ms)),
                ("policed", if raw_ms >= 20.0 { 1.0 } else { 0.0 }),
            ],
        ));
    }

    // --- 2. healed bit-identity under a fixed seed matrix ---
    for &seed in &[0xA11CEu64, 0xB0B, 0xCAFE] {
        let oracle = run_single_process(PaperCircuit::AesCore, cfg.scale, seed);

        // Respawn path: SIGKILL one worker, exit(1) another, both healed
        // by retry.
        let mut c = ShardRunConfig::new(PaperCircuit::AesCore, cfg.scale, seed, 3);
        c.worker_exe = exe.clone();
        c.chaos_seed = seed;
        c.faults =
            FaultPlan::none()
                .inject(0, 0, FaultKind::Panic)
                .inject(1, 0, FaultKind::Transient);
        let killed = run_sharded(&c).expect("killed run");
        assert_eq!(
            killed.wns_bits, oracle.wns_bits,
            "seed {seed:#x}: killed-and-respawned run must match the oracle"
        );

        // Poison path: a shard that dies on every attempt heals
        // in-process at the end.
        let mut c = ShardRunConfig::new(PaperCircuit::AesCore, cfg.scale, seed, 3);
        c.worker_exe = exe.clone();
        c.retry.max_retries = 0;
        c.faults = FaultPlan::none().inject(0, 0, FaultKind::Panic);
        let poisoned = run_sharded(&c).expect("poisoned run");
        assert_eq!(poisoned.poisoned, vec![0], "seed {seed:#x}");
        assert_eq!(
            poisoned.wns_bits, oracle.wns_bits,
            "seed {seed:#x}: poisoned-and-healed run must match the oracle"
        );

        println!(
            "seed {seed:#x}: respawns {}, healed tasks {}, WNS bit-identical both ways",
            killed.respawns, poisoned.healed_tasks
        );
        heal_rows.push(Row::new(
            format!("heal_{seed:#x}"),
            &[
                ("respawns", killed.respawns as f64),
                ("healed_tasks", poisoned.healed_tasks as f64),
                ("wns_matches", 1.0),
            ],
        ));
    }

    // The CSV wants homogeneous columns, so it carries the overhead
    // rows only; the JSON summary carries everything.
    write_csv(&cfg.out_dir.join("shard_overhead.csv"), &overhead_rows)?;
    let mut rows = overhead_rows;
    rows.extend(heal_rows);
    write_json(&cfg.out_dir.join("BENCH_shard.json"), &rows)?;
    println!("\nwrote {}", cfg.out_dir.join("BENCH_shard.json").display());
    Ok(())
}
