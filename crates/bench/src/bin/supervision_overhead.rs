//! Supervision (crash-containment) overhead benchmark.
//!
//! The serve registry wraps every session operation in a supervisor:
//! the session mutex, a `catch_unwind` boundary, and an edit journal
//! appended for crash replay. This bench measures what that wrapper
//! costs on the fault-free fast path — the only path production traffic
//! takes — by running the same edit/update loop two ways:
//!
//! 1. **raw** — a bare [`Session`]: `apply_edit` + `update_timing`,
//!    no locks, no journal, no unwind boundary;
//! 2. **supervised** — the same edits through [`Registry::apply_edits`]
//!    and [`Registry::with_live`], exactly as the HTTP/RPC frontends
//!    dispatch them (chaos off, background checkpointer off).
//!
//! The two loops are interleaved run-by-run so clock drift and cache
//! warm-up cannot bias either side; per-path minima are compared and
//! the supervised path must stay within 5 % of raw whenever the
//! baseline is long enough to measure (≥ 20 ms). The final timing
//! reports of both paths are asserted bit-identical — supervision must
//! be invisible to results, not just cheap.
//!
//! Writes `supervision_overhead.csv` and the machine-readable summary
//! `BENCH_supervision.json` that CI uploads.
//!
//! ```text
//! cargo run --release -p gpasta-bench --bin supervision_overhead -- --scale 0.05
//! ```

use gpasta::serve::Registry;
use gpasta::session::{DesignSources, Edit, Session};
use gpasta_bench::{write_csv, write_json, BenchConfig, OutputError, Row};
use gpasta_circuits::PaperCircuit;
use gpasta_sched::{RunBudget, StopCause};
use gpasta_sta::write_verilog;
use std::time::Instant;

/// Best (minimum) of a set of millisecond samples; scheduler
/// interference only ever *adds* time, so the per-path minimum is the
/// noise-robust estimator (same reasoning as `deadline_overhead`).
fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), OutputError> {
    let cfg = BenchConfig::from_args();
    println!(
        "Supervision-overhead benchmark: scale {}, {} workers, {} runs\n",
        cfg.scale, cfg.workers, cfg.runs
    );

    let spool =
        std::env::temp_dir().join(format!("gpasta-bench-supervision-{}", std::process::id()));
    let mut rows: Vec<Row> = Vec::new();
    for &circuit in &[PaperCircuit::VgaLcd, PaperCircuit::Leon2] {
        let verilog = write_verilog(&circuit.build(cfg.scale), "top");
        let sources = DesignSources::verilog_only(verilog);
        let budget = RunBudget::unbounded();

        let mut raw = Session::create("raw", sources.clone(), cfg.workers).expect("raw session");
        let registry = Registry::new(spool.clone(), cfg.workers, 4);
        registry.create("sup", sources).expect("supervised session");

        // Alternate drive strengths so every iteration dirties the gate
        // and the update has real propagation work; both paths see the
        // identical edit sequence.
        let mut raw_ms = Vec::with_capacity(cfg.runs);
        let mut sup_ms = Vec::with_capacity(cfg.runs);
        let mut edits = 0u32;
        for run in 0..cfg.runs.max(2) {
            let edit = Edit::Repower {
                gate: "u1".to_string(),
                drive: if run % 2 == 0 { 2.0 } else { 0.5 },
            };

            let t = Instant::now();
            raw.apply_edit(&edit).expect("raw edit");
            let out = raw.update_timing(&budget).expect("raw update");
            raw_ms.push(t.elapsed().as_secs_f64() * 1e3);
            assert_eq!(out.stop, StopCause::Completed, "unbounded run completes");

            let t = Instant::now();
            let receipt = registry
                .apply_edits("sup", &[edit])
                .expect("supervised edit");
            assert!(receipt.rejected.is_none(), "edit is valid");
            let out = registry
                .with_live("sup", |s| s.update_timing(&budget))
                .expect("supervised dispatch")
                .expect("supervised update");
            sup_ms.push(t.elapsed().as_secs_f64() * 1e3);
            assert_eq!(out.stop, StopCause::Completed, "unbounded run completes");
            edits += 1;
        }

        // Supervision must be invisible to results: both paths end on
        // the same edit history, so the reports must agree bit-for-bit.
        let raw_wns = raw.report(1).wns_ps;
        let sup_wns = registry
            .with_live("sup", |s| s.report(1))
            .expect("supervised report")
            .wns_ps;
        assert_eq!(
            raw_wns.to_bits(),
            sup_wns.to_bits(),
            "{}: supervised WNS {sup_wns} ps differs from raw {raw_wns} ps",
            circuit.name()
        );

        let raw_best = best(&raw_ms);
        let sup_best = best(&sup_ms);
        let overhead_pct = 100.0 * (sup_best - raw_best) / raw_best;
        // Only police the budget when the baseline is long enough for
        // the estimator to mean something; at smoke scales the per-run
        // time is microseconds and jitter dominates both paths.
        if raw_best >= 20.0 {
            assert!(
                overhead_pct <= 5.0,
                "{}: supervised path costs {overhead_pct:.2}% over raw (budget 5%)",
                circuit.name()
            );
        }
        println!(
            "== {} ==\n  raw {:>9.3} ms | supervised {:>9.3} ms | overhead {:+.2}% | {} edits, WNS bit-identical",
            circuit.name(),
            raw_best,
            sup_best,
            overhead_pct,
            edits
        );

        rows.push(Row::new(
            circuit.name(),
            &[
                ("raw_ms", raw_best),
                ("supervised_ms", sup_best),
                ("overhead_pct", overhead_pct),
                ("edits", f64::from(edits)),
                ("policed", if raw_best >= 20.0 { 1.0 } else { 0.0 }),
            ],
        ));
    }
    std::fs::remove_dir_all(&spool).ok();

    write_csv(&cfg.out_dir.join("supervision_overhead.csv"), &rows)?;
    write_json(&cfg.out_dir.join("BENCH_supervision.json"), &rows)?;
    println!(
        "\nwrote {}",
        cfg.out_dir.join("BENCH_supervision.json").display()
    );
    Ok(())
}
