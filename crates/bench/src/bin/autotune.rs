//! Autotuner: sweep partition size `Ps` × executor chunk size on this
//! host and record the best point.
//!
//! The two knobs interact: larger partitions mean fewer, heavier
//! scheduler units (less dependency traffic to batch), while the chunk
//! size bounds how many fan-out decrements a worker coalesces into one
//! `fetch_sub` (see `gpasta_sched::Executor::with_chunk_size`). The sweep
//! measures the real partitioned executor on a full `update_timing` TDG
//! and writes every `(Ps, chunk)` median plus the chosen point to
//! `BENCH_autotune.{json,csv}` — a machine-readable artifact for the
//! nightly CI job, *not* a committed result (keep it out of `results/`;
//! the artifact guard bans stray `BENCH_*` files there).
//!
//! ```text
//! cargo run --release -p gpasta-bench --bin autotune -- --scale 0.02 --out target/autotune
//! ```

use gpasta_bench::tuning::{gpasta_for, tune_ps_chunk, CANDIDATE_CHUNK, CANDIDATE_PS};
use gpasta_bench::{write_csv, write_json, BenchConfig, OutputError, Row};
use gpasta_circuits::PaperCircuit;
use gpasta_sta::{CellLibrary, Timer};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), OutputError> {
    let cfg = BenchConfig::from_args();
    let circuit = PaperCircuit::VgaLcd;
    println!(
        "Autotune: {} @ scale {} — {} Ps × {} chunk candidates, {} runs/point, {} workers\n",
        circuit.name(),
        cfg.scale,
        CANDIDATE_PS.len(),
        CANDIDATE_CHUNK.len(),
        cfg.runs,
        cfg.workers
    );

    let mut timer = Timer::new(circuit.build(cfg.scale), CellLibrary::typical());
    let update = timer.update_timing();
    let payload = update.task_fn();
    let partitioner = gpasta_for(cfg.workers);
    let (best, points) = tune_ps_chunk(
        update.tdg(),
        &payload,
        partitioner.as_ref(),
        cfg.workers,
        cfg.runs,
    );

    println!("{:>5} {:>6} {:>14}", "Ps", "chunk", "median_run_ms");
    let mut rows: Vec<Row> = points
        .iter()
        .map(|p| {
            let ms = p.median_run.as_secs_f64() * 1e3;
            println!("{:>5} {:>6} {:>14.3}", p.ps, p.chunk, ms);
            Row::new(
                format!("ps{}_chunk{}", p.ps, p.chunk),
                &[
                    ("ps", p.ps as f64),
                    ("chunk", p.chunk as f64),
                    ("median_run_ms", ms),
                ],
            )
        })
        .collect();
    rows.push(Row::new(
        "chosen",
        &[
            ("ps", best.ps as f64),
            ("chunk", best.chunk as f64),
            ("median_run_ms", best.median_run.as_secs_f64() * 1e3),
        ],
    ));
    println!(
        "\nchosen: Ps={} chunk={} ({:.3} ms median run)",
        best.ps,
        best.chunk,
        best.median_run.as_secs_f64() * 1e3
    );

    write_json(&cfg.out_dir.join("BENCH_autotune.json"), &rows)?;
    write_csv(&cfg.out_dir.join("BENCH_autotune.csv"), &rows)?;
    println!(
        "wrote {}",
        cfg.out_dir.join("BENCH_autotune.json").display()
    );
    Ok(())
}
