//! Table 1: overall performance comparison among GDCA, seq-G-PASTA,
//! G-PASTA and deter-G-PASTA on the six-circuit suite.
//!
//! Reproduces, per circuit: `#tasks`, `#deps`, `T_TDG` (unpartitioned TDG
//! runtime), `T_TDGP` per partitioner (with speedup over `T_TDG`), and
//! `T_Partition` per partitioner (with speedup over GDCA). GDCA runs at a
//! tuned partition size; the G-PASTA family uses the default (TDG size).
//!
//! ```text
//! cargo run --release -p gpasta-bench --bin table1 -- --scale 0.05
//! ```

use gpasta_bench::tuning::{DISPATCH_NS, SIM_WORKERS};
use gpasta_bench::{
    flow, measure_partitioned_update, measure_plain_update, tune_gdca_ps, write_csv, write_json,
    BenchConfig, OutputError, Row,
};
use gpasta_circuits::PaperCircuit;
use gpasta_core::{DeterGPasta, GPasta, Gdca, Partitioner, PartitionerOptions, SeqGPasta};
use gpasta_gpu::Device;
use gpasta_sched::{simulate_makespan, Executor};
use gpasta_sta::{CellLibrary, Timer};
use gpasta_tdg::QuotientTdg;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), OutputError> {
    let cfg = BenchConfig::from_args();
    println!(
        "Table 1 reproduction @ scale {} ({} runs, {} workers)\n",
        cfg.scale, cfg.runs, cfg.workers
    );
    println!(
        "{:<10} {:>9} {:>9} {:>10} | {:>34} | {:>34}",
        "circuit",
        "#tasks",
        "#deps",
        "T_TDG(ms)",
        "T_TDGP ms (speedup)",
        "T_Partition ms (vs GDCA)"
    );
    println!(
        "{:<10} {:>9} {:>9} {:>10} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}",
        "", "", "", "", "GDCA", "seq-GP", "GP", "deter", "GDCA", "seq-GP", "GP", "deter"
    );

    let mut rows = Vec::new();
    for &circuit in PaperCircuit::all() {
        let netlist = circuit.build(cfg.scale);
        let library = CellLibrary::typical();
        let exec = Executor::new(cfg.workers);

        // Unpartitioned baseline.
        let mut timer = Timer::new(netlist.clone(), library.clone());
        let plain = flow::average(cfg.runs, || {
            timer.invalidate_all();
            measure_plain_update(&mut timer, &exec)
        });

        // Tune GDCA on the full-update TDG, as the paper does per circuit.
        let gdca_ps = {
            let mut t = Timer::new(netlist.clone(), library.clone());
            let update = t.update_timing();
            tune_gdca_ps(update.tdg(), SIM_WORKERS, DISPATCH_NS)
        };

        let partitioners: Vec<(Box<dyn Partitioner>, PartitionerOptions)> = vec![
            (
                Box::new(Gdca::new()),
                PartitionerOptions::with_max_size(gdca_ps),
            ),
            (Box::new(SeqGPasta::new()), PartitionerOptions::default()),
            (
                Box::new(GPasta::with_device(Device::new(cfg.workers))),
                PartitionerOptions::default(),
            ),
            (
                Box::new(DeterGPasta::with_device(Device::new(cfg.workers))),
                PartitionerOptions::default(),
            ),
        ];

        // Simulated makespan of the unpartitioned TDG on SIM_WORKERS.
        let sim_tdg = {
            let mut t = Timer::new(netlist.clone(), library.clone());
            let update = t.update_timing();
            simulate_makespan(update.tdg(), SIM_WORKERS, DISPATCH_NS).makespan_ns / 1e6
        };

        let mut tdgp = Vec::new();
        let mut tpart = Vec::new();
        let mut sim_tdgp = Vec::new();
        for (p, opts) in &partitioners {
            let mut timer = Timer::new(netlist.clone(), library.clone());
            let t = flow::average(cfg.runs, || {
                timer.invalidate_all();
                measure_partitioned_update(&mut timer, &exec, p.as_ref(), opts)
            });
            tdgp.push(t.run.as_secs_f64() * 1e3);
            tpart.push(t.partition.as_secs_f64() * 1e3);

            let mut timer = Timer::new(netlist.clone(), library.clone());
            let update = timer.update_timing();
            let partition = p.partition(update.tdg(), opts).expect("valid options");
            let q = QuotientTdg::build(update.tdg(), &partition).expect("schedulable");
            sim_tdgp.push(simulate_makespan(q.graph(), SIM_WORKERS, DISPATCH_NS).makespan_ns / 1e6);
        }

        let t_tdg = plain.run.as_secs_f64() * 1e3;
        println!(
            "{:<10} {:>9} {:>9} {:>10.2} | {:>4.2} ({:>4.1}x) {:>4.2} ({:>4.1}x) {:>4.2} ({:>4.1}x) {:>4.2} ({:>4.1}x) | {:>8.2} {:>4.2} ({:>4.1}x) {:>4.2} ({:>4.1}x) {:>4.2} ({:>4.1}x)",
            circuit.name(),
            plain.num_tasks,
            plain.num_deps,
            t_tdg,
            tdgp[0], t_tdg / tdgp[0],
            tdgp[1], t_tdg / tdgp[1],
            tdgp[2], t_tdg / tdgp[2],
            tdgp[3], t_tdg / tdgp[3],
            tpart[0],
            tpart[1], tpart[0] / tpart[1],
            tpart[2], tpart[0] / tpart[2],
            tpart[3], tpart[0] / tpart[3],
        );

        println!(
            "{:<10} simulated {}-worker makespan: TDG {:>8.2} ms | GDCA {:.2} ({:.1}x)  seq-GP {:.2} ({:.1}x)  GP {:.2} ({:.1}x)  deter {:.2} ({:.1}x)",
            "",
            SIM_WORKERS,
            sim_tdg,
            sim_tdgp[0], sim_tdg / sim_tdgp[0],
            sim_tdgp[1], sim_tdg / sim_tdgp[1],
            sim_tdgp[2], sim_tdg / sim_tdgp[2],
            sim_tdgp[3], sim_tdg / sim_tdgp[3],
        );

        rows.push(Row::new(
            circuit.name(),
            &[
                ("tasks", plain.num_tasks as f64),
                ("deps", plain.num_deps as f64),
                ("t_tdg_ms", t_tdg),
                ("sim_tdg_ms", sim_tdg),
                ("sim_tdgp_gdca_ms", sim_tdgp[0]),
                ("sim_tdgp_seq_ms", sim_tdgp[1]),
                ("sim_tdgp_gpasta_ms", sim_tdgp[2]),
                ("sim_tdgp_deter_ms", sim_tdgp[3]),
                ("t_tdgp_gdca_ms", tdgp[0]),
                ("t_tdgp_seq_ms", tdgp[1]),
                ("t_tdgp_gpasta_ms", tdgp[2]),
                ("t_tdgp_deter_ms", tdgp[3]),
                ("t_part_gdca_ms", tpart[0]),
                ("t_part_seq_ms", tpart[1]),
                ("t_part_gpasta_ms", tpart[2]),
                ("t_part_deter_ms", tpart[3]),
                ("gdca_ps", gdca_ps as f64),
            ],
        ));
    }

    write_csv(&cfg.out_dir.join("table1.csv"), &rows)?;
    write_json(&cfg.out_dir.join("table1.json"), &rows)?;
    println!("\nwrote {}", cfg.out_dir.join("table1.csv").display());
    Ok(())
}
