//! Figure 1(a): runtime breakdown of the core `update_timing` method with
//! and without partitioning.
//!
//! The paper profiles OpenTimer on a large design: building the TDG takes
//! 59 % and running it 41 %; with partitioning, the extra partitioning
//! slice buys a ~50 % total improvement. This binary reproduces the
//! breakdown on the netcard-class circuit.
//!
//! ```text
//! cargo run --release -p gpasta-bench --bin fig1a -- --scale 0.05
//! ```

use gpasta_bench::{
    flow, measure_partitioned_update, measure_plain_update, write_csv, write_json, BenchConfig,
    OutputError, Row,
};
use gpasta_circuits::PaperCircuit;
use gpasta_core::{GPasta, PartitionerOptions};
use gpasta_gpu::Device;
use gpasta_sched::Executor;
use gpasta_sta::{CellLibrary, Timer};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), OutputError> {
    let cfg = BenchConfig::from_args();
    let circuit = PaperCircuit::Netcard;
    println!(
        "Figure 1(a) reproduction: update_timing breakdown on {} @ scale {}\n",
        circuit.name(),
        cfg.scale
    );

    let netlist = circuit.build(cfg.scale);
    let library = CellLibrary::typical();
    let exec = Executor::new(cfg.workers);

    let mut timer = Timer::new(netlist.clone(), library.clone());
    let plain = flow::average(cfg.runs, || {
        timer.invalidate_all();
        measure_plain_update(&mut timer, &exec)
    });

    let gpasta = GPasta::with_device(Device::new(cfg.workers));
    let mut timer = Timer::new(netlist, library);
    let part = flow::average(cfg.runs, || {
        timer.invalidate_all();
        measure_partitioned_update(&mut timer, &exec, &gpasta, &PartitionerOptions::default())
    });

    // Deterministic 8-worker run makespans, for the multi-core shape.
    use gpasta_bench::tuning::{DISPATCH_NS, SIM_WORKERS};
    use gpasta_core::Partitioner;
    use gpasta_sched::simulate_makespan;
    use gpasta_tdg::QuotientTdg;
    let netlist2 = circuit.build(cfg.scale);
    let mut timer = Timer::new(netlist2, CellLibrary::typical());
    let update = timer.update_timing();
    let sim_plain_run = simulate_makespan(update.tdg(), SIM_WORKERS, DISPATCH_NS).makespan_ns / 1e9;
    let partition = gpasta
        .partition(update.tdg(), &PartitionerOptions::default())
        .expect("valid options");
    let q = QuotientTdg::build(update.tdg(), &partition).expect("schedulable");
    let sim_part_run = simulate_makespan(q.graph(), SIM_WORKERS, DISPATCH_NS).makespan_ns / 1e9;

    let pct = |d: std::time::Duration, total: std::time::Duration| {
        100.0 * d.as_secs_f64() / total.as_secs_f64()
    };
    let (pt, tt) = (plain.total(), part.total());
    println!(
        "without partitioning ({:.2} ms total):",
        pt.as_secs_f64() * 1e3
    );
    println!("  build TDG : {:>5.1}%", pct(plain.build, pt));
    println!("  run TDG   : {:>5.1}%", pct(plain.run, pt));
    println!(
        "with G-PASTA partitioning ({:.2} ms total):",
        tt.as_secs_f64() * 1e3
    );
    println!("  build TDG : {:>5.1}%", pct(part.build, tt));
    println!(
        "  partition : {:>5.1}%",
        pct(part.partition + part.quotient, tt)
    );
    println!("  run TDG   : {:>5.1}%", pct(part.run, tt));
    println!(
        "\ntotal improvement (this host's wall-clock): {:.1}%",
        100.0 * (1.0 - tt.as_secs_f64() / pt.as_secs_f64())
    );

    // The multi-core variant: measured build/partition + simulated
    // SIM_WORKERS-worker run (the regime of the paper's testbed).
    let sim_pt = plain.build.as_secs_f64() + sim_plain_run;
    let sim_tt = (part.build + part.partition + part.quotient).as_secs_f64() + sim_part_run;
    println!(
        "total improvement ({} simulated run workers): {:.1}% (paper: ~50% with GPU partitioning)",
        SIM_WORKERS,
        100.0 * (1.0 - sim_tt / sim_pt)
    );

    let rows = vec![
        Row::new(
            "without_partitioning",
            &[
                ("build_ms", plain.build.as_secs_f64() * 1e3),
                ("partition_ms", 0.0),
                ("run_ms", plain.run.as_secs_f64() * 1e3),
                ("total_ms", pt.as_secs_f64() * 1e3),
            ],
        ),
        Row::new(
            "with_gpasta",
            &[
                ("build_ms", part.build.as_secs_f64() * 1e3),
                (
                    "partition_ms",
                    (part.partition + part.quotient).as_secs_f64() * 1e3,
                ),
                ("run_ms", part.run.as_secs_f64() * 1e3),
                ("total_ms", tt.as_secs_f64() * 1e3),
            ],
        ),
    ];
    write_csv(&cfg.out_dir.join("fig1a.csv"), &rows)?;
    write_json(&cfg.out_dir.join("fig1a.json"), &rows)?;
    println!("wrote {}", cfg.out_dir.join("fig1a.csv").display());
    Ok(())
}
