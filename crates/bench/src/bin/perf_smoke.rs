//! Perf smoke: a minutes-not-hours regression gate over the hot paths.
//!
//! Runs the fig7 (`vga_lcd`) and fig8 (`leon2`) measurement cores at
//! smoke scale with a pinned worker count, checks the fresh rows still
//! carry the committed figure files' column schema, summarises them
//! ([`gpasta_bench::regress`]), and compares against the committed
//! baseline `results/perf_baseline.json` with the tolerance band. Any
//! metric outside the band exits 1 — this is the CI perf-smoke step.
//!
//! The fresh summary is always written to `<out>/BENCH_perf_smoke.json`
//! so CI can upload it as an artifact.
//!
//! Baseline refresh (after an intentional perf change, see DESIGN.md
//! §13):
//!
//! ```text
//! GPASTA_PERF_REFRESH=1 cargo run --release -p gpasta-bench --bin perf_smoke
//! ```
//!
//! Tolerances: `GPASTA_PERF_TOL` (wall band, default 0.60) and
//! `GPASTA_PERF_SPEEDUP_TOL` (speedup band, default 0.30).

use gpasta_bench::regress::{
    check_columns, check_schema, compare, run_smoke, PerfSummary, Tolerance,
};
use gpasta_bench::{read_json, write_json, BenchConfig};
use std::path::Path;

/// The committed baseline the smoke compares against (and the refresh
/// mode rewrites).
const BASELINE: &str = "results/perf_baseline.json";

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = BenchConfig::from_args();
    println!("Perf smoke: fig7(vga_lcd) + fig8(leon2) at smoke scale, pinned workers\n");
    let smoke = run_smoke();

    // The smoke rows must still speak the committed figure files' schema
    // (fewer rows, identical columns).
    check_columns(
        "results/fig7_vga_lcd.json",
        &smoke.fig7_rows,
        &read_json(Path::new("results/fig7_vga_lcd.json"))?,
    )?;
    check_columns(
        "results/fig8_leon2.json",
        &smoke.fig8_rows,
        &read_json(Path::new("results/fig8_leon2.json"))?,
    )?;

    for (metric, value) in &smoke.summary.metrics {
        println!("  {metric:<34} {value:>10.3}");
    }
    println!();

    let summary_rows = smoke.summary.to_rows();
    write_json(&cfg.out_dir.join("BENCH_perf_smoke.json"), &summary_rows)?;
    println!(
        "wrote {}",
        cfg.out_dir.join("BENCH_perf_smoke.json").display()
    );

    if std::env::var("GPASTA_PERF_REFRESH").as_deref() == Ok("1") {
        write_json(Path::new(BASELINE), &summary_rows)?;
        println!("refreshed {BASELINE}");
        return Ok(());
    }

    let baseline = PerfSummary::load(Path::new(BASELINE))?;
    check_schema(BASELINE, &summary_rows, &baseline.to_rows())?;
    let tol = Tolerance::from_env();
    let regressions = compare(&smoke.summary, &baseline, tol)?;
    if regressions.is_empty() {
        println!(
            "within tolerance of {BASELINE} (wall +{:.0}%, speedup -{:.0}%)",
            tol.wall * 100.0,
            tol.speedup * 100.0 / (1.0 + tol.speedup)
        );
        return Ok(());
    }
    for r in &regressions {
        eprintln!("regression: {r}");
    }
    Err(format!(
        "{} metric(s) regressed past the tolerance band; if intentional, refresh with GPASTA_PERF_REFRESH=1 (DESIGN.md §13)",
        regressions.len()
    )
    .into())
}
