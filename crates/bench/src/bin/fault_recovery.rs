//! Fault-recovery overhead and correctness benchmark.
//!
//! Three measurements per circuit, each over the full `update_timing` TDG:
//!
//! 1. **plain** — the non-recovering `Executor::run_tdg` path;
//! 2. **recovering, no faults** — `run_recovering` with [`FaultPlan::none`];
//!    the gap to (1) is the price of fault transparency (per-task
//!    `catch_unwind` + an empty fault-plan probe) and must stay ~zero;
//! 3. **recovering, seeded faults** — `run_recovering` under a fixed seed
//!    matrix, followed by `mark_unknown` + `heal`; the healed analysis is
//!    asserted bit-identical to the fault-free reference every time.
//!
//! Writes `fault_recovery.{csv,json}` (one row per circuit) and the
//! machine-readable summary `BENCH_fault_recovery.json` that CI uploads.
//!
//! ```text
//! cargo run --release -p gpasta-bench --bin fault_recovery -- --scale 0.05
//! ```

use gpasta_bench::{write_csv, write_json, BenchConfig, OutputError, Row};
use gpasta_circuits::PaperCircuit;
use gpasta_sched::{Executor, FaultKind, FaultPlan, RetryPolicy};
use gpasta_sta::{CellLibrary, Timer};
use std::time::Duration;

/// Fixed fault seeds: every CI run and every host exercises the same fault
/// sets, so recovery behaviour is reproducible bug-for-bug.
const SEEDS: [u64; 3] = [0xFA17, 0x0001, 0x0002];

/// Per-task fault probability for the seeded runs.
const RATE: f64 = 0.02;

/// Median of a set of millisecond samples.
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[(samples.len() - 1) / 2]
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), OutputError> {
    let cfg = BenchConfig::from_args();
    println!(
        "Fault-recovery benchmark: scale {}, {} workers, {} runs, seeds {:#x?}\n",
        cfg.scale, cfg.workers, cfg.runs, SEEDS
    );

    let mut rows: Vec<Row> = Vec::new();
    for &circuit in &[PaperCircuit::VgaLcd, PaperCircuit::Leon2] {
        let netlist = circuit.build(cfg.scale);
        let library = CellLibrary::typical();
        let exec = Executor::new(cfg.workers);

        // Fault-free reference analysis, snapshotted bit-exactly.
        let mut timer = Timer::new(netlist, library);
        timer.update_timing().run_sequential();
        let reference_wns = timer.report(1).wns_ps;

        // (1) vs (2): the no-fault overhead of the recovering path. Both
        // paths re-execute the same full-space TDG, which propagation tasks
        // overwrite idempotently.
        timer.invalidate_all();
        let (plain_ms, recovering_ms) = {
            let update = timer.update_timing();
            let tdg = update.tdg();
            let payload = update.task_fn();
            let no_faults = FaultPlan::none();
            let policy = RetryPolicy::default();

            // Interleave the two paths so clock drift and cache warm-up
            // cannot bias the comparison either way.
            let mut plain = Vec::with_capacity(cfg.runs);
            let mut recovering = Vec::with_capacity(cfg.runs);
            for _ in 0..cfg.runs {
                plain.push(exec.run_tdg(tdg, &payload).elapsed.as_secs_f64() * 1e3);
                let rec = update.run_recovering(&exec, &no_faults, &policy);
                assert!(rec.is_clean(), "no plan, no faults");
                recovering.push(rec.outcome.report.elapsed.as_secs_f64() * 1e3);
            }
            (median(plain), median(recovering))
        };
        let overhead_pct = 100.0 * (recovering_ms - plain_ms) / plain_ms;
        // Only police the 5 % budget when the run is long enough for the
        // median to mean something; at smoke scales the per-run time is
        // microseconds and scheduler jitter dominates both paths.
        if plain_ms >= 20.0 {
            assert!(
                overhead_pct <= 5.0,
                "{}: recovering path costs {overhead_pct:.2}% over plain (budget 5%)",
                circuit.name()
            );
        }

        // (3): seeded fault storms, healed back to the reference bits.
        let kinds = [
            FaultKind::Panic,
            FaultKind::Transient,
            FaultKind::WrongResult,
        ];
        let retry = RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_micros(5),
            max_backoff: Duration::from_micros(100),
        };
        let (mut fired_total, mut poisoned_total, mut heal_ms_total) = (0u64, 0usize, 0.0f64);
        let mut tasks = 0usize;
        // Injected panics are expected here: keep their backtraces out of
        // the benchmark output. The hook is restored afterwards.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for &seed in &SEEDS {
            timer.invalidate_all();
            {
                let update = timer.update_timing();
                tasks = update.tdg().num_tasks();
                let plan = FaultPlan::random(seed, RATE, &kinds);
                let rec = update.run_recovering(&exec, &plan, &retry);
                update.mark_unknown(&rec);
                let t0 = std::time::Instant::now();
                let healed = update.heal(&rec);
                heal_ms_total += t0.elapsed().as_secs_f64() * 1e3;
                assert_eq!(healed, rec.outcome.poisoned_tasks.len());
                fired_total += plan.fired();
                poisoned_total += rec.outcome.poisoned_tasks.len();
            }
            let healed_wns = timer.report(1).wns_ps;
            assert_eq!(
                healed_wns.to_bits(),
                reference_wns.to_bits(),
                "{}: healed WNS {healed_wns} ps differs from fault-free {reference_wns} ps (seed {seed:#x})",
                circuit.name()
            );
        }
        std::panic::set_hook(default_hook);
        let salvaged_frac = 1.0 - poisoned_total as f64 / (tasks * SEEDS.len()) as f64;

        println!(
            "== {} ==\n  plain {:>9.3} ms | recovering {:>9.3} ms | overhead {:+.2}%\n  \
             {} seeded runs: {} faults fired, {:.1}% of tasks salvaged, heal {:.3} ms total, healed WNS bit-identical\n",
            circuit.name(),
            plain_ms,
            recovering_ms,
            overhead_pct,
            SEEDS.len(),
            fired_total,
            100.0 * salvaged_frac,
            heal_ms_total
        );

        rows.push(Row::new(
            circuit.name(),
            &[
                ("tasks", tasks as f64),
                ("plain_ms", plain_ms),
                ("recovering_ms", recovering_ms),
                ("overhead_pct", overhead_pct),
                ("faults_fired", fired_total as f64),
                ("salvaged_frac", salvaged_frac),
                ("heal_ms", heal_ms_total),
            ],
        ));
    }

    write_csv(&cfg.out_dir.join("fault_recovery.csv"), &rows)?;
    write_json(&cfg.out_dir.join("fault_recovery.json"), &rows)?;
    write_json(&cfg.out_dir.join("BENCH_fault_recovery.json"), &rows)?;
    println!(
        "wrote {}",
        cfg.out_dir.join("BENCH_fault_recovery.json").display()
    );
    Ok(())
}
