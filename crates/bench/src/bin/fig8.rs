//! Figure 8: TDG runtime (after partitioning) under different partition
//! sizes.
//!
//! GDCA's runtime shows a V-shape (too-small sizes leave scheduling cost,
//! too-large sizes destroy parallelism), while the G-PASTA family keeps
//! improving until saturation thanks to the partition-count lower bound —
//! so its `Ps` needs no tuning.
//!
//! Two metrics per point:
//! * wall-clock on this host's executor (core-count dependent — on a
//!   single-core machine the parallelism-loss penalty is invisible), and
//! * the deterministic 8-worker list-scheduling makespan
//!   ([`gpasta_sched::simulate_makespan`]), which reproduces the paper's
//!   multi-core shape on any machine and is what the printed table shows.
//!
//! ```text
//! cargo run --release -p gpasta-bench --bin fig8 -- --scale 0.05
//! ```

use gpasta_bench::tuning::{DISPATCH_NS, SIM_WORKERS};
use gpasta_bench::{
    flow, measure_partitioned_update, write_csv, write_json, BenchConfig, OutputError, Row,
};
use gpasta_circuits::PaperCircuit;
use gpasta_core::{DeterGPasta, GPasta, Gdca, Partitioner, PartitionerOptions, SeqGPasta};
use gpasta_gpu::Device;
use gpasta_sched::{simulate_makespan, Executor};
use gpasta_sta::{CellLibrary, Timer};
use gpasta_tdg::QuotientTdg;

const PARTITION_SIZES: &[usize] = &[1, 2, 3, 5, 8, 15, 30, 60, 120, 240];

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), OutputError> {
    let cfg = BenchConfig::from_args();
    println!(
        "Figure 8 reproduction: TDG runtime vs partition size @ scale {} (simulated {} workers, {} ns/dispatch)\n",
        cfg.scale, SIM_WORKERS, DISPATCH_NS
    );

    for &circuit in &[PaperCircuit::DesPerf, PaperCircuit::Leon2] {
        println!("== {} (simulated makespan, ms) ==", circuit.name());
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>12}",
            "Ps", "GDCA", "seq-GP", "GP", "deter"
        );
        let netlist = circuit.build(cfg.scale);
        let library = CellLibrary::typical();
        let exec = Executor::new(cfg.workers);

        let partitioners: Vec<Box<dyn Partitioner>> = vec![
            Box::new(Gdca::new()),
            Box::new(SeqGPasta::new()),
            Box::new(GPasta::with_device(Device::new(cfg.workers))),
            Box::new(DeterGPasta::with_device(Device::new(cfg.workers))),
        ];

        let mut rows = Vec::new();
        for &ps in PARTITION_SIZES {
            let opts = PartitionerOptions::with_max_size(ps);
            let mut wall_ms = Vec::new();
            let mut sim_ms = Vec::new();
            for p in &partitioners {
                // Wall-clock on this host.
                let mut timer = Timer::new(netlist.clone(), library.clone());
                let t = flow::average(cfg.runs, || {
                    timer.invalidate_all();
                    measure_partitioned_update(&mut timer, &exec, p.as_ref(), &opts)
                });
                wall_ms.push(t.run.as_secs_f64() * 1e3);

                // Deterministic multi-worker makespan.
                let mut timer = Timer::new(netlist.clone(), library.clone());
                let update = timer.update_timing();
                let partition = p.partition(update.tdg(), &opts).expect("valid options");
                let q = QuotientTdg::build(update.tdg(), &partition).expect("schedulable");
                let sim = simulate_makespan(q.graph(), SIM_WORKERS, DISPATCH_NS);
                sim_ms.push(sim.makespan_ns / 1e6);
            }
            println!(
                "{:>5} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
                ps, sim_ms[0], sim_ms[1], sim_ms[2], sim_ms[3]
            );
            rows.push(Row::new(
                format!("{ps}"),
                &[
                    ("gdca_sim_ms", sim_ms[0]),
                    ("seq_gpasta_sim_ms", sim_ms[1]),
                    ("gpasta_sim_ms", sim_ms[2]),
                    ("deter_gpasta_sim_ms", sim_ms[3]),
                    ("gdca_wall_ms", wall_ms[0]),
                    ("seq_gpasta_wall_ms", wall_ms[1]),
                    ("gpasta_wall_ms", wall_ms[2]),
                    ("deter_gpasta_wall_ms", wall_ms[3]),
                ],
            ));
        }
        write_csv(
            &cfg.out_dir.join(format!("fig8_{}.csv", circuit.name())),
            &rows,
        )?;
        write_json(
            &cfg.out_dir.join(format!("fig8_{}.json", circuit.name())),
            &rows,
        )?;
        println!();
    }
    println!("wrote {}", cfg.out_dir.join("fig8_*.csv").display());
    Ok(())
}
