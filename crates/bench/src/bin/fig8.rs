//! Figure 8: TDG runtime (after partitioning) under different partition
//! sizes.
//!
//! GDCA's runtime shows a V-shape (too-small sizes leave scheduling cost,
//! too-large sizes destroy parallelism), while the G-PASTA family keeps
//! improving until saturation thanks to the partition-count lower bound —
//! so its `Ps` needs no tuning.
//!
//! Two metrics per point:
//! * wall-clock on this host's executor (core-count dependent — on a
//!   single-core machine the parallelism-loss penalty is invisible), and
//! * the deterministic 8-worker list-scheduling makespan
//!   ([`gpasta_sched::simulate_makespan`]), which reproduces the paper's
//!   multi-core shape on any machine and is what the printed table shows.
//!
//! The measurement itself lives in
//! [`gpasta_bench::figs::fig8_circuit_rows`], shared with the
//! perf-regression harness so the committed baselines and fresh runs are
//! method-identical.
//!
//! ```text
//! cargo run --release -p gpasta-bench --bin fig8 -- --scale 0.05
//! ```

use gpasta_bench::figs::fig8_circuit_rows;
use gpasta_bench::tuning::{DISPATCH_NS, SIM_WORKERS};
use gpasta_bench::{write_csv, write_json, BenchConfig, OutputError};
use gpasta_circuits::PaperCircuit;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), OutputError> {
    let cfg = BenchConfig::from_args();
    println!(
        "Figure 8 reproduction: TDG runtime vs partition size @ scale {} (simulated {} workers, {} ns/dispatch)\n",
        cfg.scale, SIM_WORKERS, DISPATCH_NS
    );

    for &circuit in &[PaperCircuit::DesPerf, PaperCircuit::Leon2] {
        println!("== {} (simulated makespan, ms) ==", circuit.name());
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>12}",
            "Ps", "GDCA", "seq-GP", "GP", "deter"
        );
        let rows = fig8_circuit_rows(circuit, cfg.scale, cfg.runs, cfg.workers);
        for row in &rows {
            let col = |name: &str| {
                row.values
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|&(_, v)| v)
                    .expect("fig8 schema column")
            };
            println!(
                "{:>5} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
                row.label,
                col("gdca_sim_ms"),
                col("seq_gpasta_sim_ms"),
                col("gpasta_sim_ms"),
                col("deter_gpasta_sim_ms")
            );
        }
        write_csv(
            &cfg.out_dir.join(format!("fig8_{}.csv", circuit.name())),
            &rows,
        )?;
        write_json(
            &cfg.out_dir.join(format!("fig8_{}.json", circuit.name())),
            &rows,
        )?;
        println!();
    }
    println!("wrote {}", cfg.out_dir.join("fig8_*.csv").display());
    Ok(())
}
