//! Figure 1(b): growth of partitioning time with increasing TDG size for
//! the two prior TDG partitioners (Sarkar/Vivek and GDCA), with G-PASTA
//! added for contrast.
//!
//! ```text
//! cargo run --release -p gpasta-bench --bin fig1b -- --scale 0.05
//! ```

use gpasta_bench::{write_csv, write_json, BenchConfig, OutputError, Row};
use gpasta_circuits::dag;
use gpasta_core::{GPasta, Gdca, Partitioner, PartitionerOptions, Sarkar};
use gpasta_gpu::Device;
use std::time::Instant;

/// Sarkar's quadratic partitioner is skipped above this many tasks (at
/// scale 1.0 it would run for hours — the very point of the figure).
const SARKAR_CAP: usize = 40_000;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), OutputError> {
    let cfg = BenchConfig::from_args();
    println!(
        "Figure 1(b) reproduction: partitioning time vs TDG size @ scale {}\n",
        cfg.scale
    );
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "#tasks", "Sarkar (ms)", "GDCA (ms)", "G-PASTA (ms)"
    );

    // Layered DAGs with STA-like shape; the paper sweeps 0 → 4M tasks.
    let base_sizes: [usize; 6] = [62_500, 250_000, 1_000_000, 2_000_000, 3_000_000, 4_000_000];
    let gpasta = GPasta::with_device(Device::new(cfg.workers));
    let gdca = Gdca::new();
    let sarkar = Sarkar::new();

    let mut rows = Vec::new();
    for &base in &base_sizes {
        let n = ((base as f64 * cfg.scale) as usize).max(256);
        let width = (n as f64).sqrt() as usize * 2;
        let levels = (n / width).max(2);
        let tdg = dag::layered(width, levels, 2, 0xF16B ^ n as u64);
        // Warm the shared CSR view outside the timed regions: it is
        // built lazily on first use, and the figure compares the
        // *algorithms* — the first partitioner timed must not pay for
        // graph infrastructure every other one inherits for free.
        tdg.csr();

        let time_of = |p: &dyn Partitioner, opts: &PartitionerOptions| {
            let t0 = Instant::now();
            let part = p.partition(&tdg, opts).expect("valid options");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(part.num_partitions() > 0);
            ms
        };

        let sarkar_ms = if tdg.num_tasks() <= SARKAR_CAP {
            Some(time_of(&sarkar, &PartitionerOptions::with_max_size(16)))
        } else {
            None
        };
        let gdca_ms = time_of(&gdca, &PartitionerOptions::with_max_size(16));
        let gpasta_ms = time_of(&gpasta, &PartitionerOptions::default());

        println!(
            "{:>10} {:>14} {:>14.2} {:>14.2}",
            tdg.num_tasks(),
            sarkar_ms.map_or("   (skipped)".to_owned(), |m| format!("{m:.2}")),
            gdca_ms,
            gpasta_ms
        );
        rows.push(Row::new(
            format!("{}", tdg.num_tasks()),
            &[
                ("sarkar_ms", sarkar_ms.unwrap_or(f64::NAN)),
                ("gdca_ms", gdca_ms),
                ("gpasta_ms", gpasta_ms),
            ],
        ));
    }

    write_csv(&cfg.out_dir.join("fig1b.csv"), &rows)?;
    write_json(&cfg.out_dir.join("fig1b.json"), &rows)?;
    println!("\nwrote {}", cfg.out_dir.join("fig1b.csv").display());
    Ok(())
}
