//! Result files: CSV for plotting, JSON for machine consumption.

use serde::Serialize;
use std::fs;
use std::path::Path;

/// Writing a result file failed. Lives in [`gpasta::errors`] (the
/// shared process-boundary error module); re-exported here so existing
/// harness imports keep working.
pub use gpasta::errors::OutputError;

/// One output row: a label plus named numeric columns.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Row {
    /// Row label (circuit name, sweep point, …).
    pub label: String,
    /// `(column name, value)` pairs, order preserved.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Build a row from a label and `(name, value)` pairs.
    pub fn new(label: impl Into<String>, values: &[(&str, f64)]) -> Self {
        Row {
            label: label.into(),
            values: values.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        }
    }
}

fn ensure_parent(path: &Path) -> Result<(), OutputError> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).map_err(|source| OutputError::Io {
            path: dir.to_path_buf(),
            op: "create directory",
            source,
        })?;
    }
    Ok(())
}

fn write_file(path: &Path, contents: &str) -> Result<(), OutputError> {
    fs::write(path, contents).map_err(|source| OutputError::Io {
        path: path.to_path_buf(),
        op: "write",
        source,
    })
}

/// Write rows as CSV (header from the first row's column names).
///
/// # Errors
///
/// [`OutputError::Io`] with the failing path and operation, or
/// [`OutputError::InconsistentColumns`] when the rows disagree on layout.
pub fn write_csv(path: &Path, rows: &[Row]) -> Result<(), OutputError> {
    ensure_parent(path)?;
    let mut out = String::new();
    if let Some(first) = rows.first() {
        out.push_str("label");
        for (k, _) in &first.values {
            out.push(',');
            out.push_str(k);
        }
        out.push('\n');
        for row in rows {
            if row.values.len() != first.values.len() {
                return Err(OutputError::InconsistentColumns {
                    label: row.label.clone(),
                    found: row.values.len(),
                    expected: first.values.len(),
                });
            }
            out.push_str(&row.label);
            for (_, v) in &row.values {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
    }
    write_file(path, &out)
}

/// Render rows as a GitHub-flavoured markdown table (for pasting into
/// `EXPERIMENTS.md`). Values print with three significant decimals.
pub fn to_markdown(rows: &[Row]) -> String {
    let Some(first) = rows.first() else {
        return String::new();
    };
    let mut out = String::from("| label |");
    for (k, _) in &first.values {
        out.push_str(&format!(" {k} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &first.values {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("| {} |", row.label));
        for (_, v) in &row.values {
            out.push_str(&format!(" {v:.3} |"));
        }
        out.push('\n');
    }
    out
}

/// Read rows back from a JSON file written by [`write_json`] — the
/// committed-baseline loader of the perf-regression harness
/// ([`crate::regress`]).
///
/// # Errors
///
/// [`OutputError::Io`] if the file is unreadable, or
/// [`OutputError::Parse`] if its contents are not a row array.
pub fn read_json(path: &Path) -> Result<Vec<Row>, OutputError> {
    let text = fs::read_to_string(path).map_err(|source| OutputError::Io {
        path: path.to_path_buf(),
        op: "read",
        source,
    })?;
    let parse_err = |message: &str| OutputError::Parse {
        path: path.to_path_buf(),
        message: message.to_owned(),
    };
    let value: serde::value::Value =
        serde_json::from_str(&text).map_err(|e| parse_err(&e.to_string()))?;
    let rows = value
        .as_array()
        .ok_or_else(|| parse_err("expected a row array"))?;
    rows.iter()
        .map(|row| {
            let label = row
                .get("label")
                .and_then(|l| l.as_str())
                .ok_or_else(|| parse_err("row is missing a string `label`"))?;
            let values = row
                .get("values")
                .and_then(|v| v.as_array())
                .ok_or_else(|| parse_err("row is missing a `values` array"))?
                .iter()
                .map(|pair| {
                    let pair = pair.as_array().filter(|p| p.len() == 2);
                    let key = pair.and_then(|p| p[0].as_str());
                    let num = pair.and_then(|p| p[1].as_f64());
                    match (key, num) {
                        (Some(k), Some(n)) => Ok((k.to_owned(), n)),
                        _ => Err(parse_err("`values` entry is not a [name, number] pair")),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Row {
                label: label.to_owned(),
                values,
            })
        })
        .collect()
}

/// Write rows as pretty JSON.
///
/// # Errors
///
/// [`OutputError::Io`] with the failing path and operation, or
/// [`OutputError::Serialize`] if the rows cannot be rendered.
pub fn write_json(path: &Path, rows: &[Row]) -> Result<(), OutputError> {
    ensure_parent(path)?;
    let json = serde_json::to_string_pretty(rows).map_err(|source| OutputError::Serialize {
        path: path.to_path_buf(),
        source,
    })?;
    write_file(path, &json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("gpasta_bench_test");
        let path = dir.join("t.csv");
        let rows = vec![
            Row::new("a", &[("x", 1.0), ("y", 2.5)]),
            Row::new("b", &[("x", 3.0), ("y", 4.0)]),
        ];
        write_csv(&path, &rows).expect("temp dir is writable");
        let text = fs::read_to_string(&path).expect("readable");
        assert_eq!(text, "label,x,y\na,1,2.5\nb,3,4\n");
    }

    #[test]
    fn json_is_valid() {
        let dir = std::env::temp_dir().join("gpasta_bench_test");
        let path = dir.join("t.json");
        write_json(&path, &[Row::new("a", &[("x", 1.0)])]).expect("temp dir is writable");
        let text = fs::read_to_string(&path).expect("readable");
        let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(parsed[0]["label"], "a");
    }

    #[test]
    fn markdown_renders_header_and_rows() {
        let md = to_markdown(&[
            Row::new("a", &[("x", 1.0), ("y", 2.5)]),
            Row::new("b", &[("x", 3.0), ("y", 4.0)]),
        ]);
        assert!(md.starts_with("| label | x | y |"));
        assert!(md.contains("| a | 1.000 | 2.500 |"));
        assert!(md.contains("| b | 3.000 | 4.000 |"));
        assert_eq!(to_markdown(&[]), "");
    }

    #[test]
    fn empty_rows_write_empty_file() {
        let dir = std::env::temp_dir().join("gpasta_bench_test");
        let path = dir.join("empty.csv");
        write_csv(&path, &[]).expect("temp dir is writable");
        assert_eq!(fs::read_to_string(&path).expect("readable"), "");
    }

    #[test]
    fn inconsistent_columns_are_a_typed_error() {
        let dir = std::env::temp_dir().join("gpasta_bench_test");
        let path = dir.join("bad.csv");
        let rows = vec![
            Row::new("a", &[("x", 1.0), ("y", 2.5)]),
            Row::new("b", &[("x", 3.0)]),
        ];
        match write_csv(&path, &rows) {
            Err(OutputError::InconsistentColumns {
                label,
                found: 1,
                expected: 2,
            }) => assert_eq!(label, "b"),
            other => panic!("expected InconsistentColumns, got {other:?}"),
        }
    }

    #[test]
    fn io_errors_carry_path_and_operation() {
        let path = Path::new("/proc/definitely-not-writable/out.csv");
        match write_csv(path, &[Row::new("a", &[("x", 1.0)])]) {
            Err(OutputError::Io { op, path: p, .. }) => {
                assert!(op == "create directory" || op == "write");
                assert!(p.starts_with("/proc"));
            }
            other => panic!("expected Io, got {other:?}"),
        }
        let msg = write_csv(path, &[Row::new("a", &[("x", 1.0)])])
            .expect_err("unwritable")
            .to_string();
        assert!(msg.contains("/proc"), "message names the path: {msg}");
    }
}
