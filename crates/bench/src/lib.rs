//! Benchmark harness reproducing every table and figure of the G-PASTA
//! paper.
//!
//! One binary per artefact (see `DESIGN.md` §4 for the experiment index):
//!
//! | Binary   | Paper artefact |
//! |----------|----------------|
//! | `fig1a`  | Figure 1(a): runtime breakdown of `update_timing` with/without partitioning |
//! | `fig1b`  | Figure 1(b): partitioning-time growth vs TDG size (Sarkar, GDCA, G-PASTA) |
//! | `table1` | Table 1: TDG runtime and partitioning runtime for all four partitioners on six circuits |
//! | `fig7`   | Figure 7: cumulative STA runtime over incremental timing iterations |
//! | `fig8`   | Figure 8: TDG runtime vs partition size |
//!
//! Every binary accepts `--scale <f>` (default 0.05: 5 % of the paper's TDG
//! sizes so the suite runs on laptop-class machines), `--full` (paper-scale),
//! `--runs <n>` (averaging), `--workers <n>` and `--out <dir>` (CSV/JSON
//! output, default `results/`). Absolute milliseconds differ from the paper
//! (different machine, simulated GPU); the *shape* — who wins, by what
//! factor, where curves bend — is the reproduction target recorded in
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod figs;
pub mod flow;
pub mod output;
pub mod regress;
pub mod tuning;

pub use cli::{BenchConfig, CliError};
pub use flow::{measure_partitioned_update, measure_plain_update, FlowTiming};
pub use output::{read_json, to_markdown, write_csv, write_json, OutputError, Row};
pub use tuning::tune_gdca_ps;
