//! Perf-regression harness: compare fresh fig7/fig8 measurements against
//! the committed baselines in `results/`.
//!
//! The committed `results/perf_baseline.json` pins the end-to-end medians
//! of the two hot-path figures at the smoke scale, summarised by
//! [`summarize_fig7`] / [`summarize_fig8`] from rows produced by the same
//! measurement cores ([`crate::figs`]) the `fig7`/`fig8` emitters use.
//! [`compare`] then flags any fresh metric outside the tolerance band, so
//! a data-layout regression fails `perf_smoke` (and the CI perf-smoke
//! step) instead of silently eroding the speedup the baselines lock in.
//!
//! Two metric kinds, told apart by suffix:
//!
//! * `*_wall_ms` — absolute milliseconds, lower is better. Host-speed
//!   dependent, so the default band ([`Tolerance::DEFAULT_WALL`]) is wide
//!   and meant for same-host-class comparisons (CI runners, the machine
//!   that recorded the baseline). Refresh procedure: DESIGN.md §13.
//! * `*_speedup` — a ratio of two measurements from the *same* fresh run
//!   (e.g. original-policy wall over G-PASTA wall). Host speed cancels
//!   out, so the band ([`Tolerance::DEFAULT_SPEEDUP`]) is tight; this is
//!   the metric that actually locks the multi-× in.

use crate::figs::{fig7_circuit_rows, fig8_circuit_rows};
use crate::{read_json, OutputError, Row};
use gpasta_circuits::PaperCircuit;
use std::path::Path;

/// Scale of the smoke fig7 run (20 iterations — the floor).
pub const SMOKE_FIG7_SCALE: f64 = 0.001;
/// Scale of the smoke fig8 sweep.
pub const SMOKE_FIG8_SCALE: f64 = 0.002;
/// Averaging runs of the smoke fig8 sweep: per-cell median-of-3, the
/// ratio metrics divide two ~1 ms medians and single runs leave them
/// ±30 % even on an otherwise quiet host.
pub const SMOKE_FIG8_RUNS: usize = 3;
/// Whole-measurement repeats of the smoke; [`run_smoke`] keeps the
/// least-interfered repeat per figure. At smoke scale a single OS
/// preemption can triple a ~2 ms cumulative wall, and interference only
/// ever *adds* time, so min-total-wall-of-N picks the clean run.
pub const SMOKE_REPEATS: usize = 3;
/// Pinned executor worker count: the smoke numbers should not track the
/// host's core count, only its single-core speed (which the tolerance
/// band absorbs) — so every machine runs the same schedule shape.
pub const SMOKE_WORKERS: usize = 4;

/// A fresh perf-smoke measurement: raw emitter rows (for schema checks
/// against the committed figure files) plus their summary (for the
/// tolerance comparison against `results/perf_baseline.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct SmokeRun {
    /// Fig7 rows for `vga_lcd` at [`SMOKE_FIG7_SCALE`].
    pub fig7_rows: Vec<Row>,
    /// Fig8 rows for `leon2` at [`SMOKE_FIG8_SCALE`].
    pub fig8_rows: Vec<Row>,
    /// Merged [`summarize_fig7`] + [`summarize_fig8`] metrics.
    pub summary: PerfSummary,
}

/// Run the perf smoke: the fig7 and fig8 measurement cores at smoke
/// scale on the two acceptance circuits, method-identical to the full
/// emitters (same functions in [`crate::figs`], reduced scale). Each
/// figure is measured [`SMOKE_REPEATS`] times and the repeat with the
/// lowest total wall wins — rows and the derived summary stay coherent
/// (every speedup ratio comes from one undisturbed measurement).
pub fn run_smoke() -> SmokeRun {
    let fig7_rows = best_of(SMOKE_REPEATS, || {
        let rows = fig7_circuit_rows(PaperCircuit::VgaLcd, SMOKE_FIG7_SCALE, SMOKE_WORKERS);
        let s = summarize_fig7("vga_lcd", &rows);
        (total_wall(&s), rows)
    });
    let fig8_rows = best_of(SMOKE_REPEATS, || {
        let rows = fig8_circuit_rows(
            PaperCircuit::Leon2,
            SMOKE_FIG8_SCALE,
            SMOKE_FIG8_RUNS,
            SMOKE_WORKERS,
        );
        let s = summarize_fig8("leon2", &rows);
        (total_wall(&s), rows)
    });
    let mut summary = summarize_fig7("vga_lcd", &fig7_rows);
    summary.merge(summarize_fig8("leon2", &fig8_rows));
    SmokeRun {
        fig7_rows,
        fig8_rows,
        summary,
    }
}

/// Sum of a summary's `*_wall_ms` metrics: the interference score a
/// smoke repeat is ranked by (lower = cleaner).
fn total_wall(summary: &PerfSummary) -> f64 {
    summary
        .metrics
        .iter()
        .filter(|(k, _)| k.ends_with("_wall_ms"))
        .map(|&(_, v)| v)
        .sum()
}

/// Run `measure` `repeats` times and keep the rows of the repeat with
/// the smallest score.
fn best_of(repeats: usize, mut measure: impl FnMut() -> (f64, Vec<Row>)) -> Vec<Row> {
    let mut best = measure();
    for _ in 1..repeats {
        let next = measure();
        if next.0 < best.0 {
            best = next;
        }
    }
    best.1
}

/// A perf summary: named end-to-end metrics extracted from emitter rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PerfSummary {
    /// `(metric name, value)` pairs, order preserved.
    pub metrics: Vec<(String, f64)>,
}

impl PerfSummary {
    /// Append every metric of `other` (names are namespaced by figure and
    /// circuit, so concatenation cannot collide).
    pub fn merge(&mut self, other: PerfSummary) {
        self.metrics.extend(other.metrics);
    }

    /// Look up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Render as baseline rows (one row per metric, single `value`
    /// column) for [`crate::write_json`].
    pub fn to_rows(&self) -> Vec<Row> {
        self.metrics
            .iter()
            .map(|(k, v)| Row::new(k.clone(), &[("value", *v)]))
            .collect()
    }

    /// Parse baseline rows written by [`to_rows`](Self::to_rows).
    ///
    /// # Errors
    ///
    /// [`RegressError::MalformedBaseline`] if a row lacks the `value`
    /// column.
    pub fn from_rows(rows: &[Row]) -> Result<Self, RegressError> {
        let metrics = rows
            .iter()
            .map(|r| {
                r.values
                    .iter()
                    .find(|(k, _)| k == "value")
                    .map(|&(_, v)| (r.label.clone(), v))
                    .ok_or_else(|| RegressError::MalformedBaseline {
                        metric: r.label.clone(),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PerfSummary { metrics })
    }

    /// Load a baseline summary from a JSON file written by
    /// [`crate::write_json`]`(path, summary.to_rows())`.
    ///
    /// # Errors
    ///
    /// [`RegressError::Output`] if the file is unreadable or not a row
    /// array, [`RegressError::MalformedBaseline`] on a row without a
    /// `value` column.
    pub fn load(path: &Path) -> Result<Self, RegressError> {
        Self::from_rows(&read_json(path)?)
    }
}

/// Fig7 policies summarised (`<policy>_wall_ms` column prefixes).
pub const FIG7_POLICIES: &[&str] = &["original", "gdca", "gpasta"];

/// Fig8 algorithms summarised (`<algo>_wall_ms` column prefixes).
pub const FIG8_ALGOS: &[&str] = &["gdca", "seq_gpasta", "gpasta", "deter_gpasta"];

/// Summarise fig7 rows (cumulative per-iteration series): the final
/// cumulative wall per policy — the emitter's end-to-end cost — plus
/// `gpasta_speedup`, the original-policy wall over the G-PASTA wall.
///
/// # Panics
///
/// Panics if `rows` is empty or missing the fig7 schema columns — use
/// [`check_schema`] against a committed fig7 file first.
pub fn summarize_fig7(circuit: &str, rows: &[Row]) -> PerfSummary {
    let last = rows.last().expect("fig7 emits at least 20 iterations");
    let col = |name: &str| {
        last.values
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .expect("fig7 schema column")
    };
    let mut metrics = Vec::new();
    for policy in FIG7_POLICIES {
        metrics.push((
            format!("fig7_{circuit}_{policy}_wall_ms"),
            col(&format!("{policy}_wall_ms")),
        ));
    }
    metrics.push((
        format!("fig7_{circuit}_gpasta_speedup"),
        col("original_wall_ms") / col("gpasta_wall_ms"),
    ));
    PerfSummary { metrics }
}

/// Summarise fig8 rows (one row per partition size): the median wall
/// over the Ps sweep per algorithm — the end-to-end median of the
/// figure — plus `seq_gpasta_speedup`, GDCA's median over seq-G-PASTA's
/// (both partitioning-heavy columns of the same fresh run).
///
/// # Panics
///
/// Panics if `rows` is empty or missing the fig8 schema columns — use
/// [`check_schema`] against a committed fig8 file first.
pub fn summarize_fig8(circuit: &str, rows: &[Row]) -> PerfSummary {
    let median_col = |name: &str| {
        let mut vals: Vec<f64> = rows
            .iter()
            .map(|r| {
                r.values
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|&(_, v)| v)
                    .expect("fig8 schema column")
            })
            .collect();
        assert!(!vals.is_empty(), "fig8 sweeps at least one partition size");
        vals.sort_by(f64::total_cmp);
        vals[(vals.len() - 1) / 2]
    };
    let mut metrics = Vec::new();
    for algo in FIG8_ALGOS {
        metrics.push((
            format!("fig8_{circuit}_{algo}_wall_ms"),
            median_col(&format!("{algo}_wall_ms")),
        ));
    }
    metrics.push((
        format!("fig8_{circuit}_seq_gpasta_speedup"),
        median_col("gdca_wall_ms") / median_col("seq_gpasta_wall_ms"),
    ));
    PerfSummary { metrics }
}

/// Check that `fresh` rows carry exactly the committed `baseline` file's
/// schema: same row labels in the same order, same column names in the
/// same order. Values are *not* compared — that is [`compare`]'s job.
///
/// # Errors
///
/// [`RegressError::SchemaMismatch`] naming the first divergence.
pub fn check_schema(name: &str, fresh: &[Row], baseline: &[Row]) -> Result<(), RegressError> {
    let mismatch = |what: String| {
        Err(RegressError::SchemaMismatch {
            file: name.to_owned(),
            what,
        })
    };
    if fresh.len() != baseline.len() {
        return mismatch(format!(
            "{} fresh rows vs {} baseline rows",
            fresh.len(),
            baseline.len()
        ));
    }
    for (f, b) in fresh.iter().zip(baseline) {
        if f.label != b.label {
            return mismatch(format!("row label `{}` vs baseline `{}`", f.label, b.label));
        }
        let cols = |r: &Row| r.values.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>();
        if cols(f) != cols(b) {
            return mismatch(format!(
                "row `{}` columns {:?} vs baseline {:?}",
                f.label,
                cols(f),
                cols(b)
            ));
        }
    }
    Ok(())
}

/// Check that `fresh` rows carry the same column-name sequence as the
/// committed figure file's rows. Unlike [`check_schema`] the row labels
/// and counts may differ — the smoke runs fewer iterations than the
/// committed scale-of-record files, but a column drift still means the
/// emitters and the committed artefacts no longer speak the same schema.
///
/// # Errors
///
/// [`RegressError::SchemaMismatch`] naming the diverging column lists.
pub fn check_columns(name: &str, fresh: &[Row], committed: &[Row]) -> Result<(), RegressError> {
    let cols = |rows: &[Row]| {
        rows.first()
            .map(|r| r.values.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>())
            .unwrap_or_default()
    };
    let (f, c) = (cols(fresh), cols(committed));
    if f != c {
        return Err(RegressError::SchemaMismatch {
            file: name.to_owned(),
            what: format!("columns {f:?} vs committed {c:?}"),
        });
    }
    Ok(())
}

/// Multiplicative tolerance bands for [`compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// `*_wall_ms` may exceed baseline by this fraction (0.5 = +50 %).
    pub wall: f64,
    /// `*_speedup` may fall short of baseline by this fraction.
    pub speedup: f64,
}

impl Tolerance {
    /// Default band for absolute wall metrics: generous, because wall
    /// clock tracks host speed and scheduler noise.
    pub const DEFAULT_WALL: f64 = 0.60;
    /// Default band for speedup ratios: tight, host speed cancels out.
    pub const DEFAULT_SPEEDUP: f64 = 0.30;

    /// The default bands, with `GPASTA_PERF_TOL` (wall) and
    /// `GPASTA_PERF_SPEEDUP_TOL` (speedup) environment overrides — both
    /// fractional, e.g. `GPASTA_PERF_TOL=0.8`.
    pub fn from_env() -> Self {
        let read = |key: &str, default: f64| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|t| t.is_finite() && *t >= 0.0)
                .unwrap_or(default)
        };
        Tolerance {
            wall: read("GPASTA_PERF_TOL", Self::DEFAULT_WALL),
            speedup: read("GPASTA_PERF_SPEEDUP_TOL", Self::DEFAULT_SPEEDUP),
        }
    }
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            wall: Self::DEFAULT_WALL,
            speedup: Self::DEFAULT_SPEEDUP,
        }
    }
}

/// One metric outside its tolerance band.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Which metric regressed.
    pub metric: String,
    /// The fresh measurement.
    pub fresh: f64,
    /// The committed baseline value.
    pub baseline: f64,
    /// The band edge the fresh value crossed.
    pub limit: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: fresh {:.3} vs baseline {:.3} (limit {:.3})",
            self.metric, self.fresh, self.baseline, self.limit
        )
    }
}

/// Compare a fresh summary against the committed baseline: every baseline
/// metric must be present in `fresh` and inside its band — `*_wall_ms` at
/// most `baseline * (1 + tol.wall)`, `*_speedup` at least
/// `baseline / (1 + tol.speedup)`. Metrics present only in `fresh` are
/// ignored (a new metric needs a baseline refresh, not a failure).
///
/// # Errors
///
/// [`RegressError::MissingMetric`] when the fresh run lacks a baseline
/// metric (a schema-level break, not a slowdown).
pub fn compare(
    fresh: &PerfSummary,
    baseline: &PerfSummary,
    tol: Tolerance,
) -> Result<Vec<Regression>, RegressError> {
    let mut regressions = Vec::new();
    for (metric, &base) in baseline.metrics.iter().map(|(k, v)| (k, v)) {
        let fresh_v = fresh
            .get(metric)
            .ok_or_else(|| RegressError::MissingMetric {
                metric: metric.clone(),
            })?;
        if metric.ends_with("_speedup") {
            let limit = base / (1.0 + tol.speedup);
            if fresh_v < limit {
                regressions.push(Regression {
                    metric: metric.clone(),
                    fresh: fresh_v,
                    baseline: base,
                    limit,
                });
            }
        } else {
            let limit = base * (1.0 + tol.wall);
            if fresh_v > limit {
                regressions.push(Regression {
                    metric: metric.clone(),
                    fresh: fresh_v,
                    baseline: base,
                    limit,
                });
            }
        }
    }
    Ok(regressions)
}

/// What went wrong while loading or comparing against a baseline.
#[derive(Debug)]
pub enum RegressError {
    /// Reading or parsing a result file failed.
    Output(OutputError),
    /// A baseline row has no `value` column.
    MalformedBaseline {
        /// Label of the offending row.
        metric: String,
    },
    /// Fresh rows diverge from the committed file's shape.
    SchemaMismatch {
        /// Which file's schema was violated.
        file: String,
        /// First divergence found.
        what: String,
    },
    /// The fresh run did not produce a metric the baseline pins.
    MissingMetric {
        /// The absent metric.
        metric: String,
    },
}

impl From<OutputError> for RegressError {
    fn from(e: OutputError) -> Self {
        RegressError::Output(e)
    }
}

impl std::fmt::Display for RegressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressError::Output(e) => write!(f, "{e}"),
            RegressError::MalformedBaseline { metric } => {
                write!(f, "baseline row `{metric}` has no `value` column")
            }
            RegressError::SchemaMismatch { file, what } => {
                write!(f, "schema mismatch against {file}: {what}")
            }
            RegressError::MissingMetric { metric } => {
                write!(f, "fresh run is missing baseline metric `{metric}`")
            }
        }
    }
}

impl std::error::Error for RegressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegressError::Output(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig7_rows() -> Vec<Row> {
        // Two cumulative iterations; the summary must read the last.
        vec![
            Row::new(
                "1",
                &[
                    ("original_wall_ms", 10.0),
                    ("gdca_wall_ms", 12.0),
                    ("gpasta_wall_ms", 4.0),
                    ("original_sim_ms", 9.0),
                    ("gdca_sim_ms", 11.0),
                    ("gpasta_sim_ms", 3.0),
                ],
            ),
            Row::new(
                "2",
                &[
                    ("original_wall_ms", 20.0),
                    ("gdca_wall_ms", 26.0),
                    ("gpasta_wall_ms", 5.0),
                    ("original_sim_ms", 18.0),
                    ("gdca_sim_ms", 22.0),
                    ("gpasta_sim_ms", 6.0),
                ],
            ),
        ]
    }

    fn fig8_rows() -> Vec<Row> {
        // Three partition sizes; medians are the middle value per column.
        [("1", 30.0, 10.0), ("2", 20.0, 8.0), ("3", 40.0, 12.0)]
            .iter()
            .map(|&(label, gdca, rest)| {
                Row::new(
                    label,
                    &[
                        ("gdca_sim_ms", 1.0),
                        ("seq_gpasta_sim_ms", 1.0),
                        ("gpasta_sim_ms", 1.0),
                        ("deter_gpasta_sim_ms", 1.0),
                        ("gdca_wall_ms", gdca),
                        ("seq_gpasta_wall_ms", rest),
                        ("gpasta_wall_ms", rest + 1.0),
                        ("deter_gpasta_wall_ms", rest + 2.0),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn fig7_summary_reads_final_cumulative_row() {
        let s = summarize_fig7("vga_lcd", &fig7_rows());
        assert_eq!(s.get("fig7_vga_lcd_original_wall_ms"), Some(20.0));
        assert_eq!(s.get("fig7_vga_lcd_gdca_wall_ms"), Some(26.0));
        assert_eq!(s.get("fig7_vga_lcd_gpasta_wall_ms"), Some(5.0));
        assert_eq!(s.get("fig7_vga_lcd_gpasta_speedup"), Some(4.0));
    }

    #[test]
    fn fig8_summary_takes_sweep_medians() {
        let s = summarize_fig8("leon2", &fig8_rows());
        assert_eq!(s.get("fig8_leon2_gdca_wall_ms"), Some(30.0));
        assert_eq!(s.get("fig8_leon2_seq_gpasta_wall_ms"), Some(10.0));
        assert_eq!(s.get("fig8_leon2_gpasta_wall_ms"), Some(11.0));
        assert_eq!(s.get("fig8_leon2_deter_gpasta_wall_ms"), Some(12.0));
        assert_eq!(s.get("fig8_leon2_seq_gpasta_speedup"), Some(3.0));
    }

    #[test]
    fn baseline_rows_round_trip() {
        let mut s = summarize_fig7("vga_lcd", &fig7_rows());
        s.merge(summarize_fig8("leon2", &fig8_rows()));
        let back = PerfSummary::from_rows(&s.to_rows()).expect("well-formed");
        assert_eq!(back, s);
    }

    #[test]
    fn compare_passes_inside_the_band_and_fails_outside() {
        let baseline = PerfSummary {
            metrics: vec![
                ("fig7_x_gpasta_wall_ms".into(), 100.0),
                ("fig7_x_gpasta_speedup".into(), 4.0),
            ],
        };
        let tol = Tolerance {
            wall: 0.5,
            speedup: 0.25,
        };
        // Inside both bands: 40 % slower wall, speedup down to 3.3.
        let ok = PerfSummary {
            metrics: vec![
                ("fig7_x_gpasta_wall_ms".into(), 140.0),
                ("fig7_x_gpasta_speedup".into(), 3.3),
            ],
        };
        assert!(compare(&ok, &baseline, tol)
            .expect("no missing metric")
            .is_empty());
        // Wall blows the band; speedup falls below 4.0 / 1.25 = 3.2.
        let bad = PerfSummary {
            metrics: vec![
                ("fig7_x_gpasta_wall_ms".into(), 151.0),
                ("fig7_x_gpasta_speedup".into(), 3.1),
            ],
        };
        let regressions = compare(&bad, &baseline, tol).expect("no missing metric");
        assert_eq!(regressions.len(), 2);
        assert_eq!(regressions[0].metric, "fig7_x_gpasta_wall_ms");
        assert_eq!(regressions[0].limit, 150.0);
        assert_eq!(regressions[1].metric, "fig7_x_gpasta_speedup");
        // A faster wall or higher speedup is never a regression.
        let better = PerfSummary {
            metrics: vec![
                ("fig7_x_gpasta_wall_ms".into(), 10.0),
                ("fig7_x_gpasta_speedup".into(), 9.0),
            ],
        };
        assert!(compare(&better, &baseline, tol)
            .expect("no missing metric")
            .is_empty());
    }

    #[test]
    fn compare_reports_missing_metrics_as_errors() {
        let baseline = PerfSummary {
            metrics: vec![("fig7_x_gpasta_wall_ms".into(), 100.0)],
        };
        let empty = PerfSummary::default();
        match compare(&empty, &baseline, Tolerance::default()) {
            Err(RegressError::MissingMetric { metric }) => {
                assert_eq!(metric, "fig7_x_gpasta_wall_ms");
            }
            other => panic!("expected MissingMetric, got {other:?}"),
        }
    }

    #[test]
    fn schema_check_catches_each_divergence_kind() {
        let fresh = fig7_rows();
        assert!(check_schema("fig7", &fresh, &fig7_rows()).is_ok());
        // Row count.
        assert!(check_schema("fig7", &fresh[..1], &fig7_rows()).is_err());
        // Label.
        let mut relabeled = fig7_rows();
        relabeled[1].label = "9".into();
        assert!(check_schema("fig7", &fresh, &relabeled).is_err());
        // Column name.
        let mut recol = fig7_rows();
        recol[0].values[0].0 = "renamed".into();
        let err = check_schema("fig7", &fresh, &recol).expect_err("column drift");
        assert!(err.to_string().contains("renamed"), "{err}");
    }

    #[test]
    fn column_check_ignores_row_count_but_not_names() {
        let committed = fig7_rows();
        let fresh = &committed[..1];
        assert!(check_columns("fig7", fresh, &committed).is_ok());
        let mut recol = fig7_rows();
        recol[0].values[2].0 = "renamed".into();
        assert!(check_columns("fig7", fresh, &recol).is_err());
    }

    #[test]
    fn tolerance_default_matches_constants() {
        let t = Tolerance::default();
        assert_eq!(t.wall, Tolerance::DEFAULT_WALL);
        assert_eq!(t.speedup, Tolerance::DEFAULT_SPEEDUP);
    }
}
