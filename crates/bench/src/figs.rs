//! Shared measurement cores for the Figure 7 / Figure 8 emitters.
//!
//! The `fig7` and `fig8` binaries, the `perf_smoke` binary, and the
//! perf-regression test all consume these functions, so a fresh
//! measurement is schema- and method-identical to the committed
//! baselines in `results/` — the tolerance comparison in
//! [`crate::regress`] never compares apples to oranges.

use crate::tuning::{gpasta_for, tune_gdca_ps, DISPATCH_NS, SIM_WORKERS};
use crate::Row;
use gpasta_circuits::PaperCircuit;
use gpasta_core::{DeterGPasta, GPasta, Gdca, Partitioner, PartitionerOptions, SeqGPasta};
use gpasta_gpu::Device;
use gpasta_sched::{simulate_makespan, Executor, Taskflow};
use gpasta_sta::{CellLibrary, GateId, Timer};
use gpasta_tdg::QuotientTdg;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Partition sizes swept by the Figure 8 emitter.
pub const FIG8_PARTITION_SIZES: &[usize] = &[1, 2, 3, 5, 8, 15, 30, 60, 120, 240];

/// Seed of the deterministic per-iteration modifier stream (shared by
/// every fig7 policy so all policies time the identical workload).
pub const FIG7_SEED: u64 = 0x5EED;

/// Iteration count of the Figure 7 loop at `scale` (the paper runs 8 K).
pub fn fig7_iterations(scale: f64) -> usize {
    ((8_000.0 * scale) as usize).max(20)
}

/// One deterministic design modifier per iteration: repower a random
/// gate or change a random net's capacitance.
pub fn apply_modifier(timer: &mut Timer, rng: &mut ChaCha8Rng) {
    let num_gates = timer.netlist().num_gates();
    let num_nets = timer.netlist().num_nets() as u32;
    if rng.gen_bool(0.5) && num_gates > 0 {
        let g = GateId(rng.gen_range(0..num_gates as u32));
        let drive = *[0.5f32, 1.0, 2.0, 4.0].choose(rng).expect("non-empty");
        timer.repower_gate(g, drive);
    } else if num_nets > 0 {
        let net = rng.gen_range(0..num_nets);
        timer.set_net_cap(net, rng.gen_range(0.0..6.0));
    }
}

/// A named fig7 scheduling policy: `None` runs the raw TDG.
pub type Fig7Policy<'a> = (
    &'a str,
    Option<(&'a dyn Partitioner, &'a PartitionerOptions)>,
);

/// Per-iteration cost of one fig7 policy: `(wall_ms, sim_ms)`.
pub fn fig7_one_iteration(
    timer: &mut Timer,
    exec: &Executor,
    policy: Option<(&dyn Partitioner, &PartitionerOptions)>,
) -> (f64, f64) {
    let update = timer.update_timing();
    let tdg = update.tdg();
    let payload = update.task_fn();
    match policy {
        None => {
            let t0 = Instant::now();
            let taskflow = Taskflow::from_tdg(tdg, &payload);
            drop(taskflow);
            let overhead = update.build_time() + t0.elapsed();
            let report = exec.run_tdg(tdg, &payload);
            let wall = (overhead + report.elapsed).as_secs_f64() * 1e3;
            let sim = overhead.as_secs_f64() * 1e3
                + simulate_makespan(tdg, SIM_WORKERS, DISPATCH_NS).makespan_ns / 1e6;
            (wall, sim)
        }
        Some((p, opts)) => {
            let t0 = Instant::now();
            let partition = p.partition(tdg, opts).expect("valid options");
            let quotient = QuotientTdg::build(tdg, &partition).expect("schedulable");
            let taskflow = Taskflow::from_quotient(&quotient, &payload);
            drop(taskflow);
            let overhead = update.build_time() + t0.elapsed();
            let report = exec.run_partitioned(&quotient, &payload);
            let wall = (overhead + report.elapsed).as_secs_f64() * 1e3;
            let sim = overhead.as_secs_f64() * 1e3
                + simulate_makespan(quotient.graph(), SIM_WORKERS, DISPATCH_NS).makespan_ns / 1e6;
            (wall, sim)
        }
    }
}

/// The Figure 7 per-circuit core: run the three policies (no
/// partitioning, tuned GDCA, G-PASTA) over the identical modifier
/// stream and return one row per iteration with cumulative wall and
/// simulated-makespan columns — exactly the schema of the committed
/// `results/fig7_<circuit>.json` files.
pub fn fig7_circuit_rows(circuit: PaperCircuit, scale: f64, workers: usize) -> Vec<Row> {
    let iterations = fig7_iterations(scale);
    let netlist = circuit.build(scale);
    let library = CellLibrary::typical();
    let exec = Executor::new(workers);

    // Tune GDCA once on the full-update TDG, as for Table 1.
    let gdca_ps = {
        let mut t = Timer::new(netlist.clone(), library.clone());
        let update = t.update_timing();
        tune_gdca_ps(update.tdg(), SIM_WORKERS, DISPATCH_NS)
    };

    let gdca: Box<dyn Partitioner> = Box::new(Gdca::new());
    let gpasta = gpasta_for(workers);
    let gdca_opts = PartitionerOptions::with_max_size(gdca_ps);
    let auto_opts = PartitionerOptions::default();
    let policies: Vec<Fig7Policy> = vec![
        ("original", None),
        ("gdca", Some((gdca.as_ref(), &gdca_opts))),
        ("gpasta", Some((gpasta.as_ref(), &auto_opts))),
    ];

    let mut wall_series: Vec<Vec<f64>> = Vec::new();
    let mut sim_series: Vec<Vec<f64>> = Vec::new();
    for (_, policy) in &policies {
        // Identical modifier sequence per policy.
        let mut rng = ChaCha8Rng::seed_from_u64(FIG7_SEED);
        let mut timer = Timer::new(netlist.clone(), library.clone());
        // Initial full analysis is common to all policies (warm start).
        timer.update_timing().run_sequential();

        let (mut wall_cum, mut sim_cum) = (0.0f64, 0.0f64);
        let mut wall_curve = Vec::with_capacity(iterations);
        let mut sim_curve = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            apply_modifier(&mut timer, &mut rng);
            let (wall, sim) = fig7_one_iteration(&mut timer, &exec, *policy);
            wall_cum += wall;
            sim_cum += sim;
            wall_curve.push(wall_cum);
            sim_curve.push(sim_cum);
        }
        wall_series.push(wall_curve);
        sim_series.push(sim_curve);
    }

    (0..iterations)
        .map(|i| {
            Row::new(
                format!("{}", i + 1),
                &[
                    ("original_wall_ms", wall_series[0][i]),
                    ("gdca_wall_ms", wall_series[1][i]),
                    ("gpasta_wall_ms", wall_series[2][i]),
                    ("original_sim_ms", sim_series[0][i]),
                    ("gdca_sim_ms", sim_series[1][i]),
                    ("gpasta_sim_ms", sim_series[2][i]),
                ],
            )
        })
        .collect()
}

/// The Figure 8 per-circuit core: sweep [`FIG8_PARTITION_SIZES`] over
/// the four partitioners and return one row per partition size with
/// simulated-makespan and wall-clock columns — exactly the schema of
/// the committed `results/fig8_<circuit>.json` files.
pub fn fig8_circuit_rows(
    circuit: PaperCircuit,
    scale: f64,
    runs: usize,
    workers: usize,
) -> Vec<Row> {
    let netlist = circuit.build(scale);
    let library = CellLibrary::typical();
    let exec = Executor::new(workers);

    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(Gdca::new()),
        Box::new(SeqGPasta::new()),
        Box::new(GPasta::with_device(Device::new(workers))),
        Box::new(DeterGPasta::with_device(Device::new(workers))),
    ];

    let mut rows = Vec::new();
    for &ps in FIG8_PARTITION_SIZES {
        let opts = PartitionerOptions::with_max_size(ps);
        let mut wall_ms = Vec::new();
        let mut sim_ms = Vec::new();
        for p in &partitioners {
            // Wall-clock on this host.
            let mut timer = Timer::new(netlist.clone(), library.clone());
            let t = crate::flow::average(runs, || {
                timer.invalidate_all();
                crate::measure_partitioned_update(&mut timer, &exec, p.as_ref(), &opts)
            });
            wall_ms.push(t.run.as_secs_f64() * 1e3);

            // Deterministic multi-worker makespan.
            let mut timer = Timer::new(netlist.clone(), library.clone());
            let update = timer.update_timing();
            let partition = p.partition(update.tdg(), &opts).expect("valid options");
            let q = QuotientTdg::build(update.tdg(), &partition).expect("schedulable");
            let sim = simulate_makespan(q.graph(), SIM_WORKERS, DISPATCH_NS);
            sim_ms.push(sim.makespan_ns / 1e6);
        }
        rows.push(Row::new(
            format!("{ps}"),
            &[
                ("gdca_sim_ms", sim_ms[0]),
                ("seq_gpasta_sim_ms", sim_ms[1]),
                ("gpasta_sim_ms", sim_ms[2]),
                ("deter_gpasta_sim_ms", sim_ms[3]),
                ("gdca_wall_ms", wall_ms[0]),
                ("seq_gpasta_wall_ms", wall_ms[1]),
                ("gpasta_wall_ms", wall_ms[2]),
                ("deter_gpasta_wall_ms", wall_ms[3]),
            ],
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_iterations_floor_and_scale() {
        assert_eq!(fig7_iterations(0.0001), 20);
        assert_eq!(fig7_iterations(0.05), 400);
        assert_eq!(fig7_iterations(1.0), 8_000);
    }

    #[test]
    fn fig7_rows_carry_the_committed_schema() {
        let rows = fig7_circuit_rows(PaperCircuit::VgaLcd, 0.001, 2);
        assert_eq!(rows.len(), 20, "floor of 20 iterations");
        let cols: Vec<&str> = rows[0].values.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            cols,
            [
                "original_wall_ms",
                "gdca_wall_ms",
                "gpasta_wall_ms",
                "original_sim_ms",
                "gdca_sim_ms",
                "gpasta_sim_ms"
            ]
        );
        // Cumulative series are non-decreasing.
        for w in rows.windows(2) {
            for i in 0..w[0].values.len() {
                assert!(w[0].values[i].1 <= w[1].values[i].1, "cumulative column");
            }
        }
    }

    #[test]
    fn fig8_rows_carry_the_committed_schema() {
        let rows = fig8_circuit_rows(PaperCircuit::DesPerf, 0.002, 1, 2);
        assert_eq!(rows.len(), FIG8_PARTITION_SIZES.len());
        let cols: Vec<&str> = rows[0].values.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            cols,
            [
                "gdca_sim_ms",
                "seq_gpasta_sim_ms",
                "gpasta_sim_ms",
                "deter_gpasta_sim_ms",
                "gdca_wall_ms",
                "seq_gpasta_wall_ms",
                "gpasta_wall_ms",
                "deter_gpasta_wall_ms"
            ]
        );
        assert_eq!(rows[0].label, "1");
        assert_eq!(rows.last().expect("non-empty").label, "240");
    }
}
