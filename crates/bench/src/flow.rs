//! The measured `update_timing` flows: plain TDG vs partitioned TDG.

use gpasta_core::{Partitioner, PartitionerOptions};
use gpasta_sched::{Executor, Taskflow};
use gpasta_sta::Timer;
use gpasta_tdg::QuotientTdg;
use std::time::Duration;

/// Wall-clock breakdown of one `update_timing` invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowTiming {
    /// Building the task dependency graph from the timing graph *and*
    /// materialising the scheduler's task graph (one node per schedulable
    /// unit — the Taskflow-construction cost the paper's Figure 1(a)
    /// attributes 59 % of `update_timing` to; partitioning shrinks this
    /// phase because the scheduler gets one node per partition).
    pub build: Duration,
    /// Partitioning the TDG (zero for the plain flow) — the partitioner
    /// alone, matching the paper's `T_Partition`; the shared CSR view is
    /// warmed under `build`.
    pub partition: Duration,
    /// Constructing the partitioned TDG (quotient graph) that the
    /// scheduler consumes; identical work for every partitioner.
    pub quotient: Duration,
    /// Executing the (possibly partitioned) TDG.
    pub run: Duration,
    /// Tasks in the TDG.
    pub num_tasks: usize,
    /// Dependencies in the TDG.
    pub num_deps: usize,
    /// Scheduled units (tasks, or partitions after partitioning).
    pub dispatches: u64,
}

impl FlowTiming {
    /// `build + partition + quotient + run`.
    pub fn total(&self) -> Duration {
        self.build + self.partition + self.quotient + self.run
    }
}

/// Run `update_timing` without partitioning and time each phase.
///
/// The timer must have pending changes (or be fresh) for the TDG to be
/// non-empty.
pub fn measure_plain_update(timer: &mut Timer, exec: &Executor) -> FlowTiming {
    let update = timer.update_timing();
    let mut build = update.build_time();
    let tdg = update.tdg();
    let (num_tasks, num_deps) = (tdg.num_tasks(), tdg.num_deps());
    let payload = update.task_fn();
    // Materialise the per-task scheduler graph (Taskflow construction).
    let t0 = std::time::Instant::now();
    let taskflow = Taskflow::from_tdg(tdg, &payload);
    build += t0.elapsed();
    assert_eq!(taskflow.num_nodes(), num_tasks);
    drop(taskflow);
    let report = exec.run_tdg(tdg, &payload);
    FlowTiming {
        build,
        partition: Duration::ZERO,
        quotient: Duration::ZERO,
        run: report.elapsed,
        num_tasks,
        num_deps,
        dispatches: report.dispatches,
    }
}

/// Run `update_timing` through `partitioner` and time each phase;
/// partitioning and quotient construction are timed separately.
pub fn measure_partitioned_update(
    timer: &mut Timer,
    exec: &Executor,
    partitioner: &dyn Partitioner,
    opts: &PartitionerOptions,
) -> FlowTiming {
    let update = timer.update_timing();
    let mut build = update.build_time();
    let tdg = update.tdg();
    let (num_tasks, num_deps) = (tdg.num_tasks(), tdg.num_deps());

    // The level-ordered CSR view is partitioner-independent graph
    // infrastructure (every algorithm consumes the same cached view);
    // charge its lazy construction to the build phase so `partition`
    // times the algorithm alone. The total is unchanged either way.
    let tc = std::time::Instant::now();
    tdg.csr();
    build += tc.elapsed();

    let t0 = std::time::Instant::now();
    let partition = partitioner
        .partition(tdg, opts)
        .expect("harness passes valid options");
    let partition_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let quotient =
        QuotientTdg::build(tdg, &partition).expect("partitioners produce schedulable partitions");
    let quotient_time = t1.elapsed();

    let payload = update.task_fn();
    // Materialise the per-partition scheduler graph — far fewer nodes than
    // the per-task graph of the plain flow.
    let t2 = std::time::Instant::now();
    let taskflow = Taskflow::from_quotient(&quotient, &payload);
    build += t2.elapsed();
    drop(taskflow);
    let report = exec.run_partitioned(&quotient, &payload);
    FlowTiming {
        build,
        partition: partition_time,
        quotient: quotient_time,
        run: report.elapsed,
        num_tasks,
        num_deps,
        dispatches: report.dispatches,
    }
}

/// Average a sampling closure over `runs` repetitions (the paper averages
/// 10 runs; the harness default is 3 for CI friendliness).
pub fn average<F: FnMut() -> FlowTiming>(runs: usize, mut sample: F) -> FlowTiming {
    assert!(runs > 0, "need at least one run");
    let mut acc = FlowTiming::default();
    for _ in 0..runs {
        let t = sample();
        acc.build += t.build;
        acc.partition += t.partition;
        acc.quotient += t.quotient;
        acc.run += t.run;
        acc.num_tasks = t.num_tasks;
        acc.num_deps = t.num_deps;
        acc.dispatches = t.dispatches;
    }
    let d = runs as u32;
    acc.build /= d;
    acc.partition /= d;
    acc.quotient /= d;
    acc.run /= d;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_circuits::PaperCircuit;
    use gpasta_core::{GPasta, SeqGPasta};
    use gpasta_sta::CellLibrary;

    fn tiny_timer() -> Timer {
        Timer::new(PaperCircuit::AesCore.build(0.01), CellLibrary::typical())
    }

    #[test]
    fn plain_flow_reports_counts() {
        let mut timer = tiny_timer();
        let exec = Executor::new(1);
        let t = measure_plain_update(&mut timer, &exec);
        assert!(t.num_tasks > 100);
        assert_eq!(t.dispatches as usize, t.num_tasks);
        assert!(t.run > Duration::ZERO);
        assert!(t.partition.is_zero());
    }

    #[test]
    fn partitioned_flow_reduces_dispatches() {
        let exec = Executor::new(1);

        let mut timer = tiny_timer();
        let plain = measure_plain_update(&mut timer, &exec);

        let mut timer = tiny_timer();
        let part = measure_partitioned_update(
            &mut timer,
            &exec,
            &GPasta::with_device(gpasta_gpu::Device::single()),
            &PartitionerOptions::default(),
        );
        assert_eq!(part.num_tasks, plain.num_tasks);
        assert!(
            part.dispatches < plain.dispatches / 2,
            "partitioning must collapse dispatch count: {} vs {}",
            part.dispatches,
            plain.dispatches
        );
        assert!(part.partition > Duration::ZERO);
    }

    #[test]
    fn partitioned_flow_produces_identical_timing_results() {
        let exec = Executor::new(2);

        let mut a = tiny_timer();
        measure_plain_update(&mut a, &exec);
        let ra = a.report(5);

        let mut b = tiny_timer();
        measure_partitioned_update(
            &mut b,
            &exec,
            &SeqGPasta::new(),
            &PartitionerOptions::default(),
        );
        let rb = b.report(5);

        assert_eq!(ra.wns_ps, rb.wns_ps, "partitioning must not change results");
        assert_eq!(ra.worst[0].name, rb.worst[0].name);
    }

    #[test]
    fn average_divides() {
        let mut n = 0u64;
        let t = average(4, || {
            n += 1;
            FlowTiming {
                build: Duration::from_millis(4),
                partition: Duration::from_millis(8),
                quotient: Duration::from_millis(2),
                run: Duration::from_millis(12),
                num_tasks: 5,
                num_deps: 6,
                dispatches: 3,
            }
        });
        assert_eq!(n, 4);
        assert_eq!(t.build, Duration::from_millis(4));
        assert_eq!(t.partition, Duration::from_millis(8));
        assert_eq!(t.total(), Duration::from_millis(26));
    }
}
