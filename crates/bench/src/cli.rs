//! Minimal command-line handling shared by the harness binaries.

use std::path::PathBuf;

/// Configuration parsed from the common harness flags.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    /// Fraction of the paper's TDG sizes to generate (1.0 = paper scale).
    pub scale: f64,
    /// Number of measured repetitions to average.
    pub runs: usize,
    /// Executor / device worker count.
    pub workers: usize,
    /// Output directory for CSV/JSON results.
    pub out_dir: PathBuf,
    /// Run the incremental-partition-maintenance variant (fig7 only):
    /// cached partition repaired inside the dirty cone instead of
    /// re-partitioning from scratch each iteration.
    pub incremental: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: 0.05,
            runs: 3,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            out_dir: PathBuf::from("results"),
            incremental: false,
        }
    }
}

impl BenchConfig {
    /// Parse `--scale <f> | --full | --runs <n> | --workers <n> | --out <dir>
    /// | --incremental` from the process arguments, ignoring the binary name.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments (acceptable for a
    /// benchmark binary).
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit argument iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut cfg = BenchConfig::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    cfg.scale = v.parse().expect("--scale needs a float");
                }
                "--full" => cfg.scale = 1.0,
                "--runs" => {
                    let v = it.next().expect("--runs needs a value");
                    cfg.runs = v.parse().expect("--runs needs an integer");
                }
                "--workers" => {
                    let v = it.next().expect("--workers needs a value");
                    cfg.workers = v.parse().expect("--workers needs an integer");
                }
                "--out" => {
                    let v = it.next().expect("--out needs a directory");
                    cfg.out_dir = PathBuf::from(v);
                }
                "--incremental" => cfg.incremental = true,
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale <f>] [--full] [--runs <n>] [--workers <n>] [--out <dir>] [--incremental]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other}; try --help"),
            }
        }
        assert!(cfg.scale > 0.0, "--scale must be positive");
        assert!(cfg.runs > 0, "--runs must be positive");
        assert!(cfg.workers > 0, "--workers must be positive");
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchConfig {
        BenchConfig::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let cfg = parse(&[]);
        assert_eq!(cfg.scale, 0.05);
        assert_eq!(cfg.runs, 3);
        assert!(cfg.workers >= 1);
        assert!(!cfg.incremental);
    }

    #[test]
    fn incremental_flag() {
        let cfg = parse(&["--incremental", "--scale", "0.5"]);
        assert!(cfg.incremental);
        assert_eq!(cfg.scale, 0.5);
    }

    #[test]
    fn full_and_explicit_values() {
        let cfg = parse(&[
            "--full",
            "--runs",
            "10",
            "--workers",
            "2",
            "--out",
            "/tmp/x",
        ]);
        assert_eq!(cfg.scale, 1.0);
        assert_eq!(cfg.runs, 10);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn scale_overrides() {
        let cfg = parse(&["--scale", "0.25"]);
        assert_eq!(cfg.scale, 0.25);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        let _ = parse(&["--bogus"]);
    }

    #[test]
    #[should_panic(expected = "--scale must be positive")]
    fn zero_scale_panics() {
        let _ = parse(&["--scale", "0"]);
    }
}
