//! Minimal command-line handling shared by the harness binaries.

use std::path::PathBuf;

/// A malformed harness command line. Lives in [`gpasta::errors`] (the
/// shared process-boundary error module); re-exported here so existing
/// harness imports keep working.
pub use gpasta::errors::CliError;

/// Configuration parsed from the common harness flags.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    /// Fraction of the paper's TDG sizes to generate (1.0 = paper scale).
    pub scale: f64,
    /// Number of measured repetitions to average.
    pub runs: usize,
    /// Executor / device worker count.
    pub workers: usize,
    /// Output directory for CSV/JSON results.
    pub out_dir: PathBuf,
    /// Run the incremental-partition-maintenance variant (fig7 only):
    /// cached partition repaired inside the dirty cone instead of
    /// re-partitioning from scratch each iteration.
    pub incremental: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: 0.05,
            runs: 3,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            out_dir: PathBuf::from("results"),
            incremental: false,
        }
    }
}

impl BenchConfig {
    /// Parse `--scale <f> | --full | --runs <n> | --workers <n> | --out <dir>
    /// | --incremental` from the process arguments, ignoring the binary name.
    /// This is the harness binaries' process boundary: a malformed command
    /// line prints the typed error plus usage and exits with status 2
    /// instead of panicking.
    pub fn from_args() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{}", Self::USAGE);
                std::process::exit(2);
            }
        }
    }

    /// Usage line shared by `--help` and error reporting.
    pub const USAGE: &'static str =
        "usage: [--scale <f>] [--full] [--runs <n>] [--workers <n>] [--out <dir>] [--incremental]";

    /// Parse from an explicit argument iterator (testable).
    ///
    /// # Errors
    ///
    /// [`CliError`] describing the offending flag and value.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, CliError> {
        let mut cfg = BenchConfig::default();
        let mut it = args.into_iter();
        let value = |flag: &'static str, it: &mut dyn Iterator<Item = String>| {
            it.next().ok_or(CliError::MissingValue(flag))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = value("--scale", &mut it)?;
                    cfg.scale = v.parse().map_err(|e| CliError::BadValue {
                        flag: "--scale",
                        value: v,
                        why: format!("{e}"),
                    })?;
                }
                "--full" => cfg.scale = 1.0,
                "--runs" => {
                    let v = value("--runs", &mut it)?;
                    cfg.runs = v.parse().map_err(|e| CliError::BadValue {
                        flag: "--runs",
                        value: v,
                        why: format!("{e}"),
                    })?;
                }
                "--workers" => {
                    let v = value("--workers", &mut it)?;
                    cfg.workers = v.parse().map_err(|e| CliError::BadValue {
                        flag: "--workers",
                        value: v,
                        why: format!("{e}"),
                    })?;
                }
                "--out" => cfg.out_dir = PathBuf::from(value("--out", &mut it)?),
                "--incremental" => cfg.incremental = true,
                "--help" | "-h" => {
                    eprintln!("{}", Self::USAGE);
                    std::process::exit(0);
                }
                other => return Err(CliError::UnknownFlag(other.to_owned())),
            }
        }
        if cfg.scale <= 0.0 {
            return Err(CliError::NonPositive("--scale"));
        }
        if cfg.runs == 0 {
            return Err(CliError::NonPositive("--runs"));
        }
        if cfg.workers == 0 {
            return Err(CliError::NonPositive("--workers"));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchConfig, CliError> {
        BenchConfig::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let cfg = parse(&[]).expect("empty args are valid");
        assert_eq!(cfg.scale, 0.05);
        assert_eq!(cfg.runs, 3);
        assert!(cfg.workers >= 1);
        assert!(!cfg.incremental);
    }

    #[test]
    fn incremental_flag() {
        let cfg = parse(&["--incremental", "--scale", "0.5"]).expect("valid");
        assert!(cfg.incremental);
        assert_eq!(cfg.scale, 0.5);
    }

    #[test]
    fn full_and_explicit_values() {
        let cfg = parse(&[
            "--full",
            "--runs",
            "10",
            "--workers",
            "2",
            "--out",
            "/tmp/x",
        ])
        .expect("valid");
        assert_eq!(cfg.scale, 1.0);
        assert_eq!(cfg.runs, 10);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn scale_overrides() {
        let cfg = parse(&["--scale", "0.25"]).expect("valid");
        assert_eq!(cfg.scale, 0.25);
    }

    #[test]
    fn unknown_flag_is_a_typed_error() {
        assert_eq!(
            parse(&["--bogus"]),
            Err(CliError::UnknownFlag("--bogus".into()))
        );
    }

    #[test]
    fn zero_scale_is_a_typed_error() {
        assert_eq!(
            parse(&["--scale", "0"]),
            Err(CliError::NonPositive("--scale"))
        );
        assert_eq!(
            parse(&["--runs", "0"]),
            Err(CliError::NonPositive("--runs"))
        );
        assert_eq!(
            parse(&["--workers", "0"]),
            Err(CliError::NonPositive("--workers"))
        );
    }

    #[test]
    fn missing_and_malformed_values_are_typed_errors() {
        assert_eq!(parse(&["--runs"]), Err(CliError::MissingValue("--runs")));
        match parse(&["--scale", "fast"]) {
            Err(CliError::BadValue { flag, value, .. }) => {
                assert_eq!(flag, "--scale");
                assert_eq!(value, "fast");
            }
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn errors_render_with_context() {
        let msg = parse(&["--workers", "many"])
            .expect_err("malformed")
            .to_string();
        assert!(msg.contains("--workers"), "{msg}");
        assert!(msg.contains("many"), "{msg}");
    }
}
