//! Criterion microbenchmarks: per-task scheduling cost and the effect of
//! partitioning on dispatch volume.
//!
//! Calibrates the paper's premise on this host: Taskflow-style per-task
//! scheduling costs 0.2–3 µs, comparable to timing-propagation payloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpasta_circuits::dag;
use gpasta_core::{Partitioner, PartitionerOptions, SeqGPasta};
use gpasta_sched::{measure_sched_overhead, Executor};
use gpasta_tdg::{QuotientTdg, TaskId};

fn bench_scheduler(c: &mut Criterion) {
    // Print the calibrated per-task overhead once, as context.
    for workers in [1usize, 2] {
        let exec = Executor::new(workers);
        let profile = measure_sched_overhead(&exec, 100_000);
        eprintln!("sched overhead @ {workers} workers: {profile}");
    }

    let tdg = dag::layered(200, 100, 2, 3); // 20k tasks
    let partition = SeqGPasta::new()
        .partition(&tdg, &PartitionerOptions::default())
        .expect("valid options");
    let quotient = QuotientTdg::build(&tdg, &partition).expect("schedulable");

    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    for workers in [1usize, 2] {
        let exec = Executor::new(workers);
        group.bench_with_input(
            BenchmarkId::new("run_tdg_empty", workers),
            &exec,
            |b, exec| b.iter(|| exec.run_tdg(&tdg, &|_t: TaskId| {})),
        );
        group.bench_with_input(
            BenchmarkId::new("run_partitioned_empty", workers),
            &exec,
            |b, exec| b.iter(|| exec.run_partitioned(&quotient, &|_t: TaskId| {})),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
