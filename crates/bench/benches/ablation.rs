//! Ablation benchmarks for the design choices called out in `DESIGN.md` §6:
//!
//! 1. adjacent-level clustering (G-PASTA) vs within-level clustering
//!    (GDCA-style) — how much TDG parallelism each retains;
//! 2. the `atomicMax` clustering rule vs a first-writer-wins rule — the
//!    max rule is what makes clustering cycle-free (Theorem 1); the
//!    ablation counts how often the naive rule produces unschedulable
//!    partitions;
//! 3. the deterministic kernel's overhead vs the racy kernel;
//! 4. auto partition size vs swept sizes;
//! 5. sanitizer shadow-memory instrumentation overhead vs a plain device.

use criterion::{criterion_group, criterion_main, Criterion};
use gpasta_circuits::dag;
use gpasta_core::{DeterGPasta, GPasta, Gdca, Partitioner, PartitionerOptions, SeqGPasta};
use gpasta_gpu::Device;
use gpasta_sched::simulate_makespan;
use gpasta_tdg::{validate, Partition, QuotientTdg, TaskId, Tdg};

/// Ablation variant of seq-G-PASTA: first-writer-wins instead of the max
/// rule (a successor keeps the *first* desired id it receives). Not
/// cycle-free — that is the point.
fn first_writer_partition(tdg: &Tdg, ps: usize) -> Partition {
    let n = tdg.num_tasks();
    const UNSET: u32 = u32::MAX;
    let mut d_pid = vec![UNSET; n];
    let mut f_pid = vec![0u32; n];
    let mut dep = tdg.in_degrees();
    let mut pid_cnt = vec![0u32; 2 * n + 1];
    let mut frontier: Vec<u32> = tdg.sources().iter().map(|s| s.0).collect();
    for (i, &s) in frontier.iter().enumerate() {
        d_pid[s as usize] = i as u32;
    }
    let mut max_pid = (frontier.len() as u32).saturating_sub(1);
    let mut next = Vec::new();
    while !frontier.is_empty() {
        for &cur in &frontier {
            let want = d_pid[cur as usize];
            let fp = if (pid_cnt[want as usize] as usize) < ps {
                pid_cnt[want as usize] += 1;
                want
            } else {
                max_pid += 1;
                pid_cnt[max_pid as usize] += 1;
                max_pid
            };
            f_pid[cur as usize] = fp;
            for &nb in tdg.successors(TaskId(cur)) {
                if d_pid[nb as usize] == UNSET {
                    d_pid[nb as usize] = fp; // first writer wins
                }
                dep[nb as usize] -= 1;
                if dep[nb as usize] == 0 {
                    next.push(nb);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    Partition::new(f_pid)
}

fn report_rule_validity() {
    let mut first_writer_invalid = 0usize;
    let mut max_rule_invalid = 0usize;
    let trials = 40;
    for seed in 0..trials as u64 {
        let tdg = dag::random_dag(400, 1.8, seed);
        let fw = first_writer_partition(&tdg, 8);
        if validate::check_acyclic(&tdg, &fw).is_err() {
            first_writer_invalid += 1;
        }
        let mx = SeqGPasta::new()
            .partition(&tdg, &PartitionerOptions::with_max_size(8))
            .expect("valid options");
        if validate::check_acyclic(&tdg, &mx).is_err() {
            max_rule_invalid += 1;
        }
    }
    eprintln!(
        "ablation: clustering rule validity over {trials} random DAGs — \
         first-writer-wins invalid: {first_writer_invalid}, max rule invalid: {max_rule_invalid}"
    );
    assert_eq!(
        max_rule_invalid, 0,
        "Theorem 1: the max rule never produces cycles"
    );
    assert!(
        first_writer_invalid > 0,
        "the ablation should show the naive rule failing at least once"
    );
}

fn report_level_strategy() {
    let tdg = dag::layered(96, 30, 1, 5);
    for (name, partition) in [
        (
            "adjacent-level (G-PASTA)",
            SeqGPasta::new()
                .partition(&tdg, &PartitionerOptions::with_max_size(30))
                .expect("valid"),
        ),
        (
            "within-level (GDCA)",
            Gdca::new()
                .partition(&tdg, &PartitionerOptions::with_max_size(30))
                .expect("valid"),
        ),
    ] {
        let q = QuotientTdg::build(&tdg, &partition).expect("schedulable");
        let sim = simulate_makespan(q.graph(), 8, 800.0);
        eprintln!(
            "ablation: {name}: {} partitions, simulated 8-worker makespan {:.3} ms",
            partition.num_partitions(),
            sim.makespan_ns / 1e6
        );
    }
}

fn report_auto_ps() {
    let tdg = dag::layered(128, 40, 2, 9);
    let auto = SeqGPasta::new()
        .partition(&tdg, &PartitionerOptions::default())
        .expect("valid");
    let q = QuotientTdg::build(&tdg, &auto).expect("schedulable");
    let auto_ms = simulate_makespan(q.graph(), 8, 800.0).makespan_ns / 1e6;
    let mut best = f64::INFINITY;
    let mut best_ps = 0;
    for ps in [2usize, 4, 8, 16, 32, 64] {
        let p = SeqGPasta::new()
            .partition(&tdg, &PartitionerOptions::with_max_size(ps))
            .expect("valid");
        let q = QuotientTdg::build(&tdg, &p).expect("schedulable");
        let ms = simulate_makespan(q.graph(), 8, 800.0).makespan_ns / 1e6;
        if ms < best {
            best = ms;
            best_ps = ps;
        }
    }
    eprintln!(
        "ablation: auto Ps {:.3} ms vs best swept Ps={} {:.3} ms",
        auto_ms, best_ps, best
    );
}

fn report_transitive_reduction() {
    // Redundant dependencies make release work for the scheduler and bias
    // partitioners; measure how much a shortcut-heavy DAG shrinks and what
    // that does to partition quality.
    let tdg = dag::random_dag(4000, 2.2, 13);
    let reduced = gpasta_tdg::transitive_reduction(&tdg);
    let quality = |g: &gpasta_tdg::Tdg| {
        let p = SeqGPasta::new()
            .partition(g, &PartitionerOptions::with_max_size(16))
            .expect("valid");
        let q = QuotientTdg::build(g, &p).expect("schedulable");
        simulate_makespan(q.graph(), 8, 800.0).makespan_ns / 1e6
    };
    eprintln!(
        "ablation: transitive reduction {} -> {} deps; partitioned makespan {:.3} -> {:.3} ms",
        tdg.num_deps(),
        reduced.num_deps(),
        quality(&tdg),
        quality(&reduced)
    );
}

fn report_chain_refinement() {
    // Optional post-pass: fuse quotient chains. G-PASTA\'s adjacent-level
    // clustering leaves none (its own small finding), but GDCA\'s
    // within-level clusters stack into chains the pass can collapse.
    // Series-parallel blocks: the join -> fork bridges between blocks are
    // exactly the chain edges the pass targets.
    let tdg = dag::series_parallel(60, 6);
    let opts = PartitionerOptions::with_max_size(8);
    let sim_of = |p: &gpasta_tdg::Partition| {
        let q = QuotientTdg::build(&tdg, p).expect("schedulable");
        simulate_makespan(q.graph(), 8, 800.0).makespan_ns / 1e6
    };
    for (name, base) in [
        (
            "seq-G-PASTA",
            SeqGPasta::new().partition(&tdg, &opts).expect("valid"),
        ),
        ("GDCA", Gdca::new().partition(&tdg, &opts).expect("valid")),
    ] {
        let refined = gpasta_core::merge_chains(&tdg, &base, &opts);
        eprintln!(
            "ablation: chain refinement on {name}: {} -> {} partitions; makespan {:.3} -> {:.3} ms",
            base.num_partitions(),
            refined.num_partitions(),
            sim_of(&base),
            sim_of(&refined)
        );
    }
}

fn bench_ablation(c: &mut Criterion) {
    report_rule_validity();
    report_level_strategy();
    report_auto_ps();
    report_transitive_reduction();
    report_chain_refinement();

    // Deterministic kernel overhead vs the racy kernel (paper §4.1:
    // deter-G-PASTA is somewhat slower but still far ahead of GDCA).
    let tdg = dag::layered(200, 100, 2, 11);
    let opts = PartitionerOptions::with_max_size(16);
    let mut group = c.benchmark_group("deter_overhead");
    group.sample_size(10);
    group.bench_function("racy_gpasta", |b| {
        let p = GPasta::with_device(Device::single());
        b.iter(|| p.partition(&tdg, &opts).expect("valid options"))
    });
    group.bench_function("deter_gpasta", |b| {
        let p = DeterGPasta::with_device(Device::single());
        b.iter(|| p.partition(&tdg, &opts).expect("valid options"))
    });
    group.finish();

    // Sanitizer instrumentation overhead: the same partition run on a
    // plain vs a sanitized device. Also isolates the launch layer with a
    // pure store kernel, where the uninstrumented path must only pay the
    // null shadow check.
    let mut group = c.benchmark_group("sanitizer_overhead");
    group.sample_size(10);
    group.bench_function("gpasta_plain", |b| {
        let p = GPasta::with_device(Device::single());
        b.iter(|| p.partition(&tdg, &opts).expect("valid options"))
    });
    group.bench_function("gpasta_sanitized", |b| {
        let p = GPasta::with_device(Device::sanitized(1));
        b.iter(|| p.partition(&tdg, &opts).expect("valid options"))
    });
    group.bench_function("launch_plain", |b| {
        let dev = Device::new(2);
        let buf = dev.buf_zeroed("bench.plain", 100_000);
        b.iter(|| dev.launch(100_000, |gid| buf.store(gid as usize, gid)))
    });
    group.bench_function("launch_sanitized", |b| {
        let dev = Device::sanitized(2);
        let buf = dev.buf_zeroed("bench.shadowed", 100_000);
        b.iter(|| dev.launch(100_000, |gid| buf.store(gid as usize, gid)))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
