//! Criterion microbenchmarks: STA engine costs — table lookups, task
//! granularity, TDG build time.
//!
//! Verifies the workload sits in the paper's regime: propagation tasks
//! comparable to (or a small multiple of) per-task scheduling cost.

use criterion::{criterion_group, criterion_main, Criterion};
use gpasta_circuits::PaperCircuit;
use gpasta_sta::{CellKind, CellLibrary, Timer};

fn bench_sta(c: &mut Criterion) {
    let library = CellLibrary::typical();

    // Raw NLDM lookup (the innermost delay-calculation kernel).
    let tables = &library.cell(CellKind::Nand2).tables;
    c.bench_function("nldm_lookup", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..100u32 {
                let s = 5.0 + (i as f32) * 3.0;
                let l = 0.5 + (i as f32) * 0.3;
                acc += tables.delay_rise.lookup(s, l);
            }
            acc
        })
    });

    // Full-update propagation: per-task cost = total / tasks.
    let netlist = PaperCircuit::AesCore.build(0.05);
    let mut group = c.benchmark_group("update_timing");
    group.sample_size(10);
    group.bench_function("run_sequential", |b| {
        let mut timer = Timer::new(netlist.clone(), library.clone());
        b.iter(|| {
            timer.invalidate_all();
            let update = timer.update_timing();
            update.run_sequential();
            update.tdg().num_tasks()
        })
    });
    group.bench_function("build_tdg", |b| {
        let mut timer = Timer::new(netlist.clone(), library.clone());
        b.iter(|| {
            timer.invalidate_all();
            let update = timer.update_timing();
            update.tdg().num_tasks()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sta);
criterion_main!(benches);
