//! Criterion microbenchmarks: partitioning runtime per algorithm
//! (the `T_Partition` column of Table 1, at Criterion precision).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpasta_circuits::dag;
use gpasta_core::{DeterGPasta, GPasta, Gdca, Partitioner, PartitionerOptions, Sarkar, SeqGPasta};
use gpasta_gpu::Device;

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);

    for &n in &[10_000usize, 40_000] {
        let width = ((n as f64).sqrt() as usize) * 2;
        let levels = (n / width).max(2);
        let tdg = dag::layered(width, levels, 2, 7);
        let opts = PartitionerOptions::with_max_size(16);

        let algos: Vec<Box<dyn Partitioner>> = vec![
            Box::new(SeqGPasta::new()),
            Box::new(GPasta::with_device(Device::single())),
            Box::new(DeterGPasta::with_device(Device::single())),
            Box::new(Gdca::new()),
        ];
        for algo in &algos {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), tdg.num_tasks()),
                &tdg,
                |b, tdg| b.iter(|| algo.partition(tdg, &opts).expect("valid options")),
            );
        }
    }

    // Sarkar only at a size it can stomach (quadratic).
    let tdg = dag::layered(40, 50, 2, 7);
    let opts = PartitionerOptions::with_max_size(16);
    group.bench_with_input(
        BenchmarkId::new("Sarkar", tdg.num_tasks()),
        &tdg,
        |b, tdg| b.iter(|| Sarkar::new().partition(tdg, &opts).expect("valid options")),
    );
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
