//! Criterion microbenchmarks: the device's Thrust-style primitives
//! (Algorithm 2's building blocks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpasta_gpu::{prims, Device};

fn inputs(n: usize) -> (Vec<u64>, Vec<u32>, Vec<u32>) {
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let keys64: Vec<u64> = (0..n).map(|_| next()).collect();
    let vals: Vec<u32> = (0..n).map(|_| (next() % 7) as u32).collect();
    // Grouped keys for reduce_by_key.
    let grouped: Vec<u32> = (0..n).map(|i| (i / 9) as u32).collect();
    (keys64, vals, grouped)
}

fn bench_primitives(c: &mut Criterion) {
    let n = 200_000;
    let (keys64, vals, grouped) = inputs(n);

    let mut group = c.benchmark_group("prims");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let dev = Device::new(workers);
        group.bench_with_input(BenchmarkId::new("sort_u64", workers), &dev, |b, dev| {
            b.iter(|| {
                let mut k = keys64.clone();
                prims::sort_u64(dev, &mut k);
                k
            })
        });
        group.bench_with_input(
            BenchmarkId::new("exclusive_scan", workers),
            &dev,
            |b, dev| b.iter(|| prims::exclusive_scan(dev, &vals)),
        );
        group.bench_with_input(
            BenchmarkId::new("inclusive_scan", workers),
            &dev,
            |b, dev| b.iter(|| prims::inclusive_scan(dev, &vals)),
        );
        group.bench_with_input(
            BenchmarkId::new("reduce_by_key", workers),
            &dev,
            |b, dev| b.iter(|| prims::reduce_by_key(dev, &grouped, &vals)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
