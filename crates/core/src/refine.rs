//! Post-partitioning refinement: quotient chain merging.
//!
//! Any partitioner can leave *chains* in the quotient graph — partitions
//! whose only successor has them as its only predecessor. Scheduling the
//! pair separately buys no parallelism (the second cannot start until the
//! first finishes) but costs a dispatch; merging them is always safe:
//! a chain contraction cannot create a cycle, and the union of two convex
//! sets joined by every path between them stays convex.
//!
//! This is an optional pass on top of the paper's algorithms; the
//! `ablation` bench quantifies its effect.

use crate::PartitionerOptions;
use gpasta_tdg::{Partition, QuotientTdg, TaskId, Tdg};

/// Merge quotient chains of `partition` bottom-up: while some partition
/// `P` has exactly one successor `Q`, `Q` has exactly one predecessor, and
/// their combined size fits `opts`'s partition bound, fuse them.
///
/// Returns the refined partition (possibly unchanged). The result is valid
/// whenever the input is.
///
/// # Panics
///
/// Panics if `partition` does not cover `tdg` or is not schedulable (build
/// the quotient first to validate untrusted input).
pub fn merge_chains(tdg: &Tdg, partition: &Partition, opts: &PartitionerOptions) -> Partition {
    let ps = opts.resolve_ps(tdg);
    let q = QuotientTdg::build(tdg, partition).expect("refinement needs a schedulable partition");
    let qg = q.graph();
    let np = q.num_partitions();

    // Union-find over partitions; merge along eligible chain edges.
    let mut parent: Vec<u32> = (0..np as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut size: Vec<usize> = (0..np)
        .map(|p| q.execution_order(gpasta_tdg::PartitionId(p as u32)).len())
        .collect();

    // A chain edge P -> Q is mergeable when out_degree(P) == 1 and
    // in_degree(Q) == 1 *in the original quotient*. Contracting such edges
    // never creates cycles even transitively: each contraction removes a
    // bridge whose endpoints have no alternative ordering path (any other
    // P ~> Q path would give Q a second predecessor).
    for p in 0..np as u32 {
        let node = TaskId(p);
        if qg.out_degree(node) != 1 {
            continue;
        }
        let succ = qg.successors(node)[0];
        if qg.in_degree(TaskId(succ)) != 1 {
            continue;
        }
        let (rp, rq) = (find(&mut parent, p), find(&mut parent, succ));
        if rp == rq {
            continue;
        }
        if size[rp as usize] + size[rq as usize] > ps {
            continue;
        }
        parent[rq as usize] = rp;
        size[rp as usize] += size[rq as usize];
    }

    let assignment: Vec<u32> = partition
        .assignment()
        .iter()
        .map(|&pid| find(&mut parent, pid))
        .collect();
    Partition::new(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Partitioner, SeqGPasta};
    use gpasta_circuits::dag;
    use gpasta_tdg::validate;

    #[test]
    fn merges_singleton_chain() {
        // Chain of 6 tasks pre-partitioned into singletons: refinement with
        // a bound of 3 fuses them into ceil(6/3) = 2 partitions.
        let tdg = dag::chain(6);
        let singles = Partition::singletons(6);
        let refined = merge_chains(&tdg, &singles, &PartitionerOptions::with_max_size(3));
        validate::check_all(&tdg, &refined).expect("refined partition is valid");
        validate::check_size_bound(&refined, 3).expect("bound respected");
        assert!(
            refined.num_partitions() <= 3,
            "got {}",
            refined.num_partitions()
        );
        assert!(refined.num_partitions() < 6);
    }

    #[test]
    fn leaves_diamonds_alone() {
        // Diamond quotient: no chain edges, nothing merges.
        let mut b = gpasta_tdg::TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        let tdg = b.build().expect("diamond");
        let singles = Partition::singletons(4);
        let refined = merge_chains(&tdg, &singles, &PartitionerOptions::default());
        // 0 -> {1,2}: out-degree 2; {1,2} -> 3: in-degree 2. Nothing fuses.
        assert_eq!(refined.num_partitions(), 4);
    }

    #[test]
    fn respects_the_size_bound() {
        let tdg = dag::chain(10);
        let refined = merge_chains(
            &tdg,
            &Partition::singletons(10),
            &PartitionerOptions::with_max_size(4),
        );
        validate::check_size_bound(&refined, 4).expect("bound respected");
        validate::check_all(&tdg, &refined).expect("valid");
    }

    #[test]
    fn improves_or_preserves_every_partitioner_output() {
        for seed in 0..5u64 {
            let tdg = dag::random_dag(300, 1.4, seed);
            let opts = PartitionerOptions::with_max_size(12);
            let base = SeqGPasta::new()
                .partition(&tdg, &opts)
                .expect("valid options");
            let refined = merge_chains(&tdg, &base, &opts);
            validate::check_all(&tdg, &refined).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            validate::check_size_bound(&refined, 12).expect("bound respected");
            assert!(
                refined.num_partitions() <= base.num_partitions(),
                "seed {seed}: refinement must never add partitions"
            );
        }
    }

    #[test]
    fn idempotent_on_already_merged_chains() {
        let tdg = dag::chain(9);
        let opts = PartitionerOptions::with_max_size(3);
        let once = merge_chains(&tdg, &Partition::singletons(9), &opts);
        let twice = merge_chains(&tdg, &once, &opts);
        assert_eq!(once.num_partitions(), twice.num_partitions());
    }

    #[test]
    fn empty_graph() {
        let tdg = gpasta_tdg::TdgBuilder::new(0).build().expect("empty");
        let refined = merge_chains(
            &tdg,
            &Partition::new(vec![]),
            &PartitionerOptions::default(),
        );
        assert_eq!(refined.num_partitions(), 0);
    }
}
