//! deter-G-PASTA (Algorithm 2): the deterministic GPU kernel.

use crate::{check_opts, PartitionError, Partitioner, PartitionerOptions};
use gpasta_gpu::{prims, Device};
use gpasta_tdg::{Partition, TaskId, Tdg};

/// The deterministic variant of G-PASTA.
///
/// Algorithm 1's step 1 races: when a partition has room for `k` more
/// tasks and `k + m` tasks desire it, *which* `k` win is decided by thread
/// interleaving (Figure 6). Algorithm 2 removes the race in four
/// deterministic steps per BFS level:
///
/// 1. sort the level's tasks by the 64-bit key `d_pid << 32 | task_id`, so
///    tasks contending for a partition are grouped and ordered;
/// 2. locate each partition's first task with `reduce_by_key` +
///    `exclusive_scan` (`fir_tid_arr`);
/// 3. mark tasks beyond the partition's remaining capacity as overflowing
///    (`is_full`), and prefix-sum the marks (`num_full_arr`);
/// 4. commit: in-capacity tasks take their desired id, overflowing tasks
///    take `max_pid + num_full_arr[gid]` — fresh ids assigned by sorted
///    position rather than by a racy counter.
///
/// The step-2 successor update is unchanged (`atomicMax` is
/// order-insensitive in its final value), and the next level is re-sorted,
/// so the complete partition assignment is identical for every worker
/// count and every run — the property the test suite checks.
#[derive(Debug)]
pub struct DeterGPasta {
    device: Device,
}

impl DeterGPasta {
    /// deter-G-PASTA on a device sized to the host's parallelism.
    pub fn new() -> Self {
        DeterGPasta {
            device: Device::host_parallel(),
        }
    }

    /// deter-G-PASTA on a specific device.
    pub fn with_device(device: Device) -> Self {
        DeterGPasta { device }
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl Default for DeterGPasta {
    fn default() -> Self {
        DeterGPasta::new()
    }
}

impl Partitioner for DeterGPasta {
    fn name(&self) -> &'static str {
        "deter-G-PASTA"
    }

    fn partition(&self, tdg: &Tdg, opts: &PartitionerOptions) -> Result<Partition, PartitionError> {
        check_opts(opts)?;
        let n = tdg.num_tasks();
        if n == 0 {
            return Ok(Partition::new(Vec::new()));
        }
        let ps = opts.resolve_ps(tdg) as u32;
        let dev = &self.device;
        // CSR id space: every sorted batch is one BFS level, and within a
        // level CSR id order equals original id order, so the packed sort
        // key `d_pid << 32 | id` ranks tasks identically in either space —
        // the deterministic output is bit-identical to
        // [`partition_reference`](DeterGPasta::partition_reference) for
        // every worker count.
        let csr = tdg.csr();

        let num_sources = csr.num_sources() as u32;

        // Same init policy as GPasta: `d_pid`/`pid_cnt` rely on their
        // zeros (atomicMax / occupancy counts); `f_pid`/`handle` are uninit
        // so a sanitized run's initcheck proves full wavefront coverage.
        let d_pid = dev.buf_zeroed("deter.d_pid", n);
        let f_pid = dev.buf_uninit("deter.f_pid", n);
        let mut indeg = Vec::with_capacity(n);
        csr.fill_in_degrees(&mut indeg);
        let dep_cnt = dev.buf_from_slice("deter.dep_cnt", &indeg);
        let pid_cnt = dev.buf_zeroed("deter.pid_cnt", n + num_sources as usize + 1);
        let handle = dev.buf_uninit("deter.handle", n);
        let wsize = dev.buf_zeroed("deter.wsize", 1);
        let mut max_pid = num_sources.saturating_sub(1);

        for i in 0..num_sources {
            handle.store(i as usize, i);
            d_pid.store(i as usize, i);
        }

        let mut roffset = 0u32;
        let mut rsize = num_sources;
        while rsize > 0 {
            let m = rsize as usize;
            wsize.store(0, 0);

            // Step 1: sort the handle slice and the desired-id array by the
            // packed 64-bit key (Algorithm 2 lines 1–6).
            let mut keys: Vec<u64> = (0..m)
                .map(|i| {
                    let t = handle.load(roffset as usize + i);
                    (u64::from(d_pid.load(t as usize)) << 32) | u64::from(t)
                })
                .collect();
            prims::sort_u64(dev, &mut keys);
            let tasks_sorted: Vec<u32> = keys.iter().map(|&k| (k & 0xffff_ffff) as u32).collect();
            let dpid_sorted: Vec<u32> = keys.iter().map(|&k| (k >> 32) as u32).collect();

            // Step 2: identify the first task of each desired partition
            // (lines 7–10): segment sizes via reduce_by_key over ones, then
            // exclusive scan for the segment starts.
            let ones = vec![1u32; m];
            let (_uniq, sizes) = prims::reduce_by_key(dev, &dpid_sorted, &ones);
            let fir_tid_arr = prims::exclusive_scan(dev, &sizes);

            // Step 3: determine if each task's desired partition is full
            // (lines 11–20).
            let is_full = dev.buf_uninit("deter.is_full", m);
            {
                let (is_full, pid_cnt) = (&is_full, &pid_cnt);
                let (fir_tid_arr, dpid_sorted) = (&fir_tid_arr, &dpid_sorted);
                dev.launch(m as u32, move |gid| {
                    let seg = prims::try_segment_of(fir_tid_arr, gid)
                        .expect("deter.is_full: gid precedes the first segment start");
                    let used = pid_cnt.load(dpid_sorted[gid as usize] as usize);
                    let num_left = ps.saturating_sub(used);
                    let full = u32::from(gid >= fir_tid_arr[seg] + num_left);
                    is_full.store(gid as usize, full);
                });
            }
            let num_full_arr = prims::inclusive_scan(dev, &is_full.to_vec());
            let new_partitions = *num_full_arr.last().expect("level is non-empty");

            // Step 4: assign deterministic results (lines 21–29).
            {
                let (f_pid, pid_cnt, is_full) = (&f_pid, &pid_cnt, &is_full);
                let (tasks_sorted, dpid_sorted, num_full_arr) =
                    (&tasks_sorted, &dpid_sorted, &num_full_arr);
                dev.launch(m as u32, move |gid| {
                    let g = gid as usize;
                    let fp = if is_full.load(g) == 1 {
                        max_pid + num_full_arr[g]
                    } else {
                        dpid_sorted[g]
                    };
                    f_pid.store(tasks_sorted[g] as usize, fp);
                    pid_cnt.fetch_add(fp as usize, 1);
                });
            }
            max_pid += new_partitions;

            // Successor update and dependency release — identical to
            // Algorithm 1 step 2; atomicMax commutes, and the next level is
            // re-sorted, so determinism is preserved.
            {
                let (handle, d_pid, f_pid, dep_cnt, wsize) =
                    (&handle, &d_pid, &f_pid, &dep_cnt, &wsize);
                let tasks_sorted = &tasks_sorted;
                dev.launch(rsize, move |gid| {
                    let cur = tasks_sorted[gid as usize];
                    let fp = f_pid.load(cur as usize);
                    for &nb in csr.successors(cur) {
                        d_pid.fetch_max(nb as usize, fp);
                        if dep_cnt.fetch_sub(nb as usize, 1) == 1 {
                            let woffset = wsize.fetch_add(0, 1);
                            handle.store((roffset + rsize + woffset) as usize, nb);
                        }
                    }
                });
            }

            roffset += rsize;
            rsize = wsize.load(0);
        }

        Ok(Partition::new(csr.scatter_to_original(&f_pid.to_vec())))
    }
}

impl DeterGPasta {
    /// The legacy per-`TaskId` path, kept verbatim as the reference for the
    /// differential layout test (`tests/csr_layout.rs`): the CSR hot path
    /// is deterministic and must reproduce this output bit for bit.
    #[doc(hidden)]
    pub fn partition_reference(
        &self,
        tdg: &Tdg,
        opts: &PartitionerOptions,
    ) -> Result<Partition, PartitionError> {
        check_opts(opts)?;
        let n = tdg.num_tasks();
        if n == 0 {
            return Ok(Partition::new(Vec::new()));
        }
        let ps = opts.resolve_ps(tdg) as u32;
        let dev = &self.device;

        let sources = tdg.sources();
        let num_sources = sources.len() as u32;

        let d_pid = dev.buf_zeroed("deter.d_pid", n);
        let f_pid = dev.buf_uninit("deter.f_pid", n);
        let dep_cnt = dev.buf_from_slice("deter.dep_cnt", &tdg.in_degrees());
        let pid_cnt = dev.buf_zeroed("deter.pid_cnt", n + sources.len() + 1);
        let handle = dev.buf_uninit("deter.handle", n);
        let wsize = dev.buf_zeroed("deter.wsize", 1);
        let mut max_pid = num_sources.saturating_sub(1);

        for (i, s) in sources.iter().enumerate() {
            handle.store(i, s.0);
            d_pid.store(s.index(), i as u32);
        }

        let mut roffset = 0u32;
        let mut rsize = num_sources;
        while rsize > 0 {
            let m = rsize as usize;
            wsize.store(0, 0);

            let mut keys: Vec<u64> = (0..m)
                .map(|i| {
                    let t = handle.load(roffset as usize + i);
                    (u64::from(d_pid.load(t as usize)) << 32) | u64::from(t)
                })
                .collect();
            prims::sort_u64(dev, &mut keys);
            let tasks_sorted: Vec<u32> = keys.iter().map(|&k| (k & 0xffff_ffff) as u32).collect();
            let dpid_sorted: Vec<u32> = keys.iter().map(|&k| (k >> 32) as u32).collect();

            let ones = vec![1u32; m];
            let (_uniq, sizes) = prims::reduce_by_key(dev, &dpid_sorted, &ones);
            let fir_tid_arr = prims::exclusive_scan(dev, &sizes);

            let is_full = dev.buf_uninit("deter.is_full", m);
            {
                let (is_full, pid_cnt) = (&is_full, &pid_cnt);
                let (fir_tid_arr, dpid_sorted) = (&fir_tid_arr, &dpid_sorted);
                dev.launch(m as u32, move |gid| {
                    let seg = prims::try_segment_of(fir_tid_arr, gid)
                        .expect("deter.is_full: gid precedes the first segment start");
                    let used = pid_cnt.load(dpid_sorted[gid as usize] as usize);
                    let num_left = ps.saturating_sub(used);
                    let full = u32::from(gid >= fir_tid_arr[seg] + num_left);
                    is_full.store(gid as usize, full);
                });
            }
            let num_full_arr = prims::inclusive_scan(dev, &is_full.to_vec());
            let new_partitions = *num_full_arr.last().expect("level is non-empty");

            {
                let (f_pid, pid_cnt, is_full) = (&f_pid, &pid_cnt, &is_full);
                let (tasks_sorted, dpid_sorted, num_full_arr) =
                    (&tasks_sorted, &dpid_sorted, &num_full_arr);
                dev.launch(m as u32, move |gid| {
                    let g = gid as usize;
                    let fp = if is_full.load(g) == 1 {
                        max_pid + num_full_arr[g]
                    } else {
                        dpid_sorted[g]
                    };
                    f_pid.store(tasks_sorted[g] as usize, fp);
                    pid_cnt.fetch_add(fp as usize, 1);
                });
            }
            max_pid += new_partitions;

            {
                let (handle, d_pid, f_pid, dep_cnt, wsize) =
                    (&handle, &d_pid, &f_pid, &dep_cnt, &wsize);
                let tasks_sorted = &tasks_sorted;
                dev.launch(rsize, move |gid| {
                    let cur = tasks_sorted[gid as usize];
                    let fp = f_pid.load(cur as usize);
                    for &nb in tdg.successors(TaskId(cur)) {
                        d_pid.fetch_max(nb as usize, fp);
                        if dep_cnt.fetch_sub(nb as usize, 1) == 1 {
                            let woffset = wsize.fetch_add(0, 1);
                            handle.store((roffset + rsize + woffset) as usize, nb);
                        }
                    }
                });
            }

            roffset += rsize;
            rsize = wsize.load(0);
        }

        Ok(Partition::new(f_pid.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_circuits::dag;
    use gpasta_tdg::validate;

    #[test]
    fn identical_across_worker_counts_and_runs() {
        let tdg = dag::layered(64, 12, 2, 5);
        let reference = DeterGPasta::with_device(Device::single())
            .partition(&tdg, &PartitionerOptions::with_max_size(4))
            .expect("valid options");
        for workers in [1usize, 2, 4, 8] {
            for _run in 0..3 {
                let p = DeterGPasta::with_device(Device::new(workers))
                    .partition(&tdg, &PartitionerOptions::with_max_size(4))
                    .expect("valid options");
                assert_eq!(p, reference, "workers={workers} diverged");
            }
        }
    }

    #[test]
    fn valid_on_random_dags() {
        let deter = DeterGPasta::with_device(Device::new(2));
        for seed in 0..6u64 {
            let tdg = dag::random_dag(350, 1.6, seed);
            let p = deter
                .partition(&tdg, &PartitionerOptions::default())
                .expect("valid options");
            validate::check_all(&tdg, &p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn respects_ps() {
        let tdg = dag::layered(16, 10, 2, 2);
        for ps in [1usize, 2, 6] {
            let p = DeterGPasta::with_device(Device::single())
                .partition(&tdg, &PartitionerOptions::with_max_size(ps))
                .expect("valid options");
            validate::check_size_bound(&p, ps).expect("size bound");
            validate::check_all(&tdg, &p).expect("valid");
        }
    }

    #[test]
    fn overflow_assigns_fresh_ids_in_sorted_task_order() {
        // Figure 6 shape: four sources feed… simpler: 6 independent tasks
        // whose d_pids collide pairwise is impossible without edges, so use
        // a two-level fan: one source, five children, Ps = 2. The source's
        // partition takes 1 child (it already holds the source); the
        // remaining children must get fresh, deterministic ids ordered by
        // task id.
        let mut b = gpasta_tdg::TdgBuilder::new(6);
        for c in 1..6u32 {
            b.add_edge(TaskId(0), TaskId(c));
        }
        let tdg = b.build().expect("fan DAG");
        let p = DeterGPasta::with_device(Device::new(4))
            .partition(&tdg, &PartitionerOptions::with_max_size(2))
            .expect("valid options");
        validate::check_all(&tdg, &p).expect("valid");
        let a = p.assignment();
        // Task 1 (smallest id) wins the source's partition.
        assert_eq!(a[1], a[0]);
        // Tasks 2..5 get distinct fresh partitions in ascending order.
        assert!(a[2] < a[3] && a[3] < a[4] && a[4] < a[5]);
        assert_eq!(p.num_partitions(), 5);
    }

    #[test]
    fn matches_gpasta_partition_quality() {
        // Determinism must not cost clustering quality: partition counts
        // stay within a small factor of the racy kernel's.
        let tdg = dag::layered(32, 16, 2, 11);
        let racy = crate::GPasta::with_device(Device::single())
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        let deter = DeterGPasta::with_device(Device::single())
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        let (a, b) = (racy.num_partitions() as f64, deter.num_partitions() as f64);
        assert!(b <= 2.0 * a + 4.0, "deter {b} vs racy {a}");
    }

    #[test]
    fn empty_graph() {
        let tdg = gpasta_tdg::TdgBuilder::new(0).build().expect("empty");
        let p = DeterGPasta::new()
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        assert_eq!(p.num_tasks(), 0);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(DeterGPasta::new().name(), "deter-G-PASTA");
    }

    #[test]
    fn csr_path_matches_reference_for_any_worker_count() {
        for seed in 0..5u64 {
            let tdg = dag::random_dag(300, 1.5, seed);
            for opts in [
                PartitionerOptions::default(),
                PartitionerOptions::with_max_size(4),
            ] {
                let reference = DeterGPasta::with_device(Device::single())
                    .partition_reference(&tdg, &opts)
                    .expect("legacy path");
                for workers in [1usize, 4] {
                    let fast = DeterGPasta::with_device(Device::new(workers))
                        .partition(&tdg, &opts)
                        .expect("csr path");
                    assert_eq!(fast, reference, "seed {seed} workers {workers}");
                }
            }
        }
    }
}
