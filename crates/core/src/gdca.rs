//! GDCA baseline: level-by-level greedy DAG clustering
//! [Bramas & Ketterlin, PeerJ CS 2020].

use crate::{check_opts, PartitionError, Partitioner, PartitionerOptions};
use gpasta_tdg::{Partition, TaskId, Tdg};

/// The General DAG Clustering Algorithm, the paper's CPU baseline.
///
/// GDCA removes Sarkar-style cycle checking by clustering strictly *within*
/// BFS levels: it levelises the TDG, sorts each level's tasks by the
/// cluster affinity of their predecessors (tasks whose parents share a
/// cluster are packed together to reduce cross-cluster edges), and fills
/// fixed-size clusters greedily. Same-level tasks are incomparable, so the
/// result is trivially convex and acyclic — but clustering tasks that could
/// have run *in parallel* serialises them, which is exactly the parallelism
/// loss G-PASTA's adjacent-level rule avoids (Figure 3).
///
/// Practical notes faithful to the original:
/// * the partition size is a hard target — GDCA wants *equal-size*
///   clusters, so quality depends on tuning `Ps` (Figure 8's V-shape);
/// * the per-level affinity sort plus predecessor scans make its
///   single-threaded runtime several times that of seq-G-PASTA's two
///   constant-time operations per task (Table 1).
#[derive(Debug, Clone, Default)]
pub struct Gdca;

impl Gdca {
    /// Create the GDCA baseline.
    pub fn new() -> Self {
        Gdca
    }
}

impl Partitioner for Gdca {
    fn name(&self) -> &'static str {
        "GDCA"
    }

    fn partition(&self, tdg: &Tdg, opts: &PartitionerOptions) -> Result<Partition, PartitionError> {
        check_opts(opts)?;
        let n = tdg.num_tasks();
        if n == 0 {
            return Ok(Partition::new(Vec::new()));
        }
        let ps = opts.resolve_ps(tdg);

        // CSR space: each level is one contiguous id range (no `tasks_at`
        // gather), the levelisation itself is cached on the graph (the
        // fig8 Ps sweep re-partitions the same TDG dozens of times), and
        // within a level CSR id order equals original id order, so the
        // affinity sort key `best << 32 | id` ranks tasks identically —
        // output bit-identical to
        // [`partition_reference`](Gdca::partition_reference).
        let csr = tdg.csr();
        let mut assignment = vec![0u32; n];
        let mut next_cluster = 0u32;

        // Affinity key per task: the smallest cluster id among its
        // predecessors (tasks sharing parents end up adjacent after the
        // sort and get packed into the same cluster).
        let mut affinity: Vec<u64> = vec![u64::MAX; n];

        let mut order: Vec<u32> = Vec::new();
        for l in 0..csr.depth() {
            let range = csr.level_range(l);
            order.clear();
            order.extend(range.start as u32..range.end as u32);

            // Compute affinities (scan predecessors — this is the bulk of
            // GDCA's per-node cost).
            for &t in order.iter() {
                let mut best = u64::MAX;
                for &p in csr.predecessors(t) {
                    let c = u64::from(assignment[p as usize]);
                    if c < best {
                        best = c;
                    }
                }
                affinity[t as usize] = (best << 32) | u64::from(t);
            }
            order.sort_unstable_by_key(|&t| affinity[t as usize]);

            // Greedy fixed-size fill.
            let mut in_cluster = 0usize;
            let mut started = false;
            for &t in order.iter() {
                if !started || in_cluster == ps {
                    if started {
                        next_cluster += 1;
                    }
                    started = true;
                    in_cluster = 0;
                }
                assignment[t as usize] = next_cluster;
                in_cluster += 1;
            }
            // Clusters never span levels.
            next_cluster += 1;
        }

        Ok(Partition::new(csr.scatter_to_original(&assignment)))
    }
}

impl Gdca {
    /// The legacy per-`TaskId` path, kept verbatim as the reference for the
    /// differential layout test (`tests/csr_layout.rs`): the CSR hot path
    /// must reproduce its output bit for bit.
    #[doc(hidden)]
    pub fn partition_reference(
        &self,
        tdg: &Tdg,
        opts: &PartitionerOptions,
    ) -> Result<Partition, PartitionError> {
        check_opts(opts)?;
        let n = tdg.num_tasks();
        if n == 0 {
            return Ok(Partition::new(Vec::new()));
        }
        let ps = opts.resolve_ps(tdg);

        let levels = tdg.levels();
        let mut assignment = vec![0u32; n];
        let mut next_cluster = 0u32;
        let mut affinity: Vec<u64> = vec![u64::MAX; n];

        let mut order: Vec<u32> = Vec::new();
        for l in 0..levels.depth() {
            order.clear();
            order.extend_from_slice(levels.tasks_at(l));

            for &t in order.iter() {
                let mut best = u64::MAX;
                for &p in tdg.predecessors(TaskId(t)) {
                    let c = u64::from(assignment[p as usize]);
                    if c < best {
                        best = c;
                    }
                }
                affinity[t as usize] = (best << 32) | u64::from(t);
            }
            order.sort_unstable_by_key(|&t| affinity[t as usize]);

            let mut in_cluster = 0usize;
            let mut started = false;
            for &t in order.iter() {
                if !started || in_cluster == ps {
                    if started {
                        next_cluster += 1;
                    }
                    started = true;
                    in_cluster = 0;
                }
                assignment[t as usize] = next_cluster;
                in_cluster += 1;
            }
            next_cluster += 1;
        }

        Ok(Partition::new(assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_circuits::dag;
    use gpasta_tdg::{validate, ParallelismProfile, QuotientTdg, TdgBuilder};

    #[test]
    fn valid_on_random_dags() {
        let gdca = Gdca::new();
        for seed in 0..8u64 {
            let tdg = dag::random_dag(400, 1.6, seed);
            for ps in [2usize, 8, 64] {
                let p = gdca
                    .partition(&tdg, &PartitionerOptions::with_max_size(ps))
                    .expect("valid options");
                validate::check_all(&tdg, &p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                validate::check_size_bound(&p, ps).expect("size bound");
            }
        }
    }

    #[test]
    fn clusters_within_levels_only() {
        let tdg = dag::layered(12, 6, 2, 3);
        let levels = tdg.levels();
        let p = Gdca::new()
            .partition(&tdg, &PartitionerOptions::with_max_size(4))
            .expect("valid options");
        for members in p.members() {
            let l0 = levels.level_of(TaskId(members[0]));
            for &m in &members {
                assert_eq!(levels.level_of(TaskId(m)), l0, "cluster spans levels");
            }
        }
    }

    #[test]
    fn figure3a_serialisation_effect() {
        // A wide, shallow DAG: GDCA with a large Ps merges same-level
        // parallel tasks into one cluster, collapsing parallelism, while
        // G-PASTA keeps one partition per chain.
        let width = 16;
        let tdg = dag::layered(width, 4, 1, 1);
        let gdca = Gdca::new()
            .partition(&tdg, &PartitionerOptions::with_max_size(width))
            .expect("valid options");
        let gp = crate::GPasta::with_device(gpasta_gpu::Device::single())
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        let q_gdca = QuotientTdg::build(&tdg, &gdca).expect("valid");
        let q_gp = QuotientTdg::build(&tdg, &gp).expect("valid");
        let par_gdca = ParallelismProfile::of(q_gdca.graph()).avg_parallelism;
        let par_gp = ParallelismProfile::of(q_gp.graph()).avg_parallelism;
        assert!(
            par_gp > par_gdca,
            "G-PASTA must keep more parallelism: {par_gp:.2} vs {par_gdca:.2}"
        );
    }

    #[test]
    fn ps_one_is_singletons() {
        let tdg = dag::chain(6);
        let p = Gdca::new()
            .partition(&tdg, &PartitionerOptions::with_max_size(1))
            .expect("valid options");
        assert_eq!(p.num_partitions(), 6);
    }

    #[test]
    fn empty_graph_and_zero_ps() {
        let empty = TdgBuilder::new(0).build().expect("empty");
        assert_eq!(
            Gdca::new()
                .partition(&empty, &PartitionerOptions::default())
                .expect("valid options")
                .num_partitions(),
            0
        );
        let tdg = dag::chain(2);
        assert_eq!(
            Gdca::new().partition(&tdg, &PartitionerOptions::with_max_size(0)),
            Err(PartitionError::ZeroPartitionSize)
        );
    }

    #[test]
    fn deterministic() {
        let tdg = dag::random_dag(300, 1.4, 7);
        let opts = PartitionerOptions::with_max_size(8);
        assert_eq!(
            Gdca::new().partition(&tdg, &opts).expect("valid"),
            Gdca::new().partition(&tdg, &opts).expect("valid")
        );
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(Gdca::new().name(), "GDCA");
    }

    #[test]
    fn csr_path_matches_reference_bit_for_bit() {
        for seed in 0..8u64 {
            let tdg = dag::random_dag(400, 1.6, seed);
            for opts in [
                PartitionerOptions::default(),
                PartitionerOptions::with_max_size(2),
                PartitionerOptions::with_max_size(15),
            ] {
                let fast = Gdca::new().partition(&tdg, &opts).expect("csr path");
                let reference = Gdca::new()
                    .partition_reference(&tdg, &opts)
                    .expect("legacy path");
                assert_eq!(fast, reference, "seed {seed} opts {opts:?}");
            }
        }
    }
}
