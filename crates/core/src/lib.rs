//! G-PASTA core: parallelism-aware, cycle-free TDG partitioners.
//!
//! This crate implements the paper's contribution and its baselines behind
//! one [`Partitioner`] trait:
//!
//! * [`GPasta`] — Algorithm 1: the parallelism-aware partitioning kernel on
//!   the simulated GPU device. Clusters tasks *between adjacent BFS levels*
//!   by propagating a desired partition id (`d_pid`) from parent to child
//!   and committing it into a final partition id (`f_pid`) while the
//!   partition has room. The cycle-free clustering rule (§3.2) is one
//!   `atomicMax`: a task joins the parent partition with the **largest**
//!   id, which keeps every partition convex and the quotient acyclic
//!   (Theorem 1) and guarantees a lower bound on the number of partitions —
//!   so `Ps` needs no tuning (the default resolves to the converged
//!   granularity; see [`PartitionerOptions`]).
//! * [`DeterGPasta`] — Algorithm 2: the deterministic kernel. Replaces the
//!   racy first-come-first-served partition filling with
//!   sort-by-key → reduce-by-key → scan → binary-search, so the result is
//!   identical for any worker count and any run.
//! * [`SeqGPasta`] — the single-threaded CPU variant (same clustering
//!   rule, no device).
//! * [`Gdca`] — the state-of-the-art CPU baseline [Bramas & Ketterlin
//!   2020]: BFS levelisation plus *within-level* greedy clustering, which
//!   is cycle-free by construction but erodes TDG parallelism (Figure 3(a)).
//! * [`Sarkar`] — the classic macro-dataflow partitioner [Sarkar &
//!   Hennessy 1986]: iterative edge-zeroing with explicit cycle checking —
//!   quadratic, included for the Figure 1(b) growth curve.
//!
//! Every partitioner returns a [`Partition`] whose quotient is acyclic;
//! the property-based test suite validates convexity and acyclicity for
//! all of them on random DAGs.
//!
//! # Example
//!
//! ```
//! use gpasta_core::{GPasta, Gdca, Partitioner, PartitionerOptions};
//! use gpasta_tdg::{validate, TdgBuilder, TaskId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = TdgBuilder::new(6);
//! for (u, v) in [(0, 2), (1, 2), (2, 3), (2, 4), (3, 5), (4, 5)] {
//!     b.add_edge(TaskId(u), TaskId(v));
//! }
//! let tdg = b.build()?;
//!
//! // G-PASTA needs no tuned partition size: the default is the TDG size.
//! let p = GPasta::new().partition(&tdg, &PartitionerOptions::default())?;
//! validate::check_all(&tdg, &p)?;
//!
//! // GDCA requires an explicit size.
//! let opts = PartitionerOptions::with_max_size(3);
//! let p = Gdca::new().partition(&tdg, &opts)?;
//! validate::check_all(&tdg, &p)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deter;
mod gdca;
mod gpasta;
pub mod incremental;
pub mod refine;
pub mod sanitize;
mod sarkar;
mod seq;

pub use deter::DeterGPasta;
pub use gdca::Gdca;
pub use gpasta::GPasta;
pub use incremental::{
    forward_closure, CacheExport, IncrementalError, IncrementalPartitioner, RepairStats,
};
pub use refine::merge_chains;
pub use sarkar::Sarkar;
pub use seq::SeqGPasta;

use gpasta_tdg::{Partition, Tdg};
use std::error::Error;
use std::fmt;

/// Options shared by every partitioner.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionerOptions {
    /// Maximum number of tasks per partition (the paper's `Ps`).
    ///
    /// `None` selects the *auto* granularity `⌈tasks / sources⌉`: the
    /// cycle-free clustering rule bounds the partition count from below by
    /// the source count (§3.2), so this is the per-partition size the
    /// algorithm converges to — e.g. the paper observes leon2 saturating
    /// around 15 tasks per partition, which is its TDG-size-to-source
    /// ratio. (The paper phrases the default as "use the TDG size"; on
    /// paper-scale designs the two behave alike because one source's cone
    /// is negligible against `work / threads`, but on scaled-down graphs a
    /// literal `Ps = |V|` lets the largest-id source serialise its whole
    /// forward cone, so this library uses the converged size directly.)
    /// GDCA's quality depends on tuning this value (Figure 8).
    pub max_partition_size: Option<usize>,
}

impl PartitionerOptions {
    /// Options with an explicit maximum partition size.
    ///
    /// # Example
    ///
    /// ```
    /// use gpasta_core::PartitionerOptions;
    /// let opts = PartitionerOptions::with_max_size(16);
    /// assert_eq!(opts.max_partition_size, Some(16));
    /// ```
    pub fn with_max_size(ps: usize) -> Self {
        PartitionerOptions {
            max_partition_size: Some(ps),
        }
    }

    /// The cap on the auto partition size. Figure 8 shows TDG runtime
    /// saturating by partition size ~15–60 on every circuit; capping the
    /// auto granularity there protects source-poor TDGs (e.g. the
    /// single-source cone graphs of incremental updates) from degenerating
    /// into one serial mega-partition.
    pub const AUTO_PS_CAP: usize = 32;

    /// Resolve `Ps` against a TDG: the explicit value, or the auto
    /// granularity `min(⌈tasks / sources⌉, AUTO_PS_CAP)` (at least 1).
    pub fn resolve_ps(&self, tdg: &Tdg) -> usize {
        self.max_partition_size.unwrap_or_else(|| {
            let n = tdg.num_tasks().max(1);
            let sources = tdg.sources().len().max(1);
            n.div_ceil(sources).min(Self::AUTO_PS_CAP)
        })
    }
}

/// Error returned by [`Partitioner::partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// `max_partition_size` was zero.
    ZeroPartitionSize,
    /// A [`CancelToken`](gpasta_tdg::CancelToken) fired during a
    /// cancellable partitioning run; no partition was produced.
    Cancelled,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ZeroPartitionSize => {
                f.write_str("maximum partition size must be at least 1")
            }
            PartitionError::Cancelled => f.write_str("partitioning was cancelled"),
        }
    }
}

impl Error for PartitionError {}

/// A TDG partitioner: clusters the tasks of a DAG into convex partitions
/// whose quotient graph is acyclic, trading per-task scheduling cost for
/// granularity.
pub trait Partitioner {
    /// Short display name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Partition `tdg` under `opts`.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::ZeroPartitionSize`] if
    /// `opts.max_partition_size == Some(0)`.
    fn partition(&self, tdg: &Tdg, opts: &PartitionerOptions) -> Result<Partition, PartitionError>;

    /// Cancellable variant of [`partition`](Partitioner::partition): checks
    /// `cancel` at least on entry and returns
    /// [`PartitionError::Cancelled`] if the observer has tripped.
    ///
    /// The default implementation polls once and delegates, which bounds
    /// cancellation latency by one full partitioning run; partitioners with
    /// natural internal boundaries (BFS levels, repair passes) override it
    /// to poll per boundary (see [`SeqGPasta`]).
    fn partition_cancellable(
        &self,
        tdg: &Tdg,
        opts: &PartitionerOptions,
        cancel: &gpasta_tdg::CancelObserver,
    ) -> Result<Partition, PartitionError> {
        if cancel.is_cancelled() {
            return Err(PartitionError::Cancelled);
        }
        self.partition(tdg, opts)
    }
}

impl<P: Partitioner + ?Sized> Partitioner for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn partition(&self, tdg: &Tdg, opts: &PartitionerOptions) -> Result<Partition, PartitionError> {
        (**self).partition(tdg, opts)
    }

    fn partition_cancellable(
        &self,
        tdg: &Tdg,
        opts: &PartitionerOptions,
        cancel: &gpasta_tdg::CancelObserver,
    ) -> Result<Partition, PartitionError> {
        (**self).partition_cancellable(tdg, opts, cancel)
    }
}

pub(crate) fn check_opts(opts: &PartitionerOptions) -> Result<(), PartitionError> {
    if opts.max_partition_size == Some(0) {
        return Err(PartitionError::ZeroPartitionSize);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_is_tasks_per_source() {
        // Edgeless: 7 tasks, 7 sources -> auto Ps = 1.
        let tdg = gpasta_tdg::TdgBuilder::new(7)
            .build()
            .expect("edgeless DAG");
        assert_eq!(PartitionerOptions::default().resolve_ps(&tdg), 1);
        assert_eq!(PartitionerOptions::with_max_size(3).resolve_ps(&tdg), 3);

        // The paper's Figure 4 graph: 7 tasks, 3 sources -> auto Ps = 3,
        // exactly the walkthrough's partition size.
        let mut b = gpasta_tdg::TdgBuilder::new(7);
        use gpasta_tdg::TaskId;
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(2), TaskId(3));
        b.add_edge(TaskId(4), TaskId(5));
        b.add_edge(TaskId(1), TaskId(6));
        b.add_edge(TaskId(3), TaskId(6));
        b.add_edge(TaskId(5), TaskId(6));
        let fig4 = b.build().expect("figure 4 graph");
        assert_eq!(PartitionerOptions::default().resolve_ps(&fig4), 3);
    }

    #[test]
    fn zero_ps_is_rejected() {
        let opts = PartitionerOptions::with_max_size(0);
        assert_eq!(check_opts(&opts), Err(PartitionError::ZeroPartitionSize));
        assert!(PartitionError::ZeroPartitionSize
            .to_string()
            .contains("at least 1"));
    }

    #[test]
    fn empty_graph_resolves_ps_to_one() {
        let tdg = gpasta_tdg::TdgBuilder::new(0).build().expect("empty DAG");
        assert_eq!(PartitionerOptions::default().resolve_ps(&tdg), 1);
    }

    #[test]
    fn default_cancellable_partition_checks_on_entry() {
        use gpasta_tdg::CancelToken;
        let mut b = gpasta_tdg::TdgBuilder::new(3);
        b.add_edge(gpasta_tdg::TaskId(0), gpasta_tdg::TaskId(1));
        b.add_edge(gpasta_tdg::TaskId(1), gpasta_tdg::TaskId(2));
        let tdg = b.build().expect("chain DAG");
        let token = CancelToken::new();
        // Gdca does not override the default method, so this exercises the
        // trait-level entry check (and the Box forwarding impl).
        let algo: Box<dyn Partitioner> = Box::new(Gdca::new());
        let obs = token.observe();
        assert!(algo
            .partition_cancellable(&tdg, &PartitionerOptions::default(), &obs)
            .is_ok());
        token.cancel();
        assert_eq!(
            algo.partition_cancellable(&tdg, &PartitionerOptions::default(), &obs),
            Err(PartitionError::Cancelled)
        );
    }
}
