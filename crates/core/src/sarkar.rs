//! Sarkar baseline: edge-zeroing clustering with explicit cycle checking
//! [Sarkar & Hennessy, LFP 1986].

use crate::{check_opts, PartitionError, Partitioner, PartitionerOptions};
use gpasta_tdg::{Partition, Tdg};

/// The classic macro-dataflow partitioner the paper cites as "Vivek" \[10\].
///
/// Edges are visited in descending weight order (the heaviest producer →
/// consumer communication first); each edge's two clusters are merged if
/// the merge (a) keeps the combined size within `Ps` and (b) does not
/// create a cycle among clusters. The cycle check is a reachability query
/// on the current cluster graph, so the algorithm is quadratic in practice
/// — the growth the paper plots in Figure 1(b) and the reason GDCA (and
/// G-PASTA) abandon per-merge cycle checking.
#[derive(Debug, Clone, Default)]
pub struct Sarkar;

impl Sarkar {
    /// Create the Sarkar baseline.
    pub fn new() -> Self {
        Sarkar
    }
}

impl Partitioner for Sarkar {
    fn name(&self) -> &'static str {
        "Sarkar"
    }

    // Index loops below are deliberate: the DFS body needs `&mut parent`
    // (path-compressing find) while scanning `members[...]`, which an
    // iterator borrow would forbid.
    #[allow(clippy::needless_range_loop)]
    fn partition(&self, tdg: &Tdg, opts: &PartitionerOptions) -> Result<Partition, PartitionError> {
        check_opts(opts)?;
        let n = tdg.num_tasks();
        if n == 0 {
            return Ok(Partition::new(Vec::new()));
        }
        let ps = opts.resolve_ps(tdg);

        // Union-find over tasks = clusters, with explicit member lists so
        // the cycle check can seed its frontier without scanning all tasks.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        let mut size: Vec<u32> = vec![1; n];
        let mut members: Vec<Vec<u32>> = (0..n as u32).map(|t| vec![t]).collect();

        // Candidate edges, heaviest communication first (edge weight
        // modelled as the source task's cost — a produced datum costs what
        // it took to compute). Ties broken by id for determinism.
        let mut edges: Vec<(u32, u32)> = tdg.edges().map(|(u, v)| (u.0, v.0)).collect();
        edges.sort_by(|&(ua, va), &(ub, vb)| {
            let wa = tdg.weight(gpasta_tdg::TaskId(ua));
            let wb = tdg.weight(gpasta_tdg::TaskId(ub));
            wb.total_cmp(&wa).then_with(|| (ua, va).cmp(&(ub, vb)))
        });

        // Scratch space for the cycle check, reused across merges.
        let mut stamp = 0u32;
        let mut stamps = vec![0u32; n];

        for (u, v) in edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru == rv {
                continue;
            }
            if (size[ru as usize] + size[rv as usize]) as usize > ps {
                continue;
            }
            // Cycle check (the expensive, quadratic part): merging is
            // unsafe iff some path leaves the merged cluster and re-enters
            // it through at least one outside task.
            // The traversal must run over the *cluster* graph: contracting
            // another cluster C connects all of C's members, so task-level
            // reachability alone would miss quotient cycles.
            stamp += 1;
            let cyclic = {
                // Seed: clusters of the outside successors of every member.
                let mut stack: Vec<u32> = Vec::new();
                for seed_root in [ru, rv] {
                    for i in 0..members[seed_root as usize].len() {
                        let m = members[seed_root as usize][i];
                        for &s in tdg.successors(gpasta_tdg::TaskId(m)) {
                            let rs = find(&mut parent, s);
                            if rs != ru && rs != rv && stamps[rs as usize] != stamp {
                                stamps[rs as usize] = stamp;
                                stack.push(rs);
                            }
                        }
                    }
                }
                let mut found = false;
                'dfs: while let Some(c) = stack.pop() {
                    for i in 0..members[c as usize].len() {
                        let m = members[c as usize][i];
                        for &s in tdg.successors(gpasta_tdg::TaskId(m)) {
                            let rs = find(&mut parent, s);
                            if rs == ru || rs == rv {
                                found = true;
                                break 'dfs;
                            }
                            if stamps[rs as usize] != stamp {
                                stamps[rs as usize] = stamp;
                                stack.push(rs);
                            }
                        }
                    }
                }
                found
            };
            if cyclic {
                continue;
            }
            // Union by size, folding the smaller member list into the
            // larger.
            let (big, small) = if size[ru as usize] >= size[rv as usize] {
                (ru, rv)
            } else {
                (rv, ru)
            };
            parent[small as usize] = big;
            size[big as usize] += size[small as usize];
            let moved = std::mem::take(&mut members[small as usize]);
            members[big as usize].extend(moved);
        }

        let assignment: Vec<u32> = (0..n as u32).map(|t| find(&mut parent, t)).collect();
        Ok(Partition::new(assignment))
    }
}

fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_circuits::dag;
    use gpasta_tdg::{validate, TaskId, TdgBuilder};

    #[test]
    fn valid_on_random_dags() {
        let sarkar = Sarkar::new();
        for seed in 0..5u64 {
            let tdg = dag::random_dag(120, 1.5, seed);
            for ps in [2usize, 6, 120] {
                let p = sarkar
                    .partition(&tdg, &PartitionerOptions::with_max_size(ps))
                    .expect("valid options");
                validate::check_all(&tdg, &p)
                    .unwrap_or_else(|e| panic!("seed {seed} ps {ps}: {e}"));
                validate::check_size_bound(&p, ps).expect("size bound");
            }
        }
    }

    #[test]
    fn chain_merges_fully() {
        let tdg = dag::chain(12);
        let p = Sarkar::new()
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        assert_eq!(p.num_partitions(), 1);
    }

    #[test]
    fn diamond_cycle_check_blocks_bad_merge() {
        // Diamond 0 -> {1,2} -> 3 with Ps=2: merging {0,3} would be cyclic
        // through 1 or 2; Sarkar must refuse it.
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        let tdg = b.build().expect("diamond");
        let p = Sarkar::new()
            .partition(&tdg, &PartitionerOptions::with_max_size(2))
            .expect("valid options");
        validate::check_all(&tdg, &p).expect("valid");
        assert_ne!(
            p.assignment()[0],
            p.assignment()[3],
            "0 and 3 cannot share a cluster without 1 and 2"
        );
    }

    #[test]
    fn heavier_edges_merge_first() {
        // Two chains; one has much heavier tasks. With Ps=2 both chains'
        // heaviest edges merge; just verify validity and compression.
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(2), TaskId(3));
        b.set_weight(TaskId(0), 100.0);
        let tdg = b.build().expect("two chains");
        let p = Sarkar::new()
            .partition(&tdg, &PartitionerOptions::with_max_size(2))
            .expect("valid options");
        assert_eq!(p.num_partitions(), 2);
        assert_eq!(p.assignment()[0], p.assignment()[1]);
        assert_eq!(p.assignment()[2], p.assignment()[3]);
    }

    #[test]
    fn deterministic() {
        let tdg = dag::random_dag(100, 1.4, 2);
        let opts = PartitionerOptions::with_max_size(5);
        assert_eq!(
            Sarkar::new().partition(&tdg, &opts).expect("valid"),
            Sarkar::new().partition(&tdg, &opts).expect("valid")
        );
    }

    #[test]
    fn empty_graph_and_zero_ps() {
        let empty = TdgBuilder::new(0).build().expect("empty");
        assert_eq!(
            Sarkar::new()
                .partition(&empty, &PartitionerOptions::default())
                .expect("valid options")
                .num_partitions(),
            0
        );
        let tdg = dag::chain(2);
        assert_eq!(
            Sarkar::new().partition(&tdg, &PartitionerOptions::with_max_size(0)),
            Err(PartitionError::ZeroPartitionSize)
        );
    }

    #[test]
    fn name_matches_paper_citation() {
        assert_eq!(Sarkar::new().name(), "Sarkar");
    }
}
