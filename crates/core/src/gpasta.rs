//! G-PASTA (Algorithm 1): the parallelism-aware partitioning kernel on the
//! simulated GPU device.

use crate::{check_opts, PartitionError, Partitioner, PartitionerOptions};
use gpasta_gpu::Device;
use gpasta_tdg::{Partition, TaskId, Tdg};

/// The GPU-parallel G-PASTA partitioner.
///
/// Faithful to Algorithm 1 of the paper: a frontier (`handle`) of ready
/// tasks is processed one BFS wave per kernel launch. Step 1 commits each
/// task's desired partition id into its final partition id while the
/// partition has room (`atomicAdd(pid_cnt) < Ps`), opening a fresh
/// partition otherwise. Step 2 propagates the final id to successors with
/// `atomicMax` (the cycle-free clustering rule of §3.2) and releases their
/// dependencies, pushing newly-ready tasks into `handle`.
///
/// The result is *valid for any interleaving* (always convex and acyclic),
/// but which of several competing tasks joins a partition first is decided
/// by the race — use [`DeterGPasta`](crate::DeterGPasta) when reproducible
/// ids are required.
#[derive(Debug)]
pub struct GPasta {
    device: Device,
}

impl GPasta {
    /// G-PASTA on a device sized to the host's parallelism.
    pub fn new() -> Self {
        GPasta {
            device: Device::host_parallel(),
        }
    }

    /// G-PASTA on a specific device (worker count of your choosing).
    pub fn with_device(device: Device) -> Self {
        GPasta { device }
    }

    /// The simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl Default for GPasta {
    fn default() -> Self {
        GPasta::new()
    }
}

impl Partitioner for GPasta {
    fn name(&self) -> &'static str {
        "G-PASTA"
    }

    fn partition(&self, tdg: &Tdg, opts: &PartitionerOptions) -> Result<Partition, PartitionError> {
        check_opts(opts)?;
        let n = tdg.num_tasks();
        if n == 0 {
            return Ok(Partition::new(Vec::new()));
        }
        let ps = opts.resolve_ps(tdg) as u32;
        let dev = &self.device;
        // The kernels run in CSR id space: a BFS wave's tasks occupy one
        // contiguous id range, so the per-wave loads/stores of `d_pid` /
        // `f_pid` / `dep_cnt` coalesce instead of scattering across the
        // whole original id range. Sources are CSR ids 0..num_sources, and
        // the successor lists keep the original adjacency order, so on a
        // single-worker device the traversal matches
        // [`partition_reference`](GPasta::partition_reference) exactly.
        let csr = tdg.csr();

        let num_sources = csr.num_sources() as u32;

        // Device state. `pid_cnt` is sized for the worst case of every task
        // opening a fresh partition on top of the source ids. The named
        // helpers attach sanitizer shadows on a sanitized device and are
        // free on a plain one. `d_pid` and `pid_cnt` must be *zeroed*, not
        // uninit: the algorithm's atomicMax/atomicAdd read their initial
        // zeros. `f_pid` and `handle` are uninit so initcheck proves the
        // BFS wavefront writes every slot before any kernel reads it.
        let d_pid = dev.buf_zeroed("gpasta.d_pid", n);
        let f_pid = dev.buf_uninit("gpasta.f_pid", n);
        let mut indeg = Vec::with_capacity(n);
        csr.fill_in_degrees(&mut indeg);
        let dep_cnt = dev.buf_from_slice("gpasta.dep_cnt", &indeg);
        let pid_cnt = dev.buf_zeroed("gpasta.pid_cnt", n + num_sources as usize + 1);
        let max_pid = dev.buf_from_slice("gpasta.max_pid", &[num_sources.saturating_sub(1)]);
        let handle = dev.buf_uninit("gpasta.handle", n);
        let wsize = dev.buf_zeroed("gpasta.wsize", 1);

        // Seed: every source task starts its own desired partition
        // (Figure 4(a): tasks 0, 2, 4 get d_pid 0, 1, 2).
        for i in 0..num_sources {
            handle.store(i as usize, i);
            d_pid.store(i as usize, i);
        }

        let mut roffset = 0u32;
        let mut rsize = num_sources;
        while rsize > 0 {
            wsize.store(0, 0);

            // Step 1: assign f_pid for current-level tasks by d_pid
            // (Algorithm 1 lines 2–11).
            {
                let (handle, d_pid, f_pid, pid_cnt, max_pid) =
                    (&handle, &d_pid, &f_pid, &pid_cnt, &max_pid);
                dev.launch(rsize, move |gid| {
                    let cur = handle.load((roffset + gid) as usize) as usize;
                    let cur_pid = d_pid.load(cur);
                    if pid_cnt.fetch_add(cur_pid as usize, 1) < ps {
                        f_pid.store(cur, cur_pid);
                    } else {
                        let new_pid = max_pid.fetch_add(0, 1) + 1;
                        f_pid.store(cur, new_pid);
                        pid_cnt.fetch_add(new_pid as usize, 1);
                    }
                });
            }

            // Step 2: assign d_pid to successors and release dependencies
            // (Algorithm 1 lines 13–19). The atomicMax on line 16 is the
            // cycle-free clustering rule.
            {
                let (handle, d_pid, f_pid, dep_cnt, wsize) =
                    (&handle, &d_pid, &f_pid, &dep_cnt, &wsize);
                dev.launch(rsize, move |gid| {
                    let cur = handle.load((roffset + gid) as usize);
                    let fp = f_pid.load(cur as usize);
                    for &nb in csr.successors(cur) {
                        d_pid.fetch_max(nb as usize, fp);
                        if dep_cnt.fetch_sub(nb as usize, 1) == 1 {
                            let woffset = wsize.fetch_add(0, 1);
                            handle.store((roffset + rsize + woffset) as usize, nb);
                        }
                    }
                });
            }

            roffset += rsize;
            rsize = wsize.load(0);
        }
        debug_assert_eq!(roffset as usize, n, "BFS must reach every task of a DAG");

        Ok(Partition::new(csr.scatter_to_original(&f_pid.to_vec())))
    }
}

impl GPasta {
    /// The legacy per-`TaskId` path, kept verbatim as the reference for the
    /// differential layout test (`tests/csr_layout.rs`). On a single-worker
    /// device the CSR hot path must reproduce its output bit for bit; with
    /// more workers both are valid but racy.
    #[doc(hidden)]
    pub fn partition_reference(
        &self,
        tdg: &Tdg,
        opts: &PartitionerOptions,
    ) -> Result<Partition, PartitionError> {
        check_opts(opts)?;
        let n = tdg.num_tasks();
        if n == 0 {
            return Ok(Partition::new(Vec::new()));
        }
        let ps = opts.resolve_ps(tdg) as u32;
        let dev = &self.device;

        let sources = tdg.sources();
        let num_sources = sources.len() as u32;

        let d_pid = dev.buf_zeroed("gpasta.d_pid", n);
        let f_pid = dev.buf_uninit("gpasta.f_pid", n);
        let dep_cnt = dev.buf_from_slice("gpasta.dep_cnt", &tdg.in_degrees());
        let pid_cnt = dev.buf_zeroed("gpasta.pid_cnt", n + sources.len() + 1);
        let max_pid = dev.buf_from_slice("gpasta.max_pid", &[num_sources.saturating_sub(1)]);
        let handle = dev.buf_uninit("gpasta.handle", n);
        let wsize = dev.buf_zeroed("gpasta.wsize", 1);

        for (i, s) in sources.iter().enumerate() {
            handle.store(i, s.0);
            d_pid.store(s.index(), i as u32);
        }

        let mut roffset = 0u32;
        let mut rsize = num_sources;
        while rsize > 0 {
            wsize.store(0, 0);

            {
                let (handle, d_pid, f_pid, pid_cnt, max_pid) =
                    (&handle, &d_pid, &f_pid, &pid_cnt, &max_pid);
                dev.launch(rsize, move |gid| {
                    let cur = handle.load((roffset + gid) as usize) as usize;
                    let cur_pid = d_pid.load(cur);
                    if pid_cnt.fetch_add(cur_pid as usize, 1) < ps {
                        f_pid.store(cur, cur_pid);
                    } else {
                        let new_pid = max_pid.fetch_add(0, 1) + 1;
                        f_pid.store(cur, new_pid);
                        pid_cnt.fetch_add(new_pid as usize, 1);
                    }
                });
            }

            {
                let (handle, d_pid, f_pid, dep_cnt, wsize) =
                    (&handle, &d_pid, &f_pid, &dep_cnt, &wsize);
                dev.launch(rsize, move |gid| {
                    let cur = handle.load((roffset + gid) as usize);
                    let fp = f_pid.load(cur as usize);
                    for &nb in tdg.successors(TaskId(cur)) {
                        d_pid.fetch_max(nb as usize, fp);
                        if dep_cnt.fetch_sub(nb as usize, 1) == 1 {
                            let woffset = wsize.fetch_add(0, 1);
                            handle.store((roffset + rsize + woffset) as usize, nb);
                        }
                    }
                });
            }

            roffset += rsize;
            rsize = wsize.load(0);
        }
        debug_assert_eq!(roffset as usize, n, "BFS must reach every task of a DAG");

        Ok(Partition::new(f_pid.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_circuits::dag;
    use gpasta_tdg::{validate, TdgBuilder};

    fn figure4() -> Tdg {
        let mut b = TdgBuilder::new(7);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(2), TaskId(3));
        b.add_edge(TaskId(4), TaskId(5));
        b.add_edge(TaskId(1), TaskId(6));
        b.add_edge(TaskId(3), TaskId(6));
        b.add_edge(TaskId(5), TaskId(6));
        b.build().expect("figure 4 graph")
    }

    #[test]
    fn figure4_walkthrough_with_ps_3() {
        // The paper's running example: partition size 3. Each source keeps
        // its own chain: P0={0,1}, P1={2,3}, P2={4,5,6} (task 6 joins the
        // largest parent pid, which is P2).
        let p = GPasta::with_device(Device::single())
            .partition(&figure4(), &PartitionerOptions::with_max_size(3))
            .expect("valid options");
        validate::check_all(&figure4(), &p).expect("valid partition");
        assert_eq!(p.num_partitions(), 3);
        let a = p.assignment();
        assert_eq!(a[0], a[1], "chain 0->1 clusters");
        assert_eq!(a[2], a[3], "chain 2->3 clusters");
        assert_eq!(a[4], a[5], "chain 4->5 clusters");
        assert_eq!(a[6], a[5], "task 6 joins the largest parent partition");
    }

    #[test]
    fn default_ps_converges_without_tuning() {
        // §3.2: with the auto granularity, the number of partitions is
        // bounded below by the clustering rule, not collapsed to 1.
        let tdg = figure4();
        let p = GPasta::with_device(Device::single())
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        validate::check_all(&tdg, &p).expect("valid");
        assert_eq!(p.num_partitions(), 3, "one partition per source survives");
    }

    #[test]
    fn valid_on_random_dags_any_worker_count() {
        for workers in [1usize, 2, 4] {
            let gp = GPasta::with_device(Device::new(workers));
            for seed in 0..5u64 {
                let tdg = dag::random_dag(400, 1.8, seed);
                let p = gp
                    .partition(&tdg, &PartitionerOptions::default())
                    .expect("valid options");
                validate::check_all(&tdg, &p)
                    .unwrap_or_else(|e| panic!("workers={workers} seed={seed}: {e}"));
            }
        }
    }

    #[test]
    fn respects_partition_size_bound() {
        let tdg = dag::layered(32, 20, 2, 7);
        for ps in [1usize, 2, 5, 16] {
            let p = GPasta::with_device(Device::single())
                .partition(&tdg, &PartitionerOptions::with_max_size(ps))
                .expect("valid options");
            validate::check_size_bound(&p, ps).expect("size bound holds");
            validate::check_all(&tdg, &p).expect("valid");
        }
    }

    #[test]
    fn ps_one_degenerates_to_singletons() {
        let tdg = dag::chain(10);
        let p = GPasta::with_device(Device::single())
            .partition(&tdg, &PartitionerOptions::with_max_size(1))
            .expect("valid options");
        assert_eq!(p.num_partitions(), 10);
    }

    #[test]
    fn chain_collapses_to_one_partition() {
        // Within the auto cap, a chain (no parallelism to preserve)
        // collapses entirely.
        let tdg = dag::chain(PartitionerOptions::AUTO_PS_CAP);
        let p = GPasta::with_device(Device::single())
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        assert_eq!(p.num_partitions(), 1, "a chain has no parallelism to keep");
    }

    #[test]
    fn auto_ps_is_capped_for_source_poor_graphs() {
        // A single-source graph (incremental-update cone shape) must not
        // degenerate into one serial mega-partition.
        let tdg = dag::chain(500);
        let p = GPasta::with_device(Device::single())
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        assert!(
            p.num_partitions() >= 500 / PartitionerOptions::AUTO_PS_CAP,
            "auto Ps must cap partition growth: {} partitions",
            p.num_partitions()
        );
        validate::check_size_bound(&p, PartitionerOptions::AUTO_PS_CAP).expect("cap respected");
    }

    #[test]
    fn partition_count_is_at_least_source_count() {
        // Lower-bound property (§3.2): sources seed distinct partitions and
        // the max rule never merges them away entirely.
        for seed in 0..5u64 {
            let tdg = dag::random_dag(300, 1.2, seed);
            let p = GPasta::with_device(Device::single())
                .partition(&tdg, &PartitionerOptions::default())
                .expect("valid options");
            assert!(
                p.num_partitions() >= tdg.sources().len().min(p.num_partitions()),
                "sources each keep a partition"
            );
            // The quotient keeps at least the source-level parallelism.
            assert!(p.num_partitions() >= 1);
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let tdg = TdgBuilder::new(0).build().expect("empty DAG");
        let p = GPasta::new()
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        assert_eq!(p.num_partitions(), 0);
    }

    #[test]
    fn zero_ps_rejected() {
        let tdg = dag::chain(3);
        assert_eq!(
            GPasta::new().partition(&tdg, &PartitionerOptions::with_max_size(0)),
            Err(PartitionError::ZeroPartitionSize)
        );
    }

    #[test]
    fn independent_tasks_stay_apart() {
        let tdg = dag::independent(12);
        let p = GPasta::with_device(Device::single())
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        assert_eq!(p.num_partitions(), 12, "no edges, no clustering");
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(GPasta::new().name(), "G-PASTA");
    }

    #[test]
    fn csr_path_matches_reference_on_single_worker() {
        // One worker removes the races, so the CSR and legacy traversals
        // must agree bit for bit.
        let gp = GPasta::with_device(Device::single());
        for seed in 0..6u64 {
            let tdg = dag::random_dag(350, 1.7, seed);
            for opts in [
                PartitionerOptions::default(),
                PartitionerOptions::with_max_size(5),
            ] {
                let fast = gp.partition(&tdg, &opts).expect("csr path");
                let reference = gp.partition_reference(&tdg, &opts).expect("legacy path");
                assert_eq!(fast, reference, "seed {seed} opts {opts:?}");
            }
        }
    }
}
