//! Sanitizer integration: run a partitioner under the device sanitizer's
//! determinism audit.
//!
//! [`audit_partitioner`] re-runs a device-backed partitioner across worker
//! counts × schedules × repeats on sanitized devices (see
//! [`gpasta_gpu::audit_determinism`]) and classifies it. This is the
//! reproduction of the paper's determinism claim as an executable check:
//! GPasta's `atomicAdd` partition allocation audits as
//! [`Verdict::AtomicOrderSensitive`] while DeterGPasta (Algorithm 2) audits
//! as [`Verdict::Deterministic`]. Host-only partitioners (SeqGPasta, Gdca)
//! can be audited through [`audit_host_partitioner`], which ignores the
//! device and serves as a sanity baseline.

use gpasta_gpu::{audit_determinism, Device};
pub use gpasta_gpu::{AuditOutcome, SanitizerReport, Verdict};
use gpasta_tdg::Tdg;

use crate::{Partitioner, PartitionerOptions};

/// Audit a device-backed partitioner: `make` builds a fresh partitioner
/// around each perturbed sanitized [`Device`]; the audited output is the
/// raw partition assignment.
///
/// # Panics
///
/// Panics if any audited run returns a [`crate::PartitionError`] — the
/// audit perturbs scheduling, not inputs, so a failing run is a bug.
pub fn audit_partitioner<P, F>(
    make: F,
    tdg: &Tdg,
    opts: &PartitionerOptions,
    workers: &[usize],
    repeats: usize,
) -> AuditOutcome
where
    P: Partitioner,
    F: Fn(Device) -> P,
{
    audit_determinism(workers, repeats, |dev| {
        make(dev.clone())
            .partition(tdg, opts)
            .expect("partitioner must succeed under audit")
            .assignment()
            .to_vec()
    })
}

/// Audit the incremental repair kernel: `make` builds a fresh inner
/// partitioner around each perturbed sanitized [`Device`], which is then
/// wrapped in an [`IncrementalPartitioner`](crate::IncrementalPartitioner);
/// the audited output is the raw assignment *after* installing the cache
/// and repairing `dirty`. The classification therefore covers the whole
/// install → repair path: an order-sensitive inner partitioner (GPasta)
/// taints the repaired cache, while a [`crate::DeterGPasta`]-backed
/// incremental partitioner must audit as [`Verdict::Deterministic`]
/// because the repair loop itself is sequential and seeded only by the
/// cached pids.
///
/// # Panics
///
/// Panics if install or repair fails under audit — the audit perturbs
/// scheduling, not inputs, so a failing run is a bug (e.g. a dirty set
/// that is not successor-closed).
pub fn audit_incremental_repair<P, F>(
    make: F,
    tdg: &Tdg,
    opts: &PartitionerOptions,
    dirty: &[u32],
    workers: &[usize],
    repeats: usize,
) -> AuditOutcome
where
    P: Partitioner,
    F: Fn(Device) -> P,
{
    audit_determinism(workers, repeats, |dev| {
        let mut inc = crate::IncrementalPartitioner::new(make(dev.clone()));
        inc.install(tdg, opts)
            .expect("incremental install must succeed under audit");
        inc.repair(dirty)
            .expect("incremental repair must succeed under audit");
        inc.raw_assignment()
            .expect("cache is warm after install")
            .to_vec()
    })
}

/// Audit a host-only partitioner (no device involvement). Still runs the
/// full perturbation matrix; a correct host partitioner is trivially
/// [`Verdict::Deterministic`], which makes this a useful control.
pub fn audit_host_partitioner<P: Partitioner>(
    p: &P,
    tdg: &Tdg,
    opts: &PartitionerOptions,
    workers: &[usize],
    repeats: usize,
) -> AuditOutcome {
    audit_determinism(workers, repeats, |_dev| {
        p.partition(tdg, opts)
            .expect("partitioner must succeed under audit")
            .assignment()
            .to_vec()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeterGPasta, GPasta, Gdca, SeqGPasta};
    use gpasta_circuits::dag;
    use gpasta_tdg::{TaskId, TdgBuilder};

    /// A two-level fan with contention: one source feeding five children,
    /// Ps = 2. More children want partition 0 than it can hold, so the
    /// atomicAdd winners determine the outcome.
    fn contended_fan() -> Tdg {
        let mut b = TdgBuilder::new(6);
        for child in 1..6 {
            b.add_edge(TaskId(0), TaskId(child));
        }
        b.build().expect("fan DAG")
    }

    /// Acceptance: GPasta's pid allocation is race-free but its output
    /// depends on atomic execution order, across workers {1, 2, 4}.
    #[test]
    fn gpasta_audits_as_atomic_order_sensitive() {
        let opts = PartitionerOptions::with_max_size(2);
        let outcome =
            audit_partitioner(GPasta::with_device, &contended_fan(), &opts, &[1, 2, 4], 2);
        assert_eq!(outcome.verdict, Verdict::AtomicOrderSensitive, "{outcome}");
        assert_eq!(
            outcome.report.race_count(),
            0,
            "Algorithm 1 is order-sensitive, not racy: {}",
            outcome.report
        );
        assert_eq!(
            outcome.report.uninit_count(),
            0,
            "BFS writes every slot before reading"
        );
    }

    /// Acceptance: DeterGPasta produces the same partition under every
    /// perturbation, with a clean sanitizer report, across workers {1, 2, 4}.
    #[test]
    fn deter_gpasta_audits_as_deterministic() {
        let opts = PartitionerOptions::with_max_size(2);
        let outcome = audit_partitioner(
            DeterGPasta::with_device,
            &contended_fan(),
            &opts,
            &[1, 2, 4],
            2,
        );
        assert_eq!(outcome.verdict, Verdict::Deterministic, "{outcome}");
        assert!(outcome.report.is_clean(), "{}", outcome.report);
    }

    #[test]
    fn deter_gpasta_stays_deterministic_on_a_random_dag() {
        let tdg = dag::random_dag(200, 1.8, 7);
        let opts = PartitionerOptions::with_max_size(4);
        let outcome = audit_partitioner(DeterGPasta::with_device, &tdg, &opts, &[1, 4], 1);
        assert_eq!(outcome.verdict, Verdict::Deterministic, "{outcome}");
        assert!(outcome.report.is_clean(), "{}", outcome.report);
    }

    #[test]
    fn gpasta_is_clean_of_races_and_uninit_reads_on_a_random_dag() {
        // Order-sensitivity aside, Algorithm 1 must never trip racecheck or
        // initcheck: all cross-thread writes are atomics, and the wavefront
        // initialises every slot it later reads.
        let tdg = dag::random_dag(200, 1.8, 7);
        let opts = PartitionerOptions::with_max_size(4);
        let outcome = audit_partitioner(GPasta::with_device, &tdg, &opts, &[1, 4], 1);
        assert_eq!(outcome.report.race_count(), 0, "{}", outcome.report);
        assert_eq!(outcome.report.uninit_count(), 0, "{}", outcome.report);
        assert_eq!(outcome.report.bounds_count(), 0, "{}", outcome.report);
    }

    /// Satellite pin: the incremental repair kernel is Deterministic when
    /// backed by DeterGPasta — across worker counts and repeated runs.
    #[test]
    fn incremental_repair_backed_by_deter_gpasta_audits_as_deterministic() {
        let tdg = contended_fan();
        let opts = PartitionerOptions::with_max_size(2);
        let dirty = crate::forward_closure(&tdg, &[0]);
        let outcome =
            audit_incremental_repair(DeterGPasta::with_device, &tdg, &opts, &dirty, &[1, 2, 4], 2);
        assert_eq!(outcome.verdict, Verdict::Deterministic, "{outcome}");
        assert!(outcome.report.is_clean(), "{}", outcome.report);
    }

    /// The audit sees through the cache: an order-sensitive inner
    /// partitioner taints the installed assignment, so the incremental
    /// wrapper inherits the classification. The dirty cone is a single
    /// sink; the clean region keeps the contended (order-dependent) pids,
    /// which the audit then observes in the repaired output.
    #[test]
    fn incremental_repair_backed_by_gpasta_inherits_order_sensitivity() {
        let tdg = contended_fan();
        let opts = PartitionerOptions::with_max_size(2);
        let dirty = crate::forward_closure(&tdg, &[5]);
        let outcome =
            audit_incremental_repair(GPasta::with_device, &tdg, &opts, &dirty, &[1, 2, 4], 2);
        assert_eq!(outcome.verdict, Verdict::AtomicOrderSensitive, "{outcome}");
        assert_eq!(outcome.report.race_count(), 0, "{}", outcome.report);
    }

    #[test]
    fn host_partitioners_audit_as_deterministic() {
        let tdg = contended_fan();
        let opts = PartitionerOptions::with_max_size(2);
        let seq = audit_host_partitioner(&SeqGPasta::new(), &tdg, &opts, &[1, 2], 1);
        assert_eq!(seq.verdict, Verdict::Deterministic, "{seq}");
        let gdca = audit_host_partitioner(&Gdca::new(), &tdg, &opts, &[1, 2], 1);
        assert_eq!(gdca.verdict, Verdict::Deterministic, "{gdca}");
    }
}
