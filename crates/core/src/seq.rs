//! seq-G-PASTA: the single-threaded CPU variant of Algorithm 1.

use crate::{check_opts, PartitionError, Partitioner, PartitionerOptions};
use gpasta_tdg::{CancelObserver, Partition, TaskId, Tdg};

/// The sequential CPU implementation of G-PASTA's clustering rule.
///
/// Identical logic to [`GPasta`](crate::GPasta) — desired ids propagate
/// from parents, the max rule keeps the quotient acyclic, full partitions
/// overflow into fresh ones — but runs on one thread with plain loads and
/// stores. The paper reports it 2.4–6.2× faster than GDCA even without a
/// GPU, because per task it performs only a couple of constant-time
/// operations.
///
/// The result is fully deterministic: tasks are processed in frontier
/// insertion order, which is fixed on a single thread.
#[derive(Debug, Clone, Default)]
pub struct SeqGPasta;

impl SeqGPasta {
    /// Create the sequential partitioner.
    pub fn new() -> Self {
        SeqGPasta
    }
}

impl SeqGPasta {
    /// The wavefront kernel on the flat level-ordered CSR view, polling
    /// `cancel` once per BFS level — the natural unit boundary of the
    /// algorithm, so cancellation latency is one level's worth of
    /// constant-time per-task work.
    ///
    /// Running in CSR space makes each wavefront's touches of `d_pid` /
    /// `f_pid` / `dep_cnt` contiguous (tasks of one level are one id
    /// range). Because the frontier at step `k` is exactly level `k`, the
    /// CSR successor lists keep the original adjacency order, and sources
    /// occupy CSR ids `0..num_sources` in the same ascending-id order as
    /// `Tdg::sources`, the wavefront visits tasks in the same order as the
    /// legacy per-task path — the result is bit-identical to
    /// [`partition_reference`](SeqGPasta::partition_reference).
    fn partition_impl(
        &self,
        tdg: &Tdg,
        opts: &PartitionerOptions,
        cancel: &CancelObserver,
    ) -> Result<Partition, PartitionError> {
        check_opts(opts)?;
        let n = tdg.num_tasks();
        if n == 0 {
            return Ok(Partition::new(Vec::new()));
        }
        let ps = opts.resolve_ps(tdg) as u32;
        let csr = tdg.csr();

        let mut d_pid = vec![0u32; n];
        let mut f_pid = vec![0u32; n];
        let mut dep_cnt = Vec::with_capacity(n);
        csr.fill_in_degrees(&mut dep_cnt);
        let num_sources = csr.num_sources();
        let mut pid_cnt = vec![0u32; n + num_sources + 1];
        let mut max_pid = (num_sources as u32).saturating_sub(1);

        // Frontier seeded with sources (CSR ids 0..num_sources), each with
        // its own desired id.
        let mut frontier: Vec<u32> = (0..num_sources as u32).collect();
        for (i, pid) in d_pid.iter_mut().enumerate().take(num_sources) {
            *pid = i as u32;
        }

        let mut next = Vec::new();
        while !frontier.is_empty() {
            if cancel.is_cancelled() {
                return Err(PartitionError::Cancelled);
            }
            for &cur in &frontier {
                // Step 1: commit or overflow.
                let cur_pid = d_pid[cur as usize];
                let fp = if pid_cnt[cur_pid as usize] < ps {
                    pid_cnt[cur_pid as usize] += 1;
                    cur_pid
                } else {
                    max_pid += 1;
                    pid_cnt[max_pid as usize] += 1;
                    max_pid
                };
                f_pid[cur as usize] = fp;

                // Step 2: max rule + dependency release.
                for &nb in csr.successors(cur) {
                    let d = &mut d_pid[nb as usize];
                    if *d < fp {
                        *d = fp;
                    }
                    dep_cnt[nb as usize] -= 1;
                    if dep_cnt[nb as usize] == 0 {
                        next.push(nb);
                    }
                }
            }
            // Insertion order is already deterministic on one thread; no
            // sort needed (the per-task cost stays constant, which is why
            // seq-G-PASTA beats GDCA even without a GPU).
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }

        Ok(Partition::new(csr.scatter_to_original(&f_pid)))
    }

    /// The legacy per-task-id path, kept verbatim as the reference for the
    /// differential layout test (`tests/csr_layout.rs`): the CSR hot path
    /// must reproduce its output bit for bit.
    #[doc(hidden)]
    pub fn partition_reference(
        &self,
        tdg: &Tdg,
        opts: &PartitionerOptions,
    ) -> Result<Partition, PartitionError> {
        check_opts(opts)?;
        let n = tdg.num_tasks();
        if n == 0 {
            return Ok(Partition::new(Vec::new()));
        }
        let ps = opts.resolve_ps(tdg) as u32;

        let mut d_pid = vec![0u32; n];
        let mut f_pid = vec![0u32; n];
        let mut dep_cnt = tdg.in_degrees();
        let mut pid_cnt = vec![0u32; n + 1];
        let mut max_pid;

        let mut frontier: Vec<u32> = tdg.sources().iter().map(|s| s.0).collect();
        for (i, &s) in frontier.iter().enumerate() {
            d_pid[s as usize] = i as u32;
        }
        max_pid = (frontier.len() as u32).saturating_sub(1);
        pid_cnt.resize(n + frontier.len() + 1, 0);

        let mut next = Vec::new();
        while !frontier.is_empty() {
            for &cur in &frontier {
                let cur_pid = d_pid[cur as usize];
                let fp = if pid_cnt[cur_pid as usize] < ps {
                    pid_cnt[cur_pid as usize] += 1;
                    cur_pid
                } else {
                    max_pid += 1;
                    pid_cnt[max_pid as usize] += 1;
                    max_pid
                };
                f_pid[cur as usize] = fp;

                for &nb in tdg.successors(TaskId(cur)) {
                    let d = &mut d_pid[nb as usize];
                    if *d < fp {
                        *d = fp;
                    }
                    dep_cnt[nb as usize] -= 1;
                    if dep_cnt[nb as usize] == 0 {
                        next.push(nb);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }

        Ok(Partition::new(f_pid))
    }
}

impl Partitioner for SeqGPasta {
    fn name(&self) -> &'static str {
        "seq-G-PASTA"
    }

    fn partition(&self, tdg: &Tdg, opts: &PartitionerOptions) -> Result<Partition, PartitionError> {
        self.partition_impl(tdg, opts, &CancelObserver::never())
    }

    fn partition_cancellable(
        &self,
        tdg: &Tdg,
        opts: &PartitionerOptions,
        cancel: &CancelObserver,
    ) -> Result<Partition, PartitionError> {
        self.partition_impl(tdg, opts, cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpasta_circuits::dag;
    use gpasta_tdg::{validate, TdgBuilder};

    #[test]
    fn deterministic_across_runs() {
        let tdg = dag::random_dag(500, 1.7, 3);
        let a = SeqGPasta::new()
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        let b = SeqGPasta::new()
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        assert_eq!(a, b);
    }

    #[test]
    fn valid_on_random_dags() {
        for seed in 0..8u64 {
            let tdg = dag::random_dag(400, 1.5, seed);
            let p = SeqGPasta::new()
                .partition(&tdg, &PartitionerOptions::default())
                .expect("valid options");
            validate::check_all(&tdg, &p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn respects_ps() {
        let tdg = dag::layered(16, 12, 2, 1);
        for ps in [1usize, 3, 8] {
            let p = SeqGPasta::new()
                .partition(&tdg, &PartitionerOptions::with_max_size(ps))
                .expect("valid options");
            validate::check_size_bound(&p, ps).expect("size bound");
            validate::check_all(&tdg, &p).expect("valid");
        }
    }

    #[test]
    fn matches_parallel_gpasta_on_single_worker() {
        // One device worker processes the frontier in order, so the racy
        // kernel degenerates to exactly this algorithm — except frontier
        // ordering: the device pushes in traversal order while seq sorts.
        // Both must be valid and produce the same partition *count* on
        // simple graphs.
        let tdg = dag::layered(8, 6, 2, 9);
        let seq = SeqGPasta::new()
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        let par = crate::GPasta::with_device(gpasta_gpu::Device::single())
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        assert_eq!(seq.num_partitions(), par.num_partitions());
    }

    #[test]
    fn figure4_example() {
        let mut b = TdgBuilder::new(7);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(2), TaskId(3));
        b.add_edge(TaskId(4), TaskId(5));
        b.add_edge(TaskId(1), TaskId(6));
        b.add_edge(TaskId(3), TaskId(6));
        b.add_edge(TaskId(5), TaskId(6));
        let tdg = b.build().expect("figure 4");
        let p = SeqGPasta::new()
            .partition(&tdg, &PartitionerOptions::with_max_size(3))
            .expect("valid options");
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.assignment()[6], p.assignment()[5]);
    }

    #[test]
    fn empty_and_zero_ps() {
        let empty = TdgBuilder::new(0).build().expect("empty");
        assert_eq!(
            SeqGPasta::new()
                .partition(&empty, &PartitionerOptions::default())
                .expect("valid options")
                .num_partitions(),
            0
        );
        let tdg = dag::chain(2);
        assert_eq!(
            SeqGPasta::new().partition(&tdg, &PartitionerOptions::with_max_size(0)),
            Err(PartitionError::ZeroPartitionSize)
        );
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(SeqGPasta::new().name(), "seq-G-PASTA");
    }

    #[test]
    fn csr_path_matches_reference_bit_for_bit() {
        for seed in 0..8u64 {
            let tdg = dag::random_dag(400, 1.6, seed);
            for opts in [
                PartitionerOptions::default(),
                PartitionerOptions::with_max_size(3),
                PartitionerOptions::with_max_size(17),
            ] {
                let fast = SeqGPasta::new().partition(&tdg, &opts).expect("csr path");
                let reference = SeqGPasta::new()
                    .partition_reference(&tdg, &opts)
                    .expect("legacy path");
                assert_eq!(fast, reference, "seed {seed} opts {opts:?}");
            }
        }
    }

    #[test]
    fn cancellable_run_matches_plain_run_when_not_cancelled() {
        use gpasta_tdg::CancelToken;
        let tdg = dag::random_dag(300, 1.6, 11);
        let token = CancelToken::new();
        let plain = SeqGPasta::new()
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid options");
        let cancellable = SeqGPasta::new()
            .partition_cancellable(&tdg, &PartitionerOptions::default(), &token.observe())
            .expect("uncancelled run succeeds");
        assert_eq!(plain, cancellable);
    }

    #[test]
    fn tripped_observer_cancels_partitioning() {
        use gpasta_tdg::CancelToken;
        let tdg = dag::random_dag(300, 1.6, 12);
        let token = CancelToken::new();
        let obs = token.observe();
        token.cancel();
        assert_eq!(
            SeqGPasta::new().partition_cancellable(&tdg, &PartitionerOptions::default(), &obs),
            Err(PartitionError::Cancelled)
        );
    }
}
