//! Incremental partition maintenance with a dirty-cone partition cache.
//!
//! The paper's Fig. 7 workload re-partitions the TDG from scratch on every
//! `update_timing` iteration even though the timer already knows the exact
//! dirty cone. [`IncrementalPartitioner`] wraps any [`Partitioner`] with a
//! partition + quotient cache keyed on the TDG's structural fingerprint:
//! tasks outside the dirty cone keep their cached `f_pid`, and dirty-cone
//! tasks are re-partitioned by the G-PASTA wavefront rule — each task is
//! seeded from the `atomicMax` of its predecessors' current pids and
//! commits into that partition while it has room. Two refinements keep
//! repeated repairs *convergent* instead of churning: every vacated slot
//! stays **reserved** for its owner, so a merge only happens into genuine
//! slack and never displaces a task that is merely returning; and on
//! overflow the task falls back to its still-consistent cached slot
//! (`old >= seed`) before minting a fresh pid above the cached `max_pid`
//! (§3.2). Fresh pids above `max_pid` and consistent cached slots both
//! keep raw ids monotone along every edge, which *proves* both
//! scheduling-validity conditions (acyclic quotient, convex partitions) in
//! one `O(E)` certificate — re-checked via
//! [`validate::check_edge_monotone`](gpasta_tdg::validate::check_edge_monotone)
//! on every repair in debug builds, alongside the full validator suite on
//! small graphs.
//!
//! # Performance
//!
//! Repair is `O(dirty cone)`, and its common case is far cheaper than a
//! re-partition of the cone: a per-task *merge-candidate bit* records
//! whether the wavefront could move the task, and a cone with no candidate
//! set (and no capacity violation) is already at the wavefront's fixed
//! point — the repair is provably the identity and skips the vacate / sort
//! / re-place / patch passes outright. Wavefront partitioners emit
//! edge-monotone ids natively, so install adopts their assignment directly
//! (it *is* the fixed point, every bit starts false) and steady-state
//! repairs stay on the identity path. Auxiliary structures that only the
//! re-placing path needs (topological ranks, the patchable quotient) are
//! built lazily on first use. Callers whose dirty sets are closed by
//! construction can additionally skip the verification passes via
//! [`IncrementalPartitioner::repair_and_project_trusted`].
//!
//! # Soundness
//!
//! The cached raw assignment is edge-monotone from install: a wavefront
//! inner partitioner's ids are adopted as-is (each task commits to the max
//! of its predecessors' pids or to a fresh pid above everything minted so
//! far), and any other valid assignment is relabelled by quotient-graph
//! topological rank, so the invariant holds no matter which partitioner is
//! wrapped. Repair preserves it by construction:
//!
//! * the dirty set must be **successor-closed** (every successor of a dirty
//!   task is dirty — exactly the shape of an STA dirty cone, where edits
//!   invalidate everything downstream); [`IncrementalPartitioner::repair`]
//!   verifies this and refuses otherwise, because an edge from a re-placed
//!   dirty task to a clean one could break monotonicity;
//! * dirty tasks are processed in cached topological order, so each task's
//!   predecessors already carry their final pids when it is seeded;
//! * the committed pid is the max predecessor pid (`>=` every in-edge
//!   source), the task's own cached pid when still `>=` that max, or a
//!   fresh pid above every existing id.

use crate::{check_opts, PartitionError, Partitioner, PartitionerOptions};
use gpasta_tdg::{
    topo_order, validate, CancelObserver, Partition, PatchableQuotient, QuotientTdg, TaskId,
    TaskMove, Tdg,
};
use std::error::Error;
use std::fmt;

/// Error returned by the incremental cache operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IncrementalError {
    /// A repair or query was attempted before [`IncrementalPartitioner::install`].
    NotInstalled,
    /// The inner partitioner rejected the options.
    Partition(PartitionError),
    /// A dirty task id is `>= num_tasks` of the cached TDG.
    TaskOutOfRange {
        /// The offending task id.
        task: u32,
        /// Task count of the cached TDG.
        num_tasks: usize,
    },
    /// The dirty set is not successor-closed: repairing it could break the
    /// monotone-id invariant across a dirty-to-clean edge.
    DirtySetNotClosed {
        /// A dirty task…
        task: u32,
        /// …with this clean successor.
        clean_successor: u32,
    },
    /// A [`CancelToken`](gpasta_tdg::CancelToken) fired during a
    /// cancellable repair. The cache is unchanged: cancellation is only
    /// polled before the first cache mutation.
    Cancelled,
    /// A [`CacheExport`] snapshot failed validation against the target TDG
    /// (shape, fingerprint, or the edge-monotone certificate); the cache is
    /// unchanged.
    InvalidSnapshot(String),
}

impl fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IncrementalError::NotInstalled => {
                f.write_str("no partition cache installed; call install() first")
            }
            IncrementalError::Partition(ref e) => write!(f, "inner partitioner failed: {e}"),
            IncrementalError::TaskOutOfRange { task, num_tasks } => write!(
                f,
                "dirty task {task} out of range (cached TDG has {num_tasks} tasks)"
            ),
            IncrementalError::DirtySetNotClosed {
                task,
                clean_successor,
            } => write!(
                f,
                "dirty set is not successor-closed: dirty task {task} has clean successor \
                 {clean_successor}"
            ),
            IncrementalError::Cancelled => f.write_str("repair was cancelled"),
            IncrementalError::InvalidSnapshot(ref why) => {
                write!(f, "cache snapshot rejected: {why}")
            }
        }
    }
}

impl Error for IncrementalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IncrementalError::Partition(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PartitionError> for IncrementalError {
    fn from(e: PartitionError) -> Self {
        IncrementalError::Partition(e)
    }
}

/// Statistics reported by one [`IncrementalPartitioner::repair`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairStats {
    /// Distinct dirty tasks processed.
    pub num_dirty: usize,
    /// Tasks whose partition id actually changed.
    pub moved: usize,
    /// Fresh partitions allocated above the cached `max_pid`.
    pub fresh_partitions: usize,
    /// Cache epoch after the repair (increments on every install/repair).
    pub epoch: u64,
}

/// When the raw id space grows this far past the task count, repair
/// renormalises it back to dense ids. The bound keeps
/// [`Partition`]'s compaction on its fast counting path
/// (`max_id < 4 * len + 1024`).
const RENORM_SLACK: usize = 512;

struct Cache {
    tdg: Tdg,
    fingerprint: u64,
    ps: usize,
    /// Raw (sparse, edge-monotone) partition id per task.
    raw: Vec<u32>,
    /// Member count per raw pid (indexed by pid).
    sizes: Vec<u32>,
    /// Slots vacated by still-unprocessed dirty tasks, per raw pid. Only
    /// nonzero inside [`IncrementalPartitioner::repair`]; drains back to
    /// all-zero before it returns.
    reserved: Vec<u32>,
    /// Largest raw pid ever allocated.
    max_pid: u32,
    /// Position of each task in a fixed topological order of `tdg`.
    /// Built lazily on the first repair that actually re-places tasks
    /// (empty = unbuilt); identity repairs never sort.
    topo_rank: Vec<u32>,
    /// Incrementally patched quotient structure. Built lazily on first
    /// access or first patch opportunity after a build: `None` means "derive
    /// from `raw` on demand", which is always consistent.
    quotient: Option<PatchableQuotient>,
    /// Per-task visit stamp for O(dirty) dedup without clearing.
    stamp: Vec<u32>,
    stamp_cur: u32,
    /// Scratch: deduped dirty tasks, sorted by `topo_rank`.
    order: Vec<u32>,
    /// Scratch: moves of the latest repair, fed to the quotient patch.
    moves: Vec<TaskMove>,
    /// Per-task merge-candidate bit: the task could commit into its seed
    /// partition (`seed < pid` with genuine slack), i.e. re-running the
    /// wavefront over it would *move* it. Recomputed for every dirty task
    /// after a moving repair; an occupancy change can leave a clean task's
    /// bit stale, which costs at most a missed merge or one redundant full
    /// pass — never an invalid repair.
    merge_bit: Vec<bool>,
    /// Scratch: `(topo_rank << 32) | task` sort keys for the dirty cone.
    sort_keys: Vec<u64>,
    /// Scratch: projected raw pids for [`IncrementalPartitioner::repair_and_project`].
    proj: Vec<u32>,
}

/// Would the wavefront rule move task `t` out of its cached slot? True
/// exactly when its seed partition (max predecessor pid) is a *different*
/// partition with genuine slack. By edge-monotonicity `seed <= raw[t]`
/// always, so a false bit means re-placing `t` commits it right back.
fn merge_candidate(tdg: &Tdg, raw: &[u32], sizes: &[u32], ps: usize, t: u32) -> bool {
    let old = raw[t as usize];
    let seed = tdg
        .predecessors(TaskId(t))
        .iter()
        .map(|&u| raw[u as usize])
        .max()
        .unwrap_or(old);
    seed < old && (sizes[seed as usize] as usize) < ps
}

/// A portable snapshot of the incremental partition cache — the minimal
/// state from which [`IncrementalPartitioner::restore_cache`] can rebuild
/// a warm cache bit-identical (in every observable way) to the one that
/// was exported. Only the durable fields are captured; everything lazy or
/// derivable (sizes, merge bits, topological ranks, the patched quotient)
/// is recomputed on restore, which keeps snapshots small and makes a
/// corrupted snapshot detectable by re-validation rather than trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheExport {
    /// Structural [`fingerprint`](Tdg::fingerprint) of the cached TDG.
    pub fingerprint: u64,
    /// Resolved `Ps` of the cached partition.
    pub ps: usize,
    /// Raw (sparse, edge-monotone) partition id per task.
    pub raw: Vec<u32>,
    /// Largest raw pid ever allocated — preserved so fresh pids minted
    /// after a restore are numbered exactly as they would have been
    /// without the export/restore round trip.
    pub max_pid: u32,
    /// Cache epoch at export time.
    pub epoch: u64,
}

/// Wraps any [`Partitioner`] with a partition + quotient cache that is
/// *repaired* inside the dirty cone instead of rebuilt, making the
/// per-iteration partitioning cost proportional to the dirty cone — not
/// `|V|`.
///
/// # Example
///
/// ```
/// use gpasta_core::{forward_closure, IncrementalPartitioner, PartitionerOptions, SeqGPasta};
/// use gpasta_tdg::{validate, TaskId, TdgBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TdgBuilder::new(4);
/// b.add_edge(TaskId(0), TaskId(1));
/// b.add_edge(TaskId(0), TaskId(2));
/// b.add_edge(TaskId(1), TaskId(3));
/// b.add_edge(TaskId(2), TaskId(3));
/// let tdg = b.build()?;
///
/// let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
/// inc.install(&tdg, &PartitionerOptions::default())?;
///
/// // Repair the forward cone of task 1; the rest keeps its cached pid.
/// let dirty = forward_closure(&tdg, &[1]);
/// let stats = inc.repair(&dirty)?;
/// assert_eq!(stats.num_dirty, 2); // tasks 1 and 3
/// let p = inc.full_partition().expect("cache is warm");
/// validate::check_all(&tdg, &p)?;
/// # Ok(())
/// # }
/// ```
pub struct IncrementalPartitioner<P> {
    inner: P,
    cache: Option<Cache>,
    epoch: u64,
}

impl<P: Partitioner> IncrementalPartitioner<P> {
    /// Wrap `inner` with an empty (cold) cache.
    pub fn new(inner: P) -> Self {
        IncrementalPartitioner {
            inner,
            cache: None,
            epoch: 0,
        }
    }

    /// The wrapped partitioner.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Whether a cache is installed.
    pub fn is_warm(&self) -> bool {
        self.cache.is_some()
    }

    /// Cache epoch: increments on every successful install and repair.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The resolved `Ps` of the installed cache, if warm.
    pub fn ps(&self) -> Option<usize> {
        self.cache.as_ref().map(|c| c.ps)
    }

    /// The cached TDG, if warm.
    pub fn cached_tdg(&self) -> Option<&Tdg> {
        self.cache.as_ref().map(|c| &c.tdg)
    }

    /// The raw (sparse, edge-monotone) assignment, if warm.
    pub fn raw_assignment(&self) -> Option<&[u32]> {
        self.cache.as_ref().map(|c| c.raw.as_slice())
    }

    /// The incrementally patched quotient structure, if warm. Built lazily
    /// from the cached assignment on first access and patched in place by
    /// every subsequent repair that moves tasks.
    pub fn patched_quotient(&mut self) -> Option<&PatchableQuotient> {
        let cache = self.cache.as_mut()?;
        Some(
            cache
                .quotient
                .get_or_insert_with(|| PatchableQuotient::build(&cache.tdg, &cache.raw)),
        )
    }

    /// Drop the cache, forcing the next [`Self::install`] (or trait
    /// [`Partitioner::partition`]) to run the inner partitioner from
    /// scratch.
    pub fn invalidate_all(&mut self) {
        self.cache = None;
    }

    /// Partition `tdg` with the inner partitioner and install the result as
    /// the cache. An already edge-monotone assignment (what wavefront
    /// partitioners emit natively) is adopted as-is; anything else is
    /// relabelled by quotient-graph topological rank. Either way raw ids
    /// end up monotone along every TDG edge — the invariant
    /// [`Self::repair`] maintains.
    ///
    /// # Errors
    ///
    /// Propagates the inner partitioner's [`PartitionError`].
    ///
    /// # Panics
    ///
    /// Panics if the inner partitioner violates its contract and returns a
    /// partition with a cyclic quotient.
    pub fn install(
        &mut self,
        tdg: &Tdg,
        opts: &PartitionerOptions,
    ) -> Result<(), IncrementalError> {
        check_opts(opts)?;
        let ps = opts.resolve_ps(tdg);
        let p = self.inner.partition(tdg, opts)?;
        let n = tdg.num_tasks();

        // Wavefront partitioners (seq-G-PASTA, G-PASTA, …) already emit
        // edge-monotone ids: every task commits to the max of its
        // predecessors' pids or to a fresh pid above everything minted so
        // far, and [`Partition`]'s compaction is order-preserving. Adopt
        // those ids directly — they are the wavefront's own fixed point, so
        // steady-state repairs start with no merge candidates at all.
        let (raw, sizes) = if validate::check_edge_monotone(tdg, p.assignment()).is_ok() {
            (p.assignment().to_vec(), p.sizes())
        } else {
            // Generic inner partitioner: relabel dense pids by quotient
            // topological rank. A cross edge p_u -> p_v then satisfies
            // rank(p_u) < rank(p_v), so the relabelled raw assignment is
            // edge-monotone regardless of the inner id scheme.
            let quotient =
                QuotientTdg::build(tdg, &p).expect("inner partitioner produced a cyclic quotient");
            let np = p.num_partitions();
            let mut qrank = vec![0u32; np];
            for (i, &pid) in topo_order(quotient.graph()).iter().enumerate() {
                qrank[pid as usize] = i as u32;
            }
            let mut raw = vec![0u32; n];
            let mut sizes = vec![0u32; np];
            for (t, &pid) in p.assignment().iter().enumerate() {
                let r = qrank[pid as usize];
                raw[t] = r;
                sizes[r as usize] += 1;
            }
            (raw, sizes)
        };

        let np = sizes.len();
        let merge_bit = (0..n as u32)
            .map(|t| merge_candidate(tdg, &raw, &sizes, ps, t))
            .collect();
        self.epoch += 1;
        self.cache = Some(Cache {
            fingerprint: tdg.fingerprint(),
            tdg: tdg.clone(),
            ps,
            raw,
            sizes,
            reserved: vec![0; np],
            max_pid: (np as u32).saturating_sub(1),
            topo_rank: Vec::new(),
            quotient: None,
            stamp: vec![0; n],
            stamp_cur: 0,
            order: Vec::new(),
            moves: Vec::new(),
            merge_bit,
            sort_keys: Vec::new(),
            proj: Vec::new(),
        });
        Ok(())
    }

    /// Repair the cached partition inside `dirty` (duplicates allowed).
    ///
    /// Every dirty task is re-seeded from the `atomicMax` of its
    /// predecessors' current pids (clean predecessors keep their cached
    /// pid; dirty predecessors are processed first, in topological order).
    /// The task commits into the seed partition while it has room beyond
    /// the slots *reserved* for its own still-unprocessed dirty members —
    /// a merge never displaces a task that is merely returning, which is
    /// what makes repeated repairs converge to a fixed point. On overflow
    /// the task keeps its cached slot when that is still consistent
    /// (`old >= seed`) and has room, and only otherwise takes a fresh pid
    /// above the cached `max_pid`. A dirty source task keeps its cached
    /// pid. The patched quotient is updated in place from the move log.
    ///
    /// In debug builds every repair re-proves validity: the `O(E)`
    /// monotone-id certificate plus quotient acyclicity and the `Ps` bound
    /// always, and the full convexity sweep on graphs up to 4096 tasks.
    ///
    /// # Errors
    ///
    /// [`IncrementalError::NotInstalled`] on a cold cache,
    /// [`IncrementalError::TaskOutOfRange`] for an invalid id, and
    /// [`IncrementalError::DirtySetNotClosed`] if some successor of a dirty
    /// task is clean (the cache is left unchanged in every error case).
    pub fn repair(&mut self, dirty: &[u32]) -> Result<RepairStats, IncrementalError> {
        self.repair_impl(dirty, false, None)
    }

    /// Cancellable [`Self::repair`]: polls `cancel` at the pre-mutation
    /// boundaries of the repair (entry, after dedup, after the
    /// closedness check — all before the first write to the cached
    /// assignment) and returns [`IncrementalError::Cancelled`] with the
    /// cache **unchanged** if the observer has tripped. A repair that has
    /// started mutating always runs to completion, so cancellation can
    /// never leave a half-repaired partition behind; the latency bound is
    /// one dirty-cone re-place pass.
    ///
    /// # Errors
    ///
    /// Those of [`Self::repair`], plus [`IncrementalError::Cancelled`].
    pub fn repair_cancellable(
        &mut self,
        dirty: &[u32],
        cancel: &CancelObserver,
    ) -> Result<RepairStats, IncrementalError> {
        self.repair_impl(dirty, false, Some(cancel))
    }

    /// [`Self::repair`] and [`Self::sub_partition`] over the same ids, fused:
    /// the projected pids are gathered during the repair's own pass over
    /// `dirty`, so an identity repair touches each task's cache entry once
    /// instead of twice. Equivalent to `repair(ids)` followed by
    /// `sub_partition(ids)` in every observable way, including errors.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Self::repair`]; the cache is unchanged on error.
    pub fn repair_and_project(
        &mut self,
        ids: &[u32],
    ) -> Result<(RepairStats, Partition), IncrementalError> {
        let stats = self.repair_impl(ids, true, None)?;
        let cache = self
            .cache
            .as_mut()
            .expect("repair succeeded on a warm cache");
        let proj = std::mem::take(&mut cache.proj);
        Ok((stats, Partition::new(proj)))
    }

    /// [`Self::repair_and_project`] for ids the caller *knows* are
    /// successor-closed and duplicate-free — the two properties the checked
    /// entry point spends its per-task verification passes on. Dirty cones
    /// built by forward invalidation (an STA timer's `update_timing` set,
    /// or [`forward_closure`]) satisfy both by construction, and for them
    /// the identity fast path drops to two cache-array reads per task.
    ///
    /// Debug builds still verify the contract by delegating to the checked
    /// path. In release builds a violated contract can leave the cache with
    /// a non-monotone assignment — an *invalid partition*, never memory
    /// unsafety — exactly as if the caller had forced a non-closed repair.
    /// The fast path also trusts the cache's own invariants (which the
    /// public API cannot weaken): any cone containing a merge candidate is
    /// handed to the fully checked repair.
    ///
    /// # Errors
    ///
    /// [`IncrementalError::NotInstalled`] on a cold cache and
    /// [`IncrementalError::TaskOutOfRange`] for an invalid id.
    pub fn repair_and_project_trusted(
        &mut self,
        ids: &[u32],
    ) -> Result<(RepairStats, Partition), IncrementalError> {
        if cfg!(debug_assertions) {
            let (stats, p) = self.repair_and_project(ids)?;
            debug_assert_eq!(
                stats.num_dirty,
                ids.len(),
                "trusted ids must be duplicate-free"
            );
            return Ok((stats, p));
        }
        let needs_full = {
            let cache = self.cache.as_mut().ok_or(IncrementalError::NotInstalled)?;
            let n = cache.tdg.num_tasks();
            cache.proj.clear();
            cache.proj.reserve(ids.len());
            let mut needs_full = false;
            for &t in ids {
                if (t as usize) >= n {
                    return Err(IncrementalError::TaskOutOfRange {
                        task: t,
                        num_tasks: n,
                    });
                }
                cache.proj.push(cache.raw[t as usize]);
                needs_full |= cache.merge_bit[t as usize];
            }
            needs_full
        };
        if needs_full {
            return self.repair_and_project(ids);
        }
        self.epoch += 1;
        let cache = self.cache.as_mut().expect("checked above");
        let proj = std::mem::take(&mut cache.proj);
        Ok((
            RepairStats {
                num_dirty: ids.len(),
                moved: 0,
                fresh_partitions: 0,
                epoch: self.epoch,
            },
            Partition::new(proj),
        ))
    }

    fn repair_impl(
        &mut self,
        dirty: &[u32],
        project: bool,
        cancel: Option<&CancelObserver>,
    ) -> Result<RepairStats, IncrementalError> {
        let cancelled = |c: Option<&CancelObserver>| c.is_some_and(|c| c.is_cancelled());
        if cancelled(cancel) {
            return Err(IncrementalError::Cancelled);
        }
        let cache = self.cache.as_mut().ok_or(IncrementalError::NotInstalled)?;
        let n = cache.tdg.num_tasks();

        // Stamp-dedup the dirty set without clearing an O(n) bitmap.
        if cache.stamp_cur == u32::MAX {
            cache.stamp.iter_mut().for_each(|s| *s = 0);
            cache.stamp_cur = 0;
        }
        cache.stamp_cur += 1;
        let cur = cache.stamp_cur;
        cache.order.clear();
        if project {
            cache.proj.clear();
            cache.proj.reserve(dirty.len());
        }
        // A cone with no merge candidate and no capacity violation is
        // already at the wavefront fixed point: re-placing it is the
        // identity (see the fast path below), so the heavy passes can be
        // skipped entirely.
        let mut needs_full = false;
        for &t in dirty {
            if (t as usize) >= n {
                return Err(IncrementalError::TaskOutOfRange {
                    task: t,
                    num_tasks: n,
                });
            }
            let r = cache.raw[t as usize];
            if project {
                cache.proj.push(r);
            }
            if cache.stamp[t as usize] != cur {
                cache.stamp[t as usize] = cur;
                cache.order.push(t);
                needs_full |=
                    cache.merge_bit[t as usize] || cache.sizes[r as usize] as usize > cache.ps;
            }
        }

        // Dedup only touched scratch state (stamps, order, projection), so
        // the partition itself is still exactly the cached one here.
        if cancelled(cancel) {
            return Err(IncrementalError::Cancelled);
        }

        // Successor-closedness: an edge from a re-placed dirty task to a
        // clean task could otherwise end up decreasing.
        for &t in &cache.order {
            for &v in cache.tdg.successors(TaskId(t)) {
                if cache.stamp[v as usize] != cur {
                    return Err(IncrementalError::DirtySetNotClosed {
                        task: t,
                        clean_successor: v,
                    });
                }
            }
        }

        // Last poll before the vacate pass, which is the first write to the
        // cached assignment; past this point the repair runs to completion.
        if cancelled(cancel) {
            return Err(IncrementalError::Cancelled);
        }

        let mut fresh = 0usize;
        let mut moved = 0usize;
        if needs_full {
            // Vacate the whole dirty cone first so repair can re-pack it;
            // each vacated slot stays reserved for its owner until that
            // owner is processed, so re-packing never displaces a returning
            // task. The reservation counters drain back to all-zero by
            // construction.
            for &t in &cache.order {
                let pid = cache.raw[t as usize] as usize;
                cache.sizes[pid] -= 1;
                cache.reserved[pid] += 1;
            }

            // Re-place in cached topological order: predecessors (dirty or
            // clean) already carry their final pids when a task is seeded.
            // Sorting packed `(rank, task)` keys avoids the random
            // `topo_rank` lookups a by-key sort would do per comparison.
            if cache.topo_rank.len() != n {
                cache.topo_rank = vec![0u32; n];
                for (i, &t) in topo_order(&cache.tdg).iter().enumerate() {
                    cache.topo_rank[t as usize] = i as u32;
                }
            }
            let topo_rank = &cache.topo_rank;
            cache.sort_keys.clear();
            cache.sort_keys.extend(
                cache
                    .order
                    .iter()
                    .map(|&t| (u64::from(topo_rank[t as usize]) << 32) | u64::from(t)),
            );
            cache.sort_keys.sort_unstable();
            cache.order.clear();
            cache
                .order
                .extend(cache.sort_keys.iter().map(|&k| k as u32));
            cache.moves.clear();
            let ps = cache.ps as u32;
            for i in 0..cache.order.len() {
                let t = cache.order[i];
                let old = cache.raw[t as usize];
                cache.reserved[old as usize] -= 1;
                let preds = cache.tdg.predecessors(TaskId(t));
                // atomicMax over predecessor pids; sources keep their slot.
                let seed = preds
                    .iter()
                    .map(|&u| cache.raw[u as usize])
                    .max()
                    .unwrap_or(old);
                let fp = if cache.sizes[seed as usize] + cache.reserved[seed as usize] < ps {
                    seed
                } else if old >= seed && cache.sizes[old as usize] < ps {
                    // The seed partition has no genuine slack, but the
                    // cached slot is still consistent with every
                    // predecessor and has room: keep it rather than minting
                    // a fresh pid.
                    old
                } else {
                    // Only reachable from a cache whose invariants were
                    // weakened externally (e.g. a capacity-violated slot):
                    // the §3.2 safety valve that keeps the quotient
                    // acyclic.
                    cache.max_pid += 1;
                    cache.sizes.resize(cache.max_pid as usize + 1, 0);
                    cache.reserved.resize(cache.max_pid as usize + 1, 0);
                    fresh += 1;
                    cache.max_pid
                };
                cache.sizes[fp as usize] += 1;
                cache.raw[t as usize] = fp;
                if fp != old {
                    cache.moves.push(TaskMove {
                        task: t,
                        old_pid: old,
                        new_pid: fp,
                    });
                }
            }

            if let Some(q) = cache.quotient.as_mut() {
                q.apply(&cache.tdg, &cache.raw, &cache.moves);
            }
            moved = cache.moves.len();

            // Refresh the candidate bits over the cone: every moved task
            // and every task whose seed could have changed (successors of
            // moved tasks) is dirty, because the dirty set is
            // successor-closed.
            let (tdg, raw, sizes, ps) = (&cache.tdg, &cache.raw, &cache.sizes, cache.ps);
            let merge_bit = &mut cache.merge_bit;
            for &t in &cache.order {
                merge_bit[t as usize] = merge_candidate(tdg, raw, sizes, ps, t);
            }
            if project {
                // The cone was re-placed after the gather: project again
                // from the repaired assignment.
                cache.proj.clear();
                cache
                    .proj
                    .extend(dirty.iter().map(|&t| cache.raw[t as usize]));
            }
        }
        // Fast path: no dirty task can merge and none overflows, so the
        // wavefront re-derives exactly the cached placement. Per task the
        // commit rule yields `fp == old`: with `seed == old` trivially, and
        // with `seed < old` because `sizes[seed] + reserved[seed]` equals
        // the (full) steady-state occupancy of `seed` throughout an
        // identity repair — no genuine slack — while the cached slot always
        // has room for its returning owner. Nothing is vacated, sorted,
        // re-placed, or patched.

        #[cfg(debug_assertions)]
        {
            validate::check_edge_monotone(&cache.tdg, &cache.raw)
                .expect("repair broke the monotone-id certificate");
            let p = Partition::new(cache.raw.clone());
            validate::check_acyclic(&cache.tdg, &p).expect("repair produced a cyclic quotient");
            validate::check_size_bound(&p, cache.ps).expect("repair overfilled a partition");
            if let Some(q) = &cache.quotient {
                assert!(
                    q.is_edge_monotone(),
                    "patched quotient lost the monotone certificate"
                );
                if n <= 4096 {
                    assert!(
                        q.matches(&cache.tdg, &cache.raw),
                        "patched quotient diverged from a from-scratch rebuild"
                    );
                }
            }
            if n <= 4096 {
                validate::check_convex(&cache.tdg, &p)
                    .expect("repair produced a non-convex partition");
            }
        }

        let stats = RepairStats {
            num_dirty: cache.order.len(),
            moved,
            fresh_partitions: fresh,
            epoch: self.epoch + 1,
        };

        // Keep the raw id space dense enough for Partition's fast
        // compaction path; the remap is order-preserving so monotonicity
        // survives.
        if cache.max_pid as usize > 4 * n + RENORM_SLACK {
            let mut remap = vec![u32::MAX; cache.max_pid as usize + 1];
            let mut next = 0u32;
            for (pid, &size) in cache.sizes.iter().enumerate() {
                if size > 0 {
                    remap[pid] = next;
                    next += 1;
                }
            }
            let mut sizes = vec![0u32; next as usize];
            for r in cache.raw.iter_mut() {
                *r = remap[*r as usize];
                sizes[*r as usize] += 1;
            }
            cache.sizes = sizes;
            cache.reserved = vec![0; next as usize];
            cache.max_pid = next.saturating_sub(1);
            if let Some(q) = cache.quotient.as_mut() {
                *q = PatchableQuotient::build(&cache.tdg, &cache.raw);
            }
        }

        self.epoch += 1;
        Ok(stats)
    }

    /// Snapshot the warm cache into a [`CacheExport`].
    ///
    /// # Errors
    ///
    /// [`IncrementalError::NotInstalled`] on a cold cache. Callers that
    /// treat a cold cache as "nothing to persist" (e.g. cache-less
    /// checkpoints, which the `GPCKPT01` format permits) can map the
    /// error away with `.ok()`; long-running services surface it as a
    /// structured error instead of panicking on a missing cache.
    pub fn export_cache(&self) -> Result<CacheExport, IncrementalError> {
        let c = self.cache.as_ref().ok_or(IncrementalError::NotInstalled)?;
        Ok(CacheExport {
            fingerprint: c.fingerprint,
            ps: c.ps,
            raw: c.raw.clone(),
            max_pid: c.max_pid,
            epoch: self.epoch,
        })
    }

    /// Rebuild a warm cache from a [`CacheExport`] taken against (a TDG
    /// structurally identical to) `tdg`. The snapshot is fully re-validated
    /// before anything is touched — shape, fingerprint, `Ps` bound, pid
    /// range, and the `O(E)` edge-monotone certificate that proves the
    /// restored partition convex with an acyclic quotient — so a truncated
    /// or bit-flipped snapshot is rejected with the cache unchanged.
    /// Derived state (sizes, merge bits) is recomputed; lazy state
    /// (topological ranks, the patched quotient) starts unbuilt, exactly as
    /// after [`Self::install`]. The partitioner's epoch is set to the
    /// snapshot's, so repair stats after a restore match an uninterrupted
    /// run's.
    ///
    /// # Errors
    ///
    /// [`IncrementalError::InvalidSnapshot`] if any validation fails.
    pub fn restore_cache(
        &mut self,
        tdg: &Tdg,
        export: CacheExport,
    ) -> Result<(), IncrementalError> {
        let n = tdg.num_tasks();
        let snap = |why: String| Err(IncrementalError::InvalidSnapshot(why));
        if export.ps == 0 {
            return snap("partition size Ps is zero".to_string());
        }
        if export.raw.len() != n {
            return snap(format!(
                "assignment covers {} tasks but the TDG has {n}",
                export.raw.len()
            ));
        }
        if export.fingerprint != tdg.fingerprint() {
            return snap(format!(
                "TDG fingerprint {:#018x} does not match the snapshot's {:#018x}",
                tdg.fingerprint(),
                export.fingerprint
            ));
        }
        if let Some(&m) = export.raw.iter().max() {
            if m > export.max_pid {
                return snap(format!(
                    "assignment uses pid {m} above the recorded max_pid {}",
                    export.max_pid
                ));
            }
        }
        if let Err(e) = validate::check_edge_monotone(tdg, &export.raw) {
            return snap(format!("edge-monotone certificate failed: {e}"));
        }
        let np = export.max_pid as usize + 1;
        let mut sizes = vec![0u32; np];
        for &r in &export.raw {
            sizes[r as usize] += 1;
        }
        if let Some((pid, &s)) = sizes
            .iter()
            .enumerate()
            .find(|&(_, &s)| s as usize > export.ps)
        {
            return snap(format!(
                "partition {pid} holds {s} tasks, above Ps = {}",
                export.ps
            ));
        }
        let merge_bit = (0..n as u32)
            .map(|t| merge_candidate(tdg, &export.raw, &sizes, export.ps, t))
            .collect();
        self.epoch = export.epoch;
        self.cache = Some(Cache {
            fingerprint: export.fingerprint,
            tdg: tdg.clone(),
            ps: export.ps,
            raw: export.raw,
            sizes,
            reserved: vec![0; np],
            max_pid: export.max_pid,
            topo_rank: Vec::new(),
            quotient: None,
            stamp: vec![0; n],
            stamp_cur: 0,
            order: Vec::new(),
            moves: Vec::new(),
            merge_bit,
            sort_keys: Vec::new(),
            proj: Vec::new(),
        });
        Ok(())
    }

    /// The full cached partition (raw ids compacted).
    ///
    /// # Errors
    ///
    /// [`IncrementalError::NotInstalled`] on a cold cache.
    pub fn full_partition(&self) -> Result<Partition, IncrementalError> {
        let c = self.cache.as_ref().ok_or(IncrementalError::NotInstalled)?;
        Ok(Partition::new(c.raw.clone()))
    }

    /// Project the cached assignment onto a task subset: `ids[i]` is the
    /// cached-TDG task backing task `i` of some induced sub-TDG (e.g. an
    /// incremental `update_timing` TDG whose tasks map into the full task
    /// space). The projected raw ids inherit edge-monotonicity on any
    /// induced subgraph, so compacting them yields a valid partition of
    /// that sub-TDG under the cached `Ps`.
    ///
    /// # Errors
    ///
    /// [`IncrementalError::NotInstalled`] on a cold cache and
    /// [`IncrementalError::TaskOutOfRange`] for an invalid id.
    pub fn sub_partition(&self, ids: &[u32]) -> Result<Partition, IncrementalError> {
        let cache = self.cache.as_ref().ok_or(IncrementalError::NotInstalled)?;
        let n = cache.tdg.num_tasks();
        let mut raw = Vec::with_capacity(ids.len());
        for &t in ids {
            if (t as usize) >= n {
                return Err(IncrementalError::TaskOutOfRange {
                    task: t,
                    num_tasks: n,
                });
            }
            raw.push(cache.raw[t as usize]);
        }
        Ok(Partition::new(raw))
    }
}

impl<P: Partitioner> Partitioner for IncrementalPartitioner<P> {
    fn name(&self) -> &'static str {
        "incremental"
    }

    /// Serve from the cache when it matches `(tdg, Ps)` — the cache key is
    /// the TDG's structural [`fingerprint`](Tdg::fingerprint) plus the
    /// resolved partition size — and fall through to the inner partitioner
    /// otherwise. Through this `&self` entry point a miss cannot update the
    /// cache; use [`IncrementalPartitioner::install`] to warm it.
    fn partition(&self, tdg: &Tdg, opts: &PartitionerOptions) -> Result<Partition, PartitionError> {
        check_opts(opts)?;
        if let Some(c) = &self.cache {
            if c.raw.len() == tdg.num_tasks()
                && c.ps == opts.resolve_ps(tdg)
                && c.fingerprint == tdg.fingerprint()
            {
                return Ok(Partition::new(c.raw.clone()));
            }
        }
        self.inner.partition(tdg, opts)
    }
}

/// The forward closure of `seeds` in `tdg`: every task reachable from a
/// seed by following successor edges, seeds included. Returned sorted and
/// deduplicated — by construction a successor-closed set, i.e. a valid
/// dirty set for [`IncrementalPartitioner::repair`].
///
/// # Panics
///
/// Panics if a seed is `>= tdg.num_tasks()`.
pub fn forward_closure(tdg: &Tdg, seeds: &[u32]) -> Vec<u32> {
    let n = tdg.num_tasks();
    let mut seen = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    for &s in seeds {
        assert!((s as usize) < n, "seed task {s} out of range");
        if !seen[s as usize] {
            seen[s as usize] = true;
            stack.push(s);
        }
    }
    let mut out = stack.clone();
    while let Some(t) = stack.pop() {
        for &v in tdg.successors(TaskId(t)) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                stack.push(v);
                out.push(v);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeqGPasta;
    use gpasta_tdg::{validate, TdgBuilder};

    fn diamond() -> Tdg {
        let mut b = TdgBuilder::new(4);
        b.add_edge(TaskId(0), TaskId(1));
        b.add_edge(TaskId(0), TaskId(2));
        b.add_edge(TaskId(1), TaskId(3));
        b.add_edge(TaskId(2), TaskId(3));
        b.build().expect("diamond DAG")
    }

    fn chain(n: u32) -> Tdg {
        let mut b = TdgBuilder::new(n as usize);
        for i in 1..n {
            b.add_edge(TaskId(i - 1), TaskId(i));
        }
        b.build().expect("chain DAG")
    }

    /// A mock partitioner returning a fixed assignment, for precise
    /// control over the installed cache.
    struct Fixed(Vec<u32>);
    impl Partitioner for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn partition(&self, _: &Tdg, _: &PartitionerOptions) -> Result<Partition, PartitionError> {
            Ok(Partition::new(self.0.clone()))
        }
    }

    #[test]
    fn cold_cache_errors() {
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        assert!(!inc.is_warm());
        assert_eq!(inc.repair(&[0]), Err(IncrementalError::NotInstalled));
        assert_eq!(inc.sub_partition(&[0]), Err(IncrementalError::NotInstalled));
        assert!(matches!(
            inc.full_partition(),
            Err(IncrementalError::NotInstalled)
        ));
        assert!(matches!(
            inc.export_cache(),
            Err(IncrementalError::NotInstalled)
        ));
    }

    #[test]
    fn empty_dirty_set_is_identity() {
        let tdg = diamond();
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        inc.install(&tdg, &PartitionerOptions::default())
            .expect("install");
        let before = inc.raw_assignment().expect("warm").to_vec();
        let e0 = inc.epoch();
        let stats = inc.repair(&[]).expect("empty repair");
        assert_eq!(stats.num_dirty, 0);
        assert_eq!(stats.moved, 0);
        assert_eq!(stats.fresh_partitions, 0);
        assert_eq!(inc.raw_assignment().expect("warm"), before.as_slice());
        assert_eq!(inc.epoch(), e0 + 1);
    }

    #[test]
    fn install_relabels_to_monotone_ids() {
        // The inner assignment is valid but anti-monotone in its id order.
        let tdg = chain(3);
        let mut inc = IncrementalPartitioner::new(Fixed(vec![2, 1, 0]));
        inc.install(&tdg, &PartitionerOptions::with_max_size(1))
            .expect("install");
        let raw = inc.raw_assignment().expect("warm");
        validate::check_edge_monotone(&tdg, raw).expect("relabelled to monotone");
        assert_eq!(raw, &[0, 1, 2]);
    }

    #[test]
    fn repair_merges_into_predecessor_partition_when_room() {
        let tdg = chain(2);
        let mut inc = IncrementalPartitioner::new(Fixed(vec![0, 1]));
        inc.install(&tdg, &PartitionerOptions::with_max_size(2))
            .expect("install");
        let stats = inc.repair(&[1]).expect("repair");
        assert_eq!(stats.moved, 1);
        assert_eq!(stats.fresh_partitions, 0);
        // Task 1 merged into its predecessor's partition.
        assert_eq!(inc.raw_assignment().expect("warm"), &[0, 0]);
        assert_eq!(inc.patched_quotient().expect("warm").num_partitions(), 1);
    }

    #[test]
    fn repair_keeps_cached_slot_when_seed_is_full() {
        let tdg = chain(2);
        let mut inc = IncrementalPartitioner::new(Fixed(vec![0, 1]));
        inc.install(&tdg, &PartitionerOptions::with_max_size(1))
            .expect("install");
        let stats = inc.repair(&[1]).expect("repair");
        // Seed partition 0 is full (Ps = 1); the cached slot 1 is still
        // consistent (>= seed) and has room, so the task stays put rather
        // than minting a fresh pid.
        assert_eq!(stats.moved, 0);
        assert_eq!(stats.fresh_partitions, 0);
        assert_eq!(inc.raw_assignment().expect("warm"), &[0, 1]);
        validate::check_all(&tdg, &inc.full_partition().expect("warm")).expect("valid");
    }

    #[test]
    fn repair_never_displaces_a_returning_task() {
        // Tasks: c=0, d1=1, d2=2, u=3, t=4; edges c->u and d1->t.
        // Cached partitions (Ps = 2): {d1, d2} = pid 0, {c, t} = pid 1,
        // {u} = pid 2 — edge-monotone as installed.
        let mut b = TdgBuilder::new(5);
        b.add_edge(TaskId(0), TaskId(3));
        b.add_edge(TaskId(1), TaskId(4));
        let tdg = b.build().expect("DAG");
        let mut inc = IncrementalPartitioner::new(Fixed(vec![1, 0, 0, 2, 1]));
        inc.install(&tdg, &PartitionerOptions::with_max_size(2))
            .expect("install");
        assert_eq!(inc.raw_assignment().expect("warm"), &[1, 0, 0, 2, 1]);

        // Repair {u, t}: u's seed is partition 1, whose only free slot is
        // reserved for the returning t — without the reservation, u would
        // grab it, displace t into a fresh pid, and repeated repairs would
        // churn. With it, both tasks keep their slots: a fixed point.
        let stats = inc.repair(&[3, 4]).expect("repair");
        assert_eq!(stats.moved, 0);
        assert_eq!(stats.fresh_partitions, 0);
        assert_eq!(inc.raw_assignment().expect("warm"), &[1, 0, 0, 2, 1]);
        validate::check_all(&tdg, &inc.full_partition().expect("warm")).expect("valid");
    }

    #[test]
    fn repair_restores_a_capacity_violated_cache_with_a_fresh_pid() {
        // Simulate an externally weakened cache: both chain tasks crammed
        // into partition 0 with Ps = 1. Repairing the sink cannot use its
        // seed (full) or its cached slot (also partition 0, full), so the
        // §3.2 safety valve mints a fresh pid above max_pid and the repair
        // restores a valid partition.
        let tdg = chain(2);
        let mut inc = IncrementalPartitioner::new(Fixed(vec![0, 1]));
        inc.install(&tdg, &PartitionerOptions::with_max_size(1))
            .expect("install");
        {
            let cache = inc.cache.as_mut().expect("warm");
            cache.raw = vec![0, 0];
            cache.sizes = vec![2, 0];
            cache.reserved = vec![0, 0];
            cache.max_pid = 0;
            cache.quotient = Some(PatchableQuotient::build(&cache.tdg, &cache.raw));
        }
        let stats = inc.repair(&[1]).expect("repair");
        assert_eq!(stats.fresh_partitions, 1);
        assert_eq!(stats.moved, 1);
        assert_eq!(inc.raw_assignment().expect("warm"), &[0, 1]);
        validate::check_all(&tdg, &inc.full_partition().expect("warm")).expect("valid");
    }

    #[test]
    fn dirty_source_keeps_its_slot() {
        let tdg = diamond();
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        inc.install(&tdg, &PartitionerOptions::default())
            .expect("install");
        let before = inc.raw_assignment().expect("warm")[0];
        let dirty = forward_closure(&tdg, &[0]); // everything
        inc.repair(&dirty).expect("repair");
        assert_eq!(inc.raw_assignment().expect("warm")[0], before);
    }

    #[test]
    fn unclosed_dirty_set_is_rejected_and_cache_unchanged() {
        let tdg = diamond();
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        inc.install(&tdg, &PartitionerOptions::default())
            .expect("install");
        let before = inc.raw_assignment().expect("warm").to_vec();
        // Task 1's successor 3 is clean.
        let err = inc.repair(&[1]).expect_err("not successor-closed");
        assert_eq!(
            err,
            IncrementalError::DirtySetNotClosed {
                task: 1,
                clean_successor: 3
            }
        );
        assert_eq!(inc.raw_assignment().expect("warm"), before.as_slice());
        // The closed version goes through.
        inc.repair(&forward_closure(&tdg, &[1])).expect("closed");
        validate::check_all(&tdg, &inc.full_partition().expect("warm")).expect("valid");
    }

    #[test]
    fn out_of_range_dirty_task_is_rejected() {
        let tdg = diamond();
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        inc.install(&tdg, &PartitionerOptions::default())
            .expect("install");
        assert_eq!(
            inc.repair(&[99]),
            Err(IncrementalError::TaskOutOfRange {
                task: 99,
                num_tasks: 4
            })
        );
        assert!(matches!(
            inc.sub_partition(&[99]),
            Err(IncrementalError::TaskOutOfRange { .. })
        ));
    }

    #[test]
    fn duplicate_dirty_tasks_are_deduped() {
        let tdg = chain(2);
        let mut inc = IncrementalPartitioner::new(Fixed(vec![0, 1]));
        inc.install(&tdg, &PartitionerOptions::with_max_size(2))
            .expect("install");
        let stats = inc.repair(&[1, 1, 1]).expect("repair");
        assert_eq!(stats.num_dirty, 1);
    }

    #[test]
    fn trait_partition_serves_warm_cache_and_misses_fall_through() {
        let tdg = diamond();
        let opts = PartitionerOptions::default();
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        // Cold: falls through to the inner partitioner.
        let cold = inc.partition(&tdg, &opts).expect("cold partition");
        assert_eq!(cold, SeqGPasta::new().partition(&tdg, &opts).expect("seq"));
        // Warm: serves the (identical, compacted) cached assignment.
        inc.install(&tdg, &opts).expect("install");
        let warm = inc.partition(&tdg, &opts).expect("warm partition");
        assert_eq!(warm.num_tasks(), 4);
        validate::check_all(&tdg, &warm).expect("valid");
        // A different TDG is a miss.
        let other = chain(4);
        let missed = inc.partition(&other, &opts).expect("miss partition");
        validate::check_all(&other, &missed).expect("valid on the other TDG");
        // Invalidation forces cold behaviour again.
        inc.invalidate_all();
        assert!(!inc.is_warm());
        assert_eq!(inc.repair(&[]), Err(IncrementalError::NotInstalled));
        assert_eq!(inc.name(), "incremental");
    }

    #[test]
    fn sub_partition_projects_the_cache() {
        let tdg = diamond();
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        inc.install(&tdg, &PartitionerOptions::default())
            .expect("install");
        let raw = inc.raw_assignment().expect("warm").to_vec();
        let sub = inc.sub_partition(&[1, 3]).expect("projection");
        assert_eq!(sub.num_tasks(), 2);
        // Same-pid tasks stay together, distinct pids stay apart.
        assert_eq!(sub.assignment()[0] == sub.assignment()[1], raw[1] == raw[3]);
    }

    #[test]
    fn repair_and_project_matches_repair_then_sub_partition() {
        // Identity (fast-path) repair, duplicate ids included.
        let tdg = diamond();
        let opts = PartitionerOptions::with_max_size(2);
        let mut a = IncrementalPartitioner::new(SeqGPasta::new());
        let mut b = IncrementalPartitioner::new(SeqGPasta::new());
        a.install(&tdg, &opts).expect("install");
        b.install(&tdg, &opts).expect("install");
        let ids = [1, 3, 3, 1];
        let sa = a.repair(&ids).expect("repair");
        let pa = a.sub_partition(&ids).expect("project");
        let (sb, pb) = b.repair_and_project(&ids).expect("fused");
        assert_eq!(sa, sb);
        assert_eq!(pa, pb);

        // A repair that re-places the cone projects the *repaired* pids.
        let chain = chain(2);
        let mut inc = IncrementalPartitioner::new(Fixed(vec![0, 1]));
        inc.install(&chain, &PartitionerOptions::with_max_size(2))
            .expect("install");
        let (stats, sub) = inc.repair_and_project(&[1]).expect("fused");
        assert_eq!(stats.moved, 1);
        assert_eq!(inc.raw_assignment().expect("warm"), &[0, 0]);
        assert_eq!(sub.assignment(), &[0]);

        // Same errors as the unfused pair.
        assert!(matches!(
            inc.repair_and_project(&[99]),
            Err(IncrementalError::TaskOutOfRange { .. })
        ));
        let mut cold = IncrementalPartitioner::new(SeqGPasta::new());
        assert!(matches!(
            cold.repair_and_project(&[0]),
            Err(IncrementalError::NotInstalled)
        ));
    }

    #[test]
    fn repeated_repairs_converge_to_the_cached_assignment() {
        let tdg = diamond();
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        inc.install(&tdg, &PartitionerOptions::with_max_size(2))
            .expect("install");
        let dirty = forward_closure(&tdg, &[1]);
        inc.repair(&dirty).expect("first repair may reshuffle");
        let settled = inc.raw_assignment().expect("warm").to_vec();
        // Re-repairing the same cone re-derives the same wavefront, so
        // the assignment is a fixed point: no moves, no fresh pids.
        for _ in 0..3 {
            let stats = inc.repair(&dirty).expect("repair");
            assert_eq!(stats.moved, 0);
            assert_eq!(stats.fresh_partitions, 0);
            assert_eq!(inc.raw_assignment().expect("warm"), settled.as_slice());
        }
    }

    #[test]
    fn repair_renormalises_an_inflated_id_space() {
        let tdg = chain(3);
        let mut inc = IncrementalPartitioner::new(Fixed(vec![0, 1, 2]));
        inc.install(&tdg, &PartitionerOptions::with_max_size(1))
            .expect("install");
        // Inflate the raw id space far past the renormalisation bound, as
        // a long adversarial sequence of overflowing repairs would; the
        // spread is monotone, so the cache stays valid.
        {
            let cache = inc.cache.as_mut().expect("warm");
            let stride = (4 * 3 + RENORM_SLACK) as u32;
            for (t, r) in cache.raw.iter_mut().enumerate() {
                *r = t as u32 * stride;
            }
            cache.max_pid = 2 * stride;
            cache.sizes = vec![0; cache.max_pid as usize + 1];
            for t in 0..3 {
                cache.sizes[cache.raw[t] as usize] += 1;
            }
            cache.quotient = Some(PatchableQuotient::build(&cache.tdg, &cache.raw));
        }
        let stats = inc.repair(&[]).expect("repair");
        assert_eq!(stats.moved, 0);
        let raw = inc.raw_assignment().expect("warm");
        assert_eq!(raw, &[0, 1, 2], "order-preserving remap back to dense ids");
        assert!(inc.patched_quotient().expect("warm").is_edge_monotone());
        validate::check_all(&tdg, &inc.full_partition().expect("warm")).expect("valid");
    }

    #[test]
    fn forward_closure_is_successor_closed_and_sorted() {
        let tdg = diamond();
        assert_eq!(forward_closure(&tdg, &[0]), vec![0, 1, 2, 3]);
        assert_eq!(forward_closure(&tdg, &[1]), vec![1, 3]);
        assert_eq!(forward_closure(&tdg, &[3]), vec![3]);
        assert_eq!(forward_closure(&tdg, &[1, 2, 1]), vec![1, 2, 3]);
        assert_eq!(forward_closure(&tdg, &[]), Vec::<u32>::new());
    }

    #[test]
    fn repair_stats_epoch_advances() {
        let tdg = diamond();
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        assert_eq!(inc.epoch(), 0);
        inc.install(&tdg, &PartitionerOptions::default())
            .expect("install");
        assert_eq!(inc.epoch(), 1);
        let s1 = inc.repair(&[]).expect("repair");
        assert_eq!(s1.epoch, 2);
        let s2 = inc.repair(&forward_closure(&tdg, &[1])).expect("repair");
        assert_eq!(s2.epoch, 3);
        assert_eq!(inc.epoch(), 3);
    }

    #[test]
    fn cancellable_repair_matches_plain_repair_when_not_cancelled() {
        use gpasta_tdg::CancelToken;
        let tdg = diamond();
        let opts = PartitionerOptions::with_max_size(2);
        let mut a = IncrementalPartitioner::new(SeqGPasta::new());
        let mut b = IncrementalPartitioner::new(SeqGPasta::new());
        a.install(&tdg, &opts).expect("install");
        b.install(&tdg, &opts).expect("install");
        let dirty = forward_closure(&tdg, &[1]);
        let token = CancelToken::new();
        let sa = a.repair(&dirty).expect("plain");
        let sb = b
            .repair_cancellable(&dirty, &token.observe())
            .expect("uncancelled");
        assert_eq!(sa, sb);
        assert_eq!(a.raw_assignment(), b.raw_assignment());
    }

    #[test]
    fn tripped_observer_cancels_repair_and_leaves_cache_unchanged() {
        use gpasta_tdg::CancelToken;
        let tdg = diamond();
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        inc.install(&tdg, &PartitionerOptions::default())
            .expect("install");
        let before = inc.raw_assignment().expect("warm").to_vec();
        let e0 = inc.epoch();
        let token = CancelToken::new();
        let obs = token.observe();
        token.cancel();
        assert_eq!(
            inc.repair_cancellable(&forward_closure(&tdg, &[0]), &obs),
            Err(IncrementalError::Cancelled)
        );
        assert_eq!(inc.raw_assignment().expect("warm"), before.as_slice());
        assert_eq!(
            inc.epoch(),
            e0,
            "cancelled repair does not advance the epoch"
        );
        // The cache is still fully usable afterwards.
        inc.repair(&forward_closure(&tdg, &[0])).expect("repair");
        validate::check_all(&tdg, &inc.full_partition().expect("warm")).expect("valid");
    }

    #[test]
    fn export_restore_round_trip_is_observably_identical() {
        let tdg = diamond();
        let opts = PartitionerOptions::with_max_size(2);
        let mut orig = IncrementalPartitioner::new(SeqGPasta::new());
        orig.install(&tdg, &opts).expect("install");
        orig.repair(&forward_closure(&tdg, &[1])).expect("repair");
        let export = orig.export_cache().expect("warm cache exports");
        assert_eq!(export.epoch, orig.epoch());

        let mut restored = IncrementalPartitioner::new(SeqGPasta::new());
        assert!(
            matches!(restored.export_cache(), Err(IncrementalError::NotInstalled)),
            "cold cache must refuse to export"
        );
        restored
            .restore_cache(&tdg, export.clone())
            .expect("restore");
        assert!(restored.is_warm());
        assert_eq!(restored.epoch(), orig.epoch());
        assert_eq!(restored.ps(), orig.ps());
        assert_eq!(restored.raw_assignment(), orig.raw_assignment());

        // Subsequent identical repairs evolve both caches identically —
        // including fresh-pid numbering, which `max_pid` preserves.
        let dirty = forward_closure(&tdg, &[0]);
        let so = orig.repair(&dirty).expect("repair original");
        let sr = restored.repair(&dirty).expect("repair restored");
        assert_eq!(so, sr);
        assert_eq!(restored.raw_assignment(), orig.raw_assignment());
        validate::check_all(&tdg, &restored.full_partition().expect("warm")).expect("valid");
    }

    #[test]
    fn restore_rejects_invalid_snapshots() {
        let tdg = diamond();
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        inc.install(&tdg, &PartitionerOptions::with_max_size(2))
            .expect("install");
        let good = inc.export_cache().expect("warm");

        let reject = |export: CacheExport, needle: &str| {
            let mut fresh = IncrementalPartitioner::new(SeqGPasta::new());
            let err = fresh
                .restore_cache(&tdg, export)
                .expect_err("snapshot must be rejected");
            assert!(
                err.to_string().contains(needle),
                "expected {needle:?} in {err}"
            );
            assert!(
                !fresh.is_warm(),
                "rejected restore must leave the cache cold"
            );
        };

        reject(
            CacheExport {
                ps: 0,
                ..good.clone()
            },
            "Ps is zero",
        );
        reject(
            CacheExport {
                raw: vec![0; 3],
                ..good.clone()
            },
            "covers 3 tasks",
        );
        reject(
            CacheExport {
                fingerprint: good.fingerprint ^ 1,
                ..good.clone()
            },
            "fingerprint",
        );
        reject(
            CacheExport {
                max_pid: 0,
                raw: vec![0, 0, 1, 1],
                ..good.clone()
            },
            "above the recorded max_pid",
        );
        // Anti-monotone assignment: valid shape, broken certificate.
        reject(
            CacheExport {
                raw: vec![1, 0, 0, 0],
                max_pid: 1,
                ..good.clone()
            },
            "edge-monotone",
        );
        // Overfilled partition under the snapshot's Ps.
        reject(
            CacheExport {
                raw: vec![0, 0, 0, 0],
                ps: 2,
                ..good.clone()
            },
            "above Ps",
        );
    }

    #[test]
    fn errors_display_and_convert() {
        let e: IncrementalError = PartitionError::ZeroPartitionSize.into();
        assert!(e.to_string().contains("inner partitioner"));
        assert!(IncrementalError::NotInstalled
            .to_string()
            .contains("install"));
        assert!(IncrementalError::TaskOutOfRange {
            task: 9,
            num_tasks: 4
        }
        .to_string()
        .contains("out of range"));
        assert!(IncrementalError::DirtySetNotClosed {
            task: 1,
            clean_successor: 2
        }
        .to_string()
        .contains("successor-closed"));
    }
}
