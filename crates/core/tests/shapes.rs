//! Deterministic shape-grid tests: every partitioner × characteristic DAG
//! shape × partition size, with validity and quality bounds.

use gpasta_circuits::dag;
use gpasta_core::{DeterGPasta, GPasta, Gdca, Partitioner, PartitionerOptions, Sarkar, SeqGPasta};
use gpasta_gpu::Device;
use gpasta_tdg::{validate, ParallelismProfile, QuotientTdg, Tdg};

fn shapes() -> Vec<(&'static str, Tdg)> {
    vec![
        ("chain", dag::chain(64)),
        ("independent", dag::independent(64)),
        ("layered", dag::layered(24, 12, 2, 7)),
        ("fanin_tree", dag::fanin_tree(128)),
        ("series_parallel", dag::series_parallel(8, 8)),
        ("random", dag::random_dag(500, 1.6, 11)),
    ]
}

fn partitioners() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(GPasta::with_device(Device::new(2))),
        Box::new(DeterGPasta::with_device(Device::new(2))),
        Box::new(SeqGPasta::new()),
        Box::new(Gdca::new()),
        Box::new(Sarkar::new()),
    ]
}

#[test]
fn every_partitioner_is_valid_on_every_shape() {
    for (shape, tdg) in shapes() {
        for p in partitioners() {
            for ps in [1usize, 4, 16, 1024] {
                let partition = p
                    .partition(&tdg, &PartitionerOptions::with_max_size(ps))
                    .unwrap_or_else(|e| panic!("{} on {shape} ps={ps}: {e}", p.name()));
                validate::check_all(&tdg, &partition)
                    .unwrap_or_else(|e| panic!("{} on {shape} ps={ps}: {e}", p.name()));
                validate::check_size_bound(&partition, ps)
                    .unwrap_or_else(|e| panic!("{} on {shape} ps={ps}: {e}", p.name()));
            }
        }
    }
}

#[test]
fn ps_one_is_always_the_identity_partition() {
    for (shape, tdg) in shapes() {
        for p in partitioners() {
            let partition = p
                .partition(&tdg, &PartitionerOptions::with_max_size(1))
                .expect("valid options");
            assert_eq!(
                partition.num_partitions(),
                tdg.num_tasks(),
                "{} on {shape}: Ps=1 must not cluster anything",
                p.name()
            );
        }
    }
}

#[test]
fn compression_grows_with_partition_size() {
    // More room per partition can only reduce (or keep) the partition
    // count for the greedy algorithms.
    let tdg = dag::layered(24, 16, 2, 3);
    for p in partitioners() {
        let mut last = usize::MAX;
        for ps in [1usize, 2, 4, 8, 16] {
            let partition = p
                .partition(&tdg, &PartitionerOptions::with_max_size(ps))
                .expect("valid options");
            assert!(
                partition.num_partitions() <= last,
                "{}: partition count rose from {} to {} at ps={ps}",
                p.name(),
                last,
                partition.num_partitions()
            );
            last = partition.num_partitions();
        }
    }
}

#[test]
fn quotient_parallelism_never_exceeds_original() {
    for (shape, tdg) in shapes() {
        let original = ParallelismProfile::of(&tdg).avg_parallelism;
        for p in partitioners() {
            let partition = p
                .partition(&tdg, &PartitionerOptions::with_max_size(8))
                .expect("valid options");
            let q = QuotientTdg::build(&tdg, &partition).expect("schedulable");
            let quotient = ParallelismProfile::of(q.graph()).avg_parallelism;
            assert!(
                quotient <= original + 1e-9,
                "{} on {shape}: quotient parallelism {quotient:.2} above original {original:.2}",
                p.name()
            );
        }
    }
}

#[test]
fn gpasta_converges_to_the_source_count_on_trees() {
    // §3.2's lower bound is exact on a fan-in tree with generous Ps: each
    // leaf seeds a partition, every internal node joins its max-id parent,
    // and the count converges to precisely the leaf count.
    let leaves = 256;
    let tdg = dag::fanin_tree(leaves);
    for p in [
        Box::new(SeqGPasta::new()) as Box<dyn Partitioner>,
        Box::new(GPasta::with_device(Device::single())),
    ] {
        let partition = p
            .partition(&tdg, &PartitionerOptions::with_max_size(64))
            .expect("valid options");
        assert_eq!(
            partition.num_partitions(),
            leaves,
            "{}: tree partitions must converge to the source count",
            p.name()
        );
    }
}

#[test]
fn deter_gpasta_is_stable_across_the_grid() {
    for (shape, tdg) in shapes() {
        for ps in [2usize, 8, 32] {
            let opts = PartitionerOptions::with_max_size(ps);
            let a = DeterGPasta::with_device(Device::new(1))
                .partition(&tdg, &opts)
                .expect("valid options");
            let b = DeterGPasta::with_device(Device::new(4))
                .partition(&tdg, &opts)
                .expect("valid options");
            assert_eq!(a, b, "{shape} ps={ps}: worker count changed the result");
        }
    }
}
